#!/usr/bin/env python
"""Walkthrough of the paper's Figures 1 and 2: the EPP rename mechanics.

Plays the exact scenario of the paper's §2.4 against the EPP simulator:

* registrar A sponsors foo.com with nameserver host objects;
* registrar B's bar.com — and a .gov domain in the *same* repository —
  delegate to ns2.foo.com;
* foo.com expires; deletion is blocked by RFC 5731; host deletion is
  blocked by RFC 5732; the rename workaround fires;
* bar.com's and qux.gov's delegations are silently rewritten, while
  baz.org (a different EPP repository) keeps its now-dangling reference.

Run:  python examples/renaming_walkthrough.py
"""

import random

from repro.epp.registry import default_roster
from repro.registrar.idioms import DropThisHostIdiom
from repro.registrar.policy import DeletionMachinery


def show(step: str, detail: str = "") -> None:
    print(f"\n== {step}")
    if detail:
        print(detail)


def main() -> None:
    roster = default_roster()
    verisign = roster.registry_for("x.com")
    afilias = roster.registry_for("x.org")
    verisign.accredit("registrar-a")
    verisign.accredit("registrar-b")
    afilias.accredit("registrar-b")

    a = verisign.session("registrar-a")
    b = verisign.session("registrar-b")
    b_org = afilias.session("registrar-b")
    operator = verisign.session("sim-verisign")

    show("Setup: registrar A provisions foo.com with two nameservers")
    a.domain_create("foo.com", day=0, period_years=1)
    a.host_create("ns1.foo.com", day=0, addresses=["192.0.2.1"])
    a.host_create("ns2.foo.com", day=0, addresses=["192.0.2.2"])
    a.domain_update_ns("foo.com", day=0, add=["ns1.foo.com", "ns2.foo.com"])

    show("Registrar B's bar.com delegates to ns2.foo.com (EPP isolation applies)")
    b.domain_create("bar.com", day=1, nameservers=["ns2.foo.com"])

    show("qux.gov — same Verisign-operated repository — also delegates there")
    operator.domain_create("qux.gov", day=1, nameservers=["ns2.foo.com"])

    show("baz.org lives in the Afilias repository with its own host object")
    b_org.host_create("ns2.foo.com", day=1)  # external host object
    b_org.domain_create("baz.org", day=1, nameservers=["ns2.foo.com"])

    show("foo.com expires; registrar A tries to delete it")
    result = a.domain_delete("foo.com", day=365)
    print(f"  <domain:delete> -> {int(result.code)} {result.message}")
    print(f"  detail: {result.detail}")

    show("Deleting the linked host object fails too (RFC 5732)")
    result = a.host_delete("ns2.foo.com", day=365)
    print(f"  <host:delete> -> {int(result.code)} {result.message}")
    print(f"  detail: {result.detail}")

    show("The workaround: run the deletion machinery with GoDaddy's idiom")
    machinery = DeletionMachinery(random.Random(2021))
    outcome = machinery.delete_domain(a, "foo.com", DropThisHostIdiom(), day=365)
    print(f"  domain deleted: {outcome.deleted}")
    for rename in outcome.renames:
        print(f"  host renamed:   {rename.old_name} -> {rename.new_name}")
        print(f"  linked domains: {', '.join(rename.linked_domains)}")
    sacrificial = outcome.renames[0].new_name

    show("Consequences: same-repository delegations were silently rewritten")
    for name, session in (("bar.com", b), ("qux.gov", operator)):
        obj = session.repository.domain(name)
        print(f"  {name}: NS = {obj.nameservers}")
    obj = b_org.repository.domain("baz.org")
    print(f"  baz.org (other repository): NS = {obj.nameservers}  (dangling)")

    show("The sacrificial name is an unregistered .biz domain")
    neustar = roster.registry_for(sacrificial)
    registered = ".".join(sacrificial.split(".")[-2:])
    print(
        f"  {registered} registered in .biz? "
        f"{neustar.repository.domain_exists(registered)}"
    )
    print(
        "  -> whoever registers it controls resolution for bar.com and "
        "qux.gov,\n     and re-registering foo.com would NOT fix anything."
    )

    show("Irreversibility: the host object cannot be renamed back")
    result = a.host_rename(sacrificial, "ns2.foo.com", day=366)
    print(f"  <host:update> -> {int(result.code)} {result.message}")
    print(f"  detail: {result.detail}")


if __name__ == "__main__":
    main()
