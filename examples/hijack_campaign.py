#!/usr/bin/env python
"""A hijacker's-eye view: monitor, register, capture traffic (§5–§6).

Replays what the paper's bulk hijackers do, against a simulated world:

1. watch the zone data for newly created sacrificial nameserver names;
2. rank the opportunities by value (domains still delegating);
3. register the most valuable sacrificial domain and point it at
   parking nameservers;
4. show a victim domain's resolution landing on the hijacker's server,
   and what the paper's Table 4 analysis then attributes to this actor.

Run:  python examples/hijack_campaign.py
"""

from repro import reproduce
from repro.analysis.actors import hijacker_rows
from repro.dnscore.records import RRType
from repro.resolver.resolver import IterativeResolver
from repro.resolver.server import AnsweringBehavior

PARKING_NS = ("ns1.parkit-example.nl", "ns2.parkit-example.nl")


def main() -> None:
    bundle = reproduce(seed=4242, scale=0.25, use_cache=False)
    study, world = bundle.study, bundle.world
    day = study.config.study_end - 1

    print("Scanning for unregistered sacrificial groups (a hijacker's feed)...")
    opportunities = []
    for group in study.groups.values():
        if not group.hijackable or group.registered_on(day):
            continue
        if not world.roster.operates(group.registered_domain):
            continue
        registry = world.roster.registry_for(group.registered_domain)
        if registry.repository.domain_exists(group.registered_domain):
            continue
        victims = set()
        for view in group.nameservers:
            victims |= view.domains_on(day)
        if victims:
            opportunities.append((len(victims), group.registered_domain, victims))
    opportunities.sort(reverse=True)
    print(f"  {len(opportunities)} registerable sacrificial domains right now")
    for value, domain, _victims in opportunities[:5]:
        print(f"    {domain:45s} {value:4d} domains delegating")

    value, target, victims = opportunities[0]
    print(f"\nRegistering {target} (captures {value} domains) ...")
    bulkreg = world.registrars["bulkreg"]
    result = bulkreg.register_domain(
        world.roster, target, day=day, nameservers=list(PARKING_NS),
        period_years=1, registrant="demo-hijacker",
    )
    print(f"  <domain:create> ok={result.ok}")
    world.whois.record_registration(target, "bulkreg", day=day, registrant="demo")

    print("\nStanding up a parking server and resolving a victim domain:")
    resolver = IterativeResolver(world.zonedb)
    parking = AnsweringBehavior()
    victim = sorted(victims)[0]
    parking.add_record(victim, RRType.A, "203.0.113.200")
    # The parking service answers the sacrificial NS names' A queries too.
    group = study.groups[target]
    for view in group.nameservers:
        parking.add_record(view.name, RRType.A, "203.0.113.53")
    for ns in PARKING_NS:
        resolver.attach_server(ns, parking)
    for view in group.nameservers:
        resolver.attach_server(view.name, parking)

    resolution = resolver.resolve(victim, day=day)
    print(f"  resolve {victim}: {resolution.status.value}")
    for line in resolution.trace:
        print(f"    {line}")
    if resolution.ok:
        print(
            f"  -> {victim} now resolves to {resolution.answer[0]} — the "
            "hijacker's parking page.\n     Neither the owner nor their "
            "registrar changed anything."
        )

    print("\nWhat the paper's bulk-hijacker analysis (Table 4) sees overall:")
    for row in hijacker_rows(study, top=5):
        print(
            f"  {row.controlling_domain:28s} {row.nameserver_count:4d} NS  "
            f"{row.domain_count:5d} domains"
        )


if __name__ == "__main__":
    main()
