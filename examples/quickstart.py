#!/usr/bin/env python
"""Quickstart: simulate, detect, and summarize in under a minute.

Builds a quarter-scale replica of the paper's ecosystem (registries,
registrars, nine years of domain churn, hijackers), runs the §3
detection methodology over the resulting zone data, and prints the
headline numbers: the methodology funnel and the hijackable/hijacked
summary (Table 3).

Run:  python examples/quickstart.py
"""

from repro import reproduce
from repro.analysis.report import render_funnel, render_table3


def main() -> None:
    print("Building the simulated ecosystem and running detection...")
    bundle = reproduce(scale=0.25)

    world = bundle.world
    print(
        f"\nSimulated {world.zonedb.domain_count():,} domains and "
        f"{world.zonedb.nameserver_count():,} nameservers across "
        f"{len(world.zonedb.covered_tlds)} TLDs, "
        f"{world.config.end_day:,} days of zone history."
    )

    print()
    print(render_funnel(bundle.pipeline))
    print()
    print(render_table3(bundle.study))

    # Ground-truth check: the detection pipeline consumed only the zone
    # database and WHOIS archive, yet it recovers exactly the renames the
    # simulated registrars performed.
    truth = {r.new_name for r in world.log.renames}
    detected = {s.name for s in bundle.pipeline.sacrificial}
    print(
        f"\nGround truth parity: {len(detected & truth)}/{len(truth)} "
        f"renames recovered, {len(detected - truth)} false positives."
    )


if __name__ == "__main__":
    main()
