#!/usr/bin/env python
"""Degraded-data walkthrough: detection on a faulty observational plane.

Real zone-file and WHOIS feeds are never pristine: collection days get
dropped, transfers arrive twice or out of order, files truncate
mid-write, records corrupt, WHOIS coverage has holes, and nameservers
time out without being lame. This walkthrough builds one pristine world,
then re-runs the §3 detection methodology over increasingly degraded
views of *the same* world:

1. build the ground-truth world and its pristine observables;
2. inject a uniform 10% fault rate into the snapshot stream, the WHOIS
   archive, and the nameserver plane — deterministically, from the
   fault layer's own RNG streams;
3. ingest the degraded stream with gap-bridging enabled and show the
   per-ingest reports and coverage annotations;
4. run detection on the degraded view, checkpointing every stage, and
   score it against the simulator's ground-truth rename log;
5. sweep fault rates 0% -> 20% and print the precision/recall curve.

Run:  python examples/degraded_pipeline.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.analysis.report import render_coverage
from repro.detection.pipeline import DetectionPipeline
from repro.ecosystem.config import default_scenario
from repro.ecosystem.world import World
from repro.experiment.degradation import render_sweep, run_degradation_sweep
from repro.faults import FaultConfig, degrade_world


def main() -> None:
    print("Building the pristine ground-truth world (scale 0.1)...")
    world = World(default_scenario(2021).scaled(0.1)).run()
    truth = {r.new_name for r in world.log.renames}
    print(
        f"  {world.zonedb.domain_count():,} domains, "
        f"{world.zonedb.nameserver_count():,} nameservers, "
        f"{len(truth)} ground-truth sacrificial renames."
    )

    # -- degrade the observables, not the world -------------------------
    faults = FaultConfig.uniform(0.10, seed=2021)
    print("\nInjecting a uniform 10% fault rate into the observables...")
    degraded = degrade_world(world, faults, every=7)
    log = degraded.snapshot_log
    print(
        f"  snapshots: {degraded.snapshots_total} sampled, "
        f"{len(log.dropped)} dropped, {len(log.duplicated)} duplicated, "
        f"{len(log.reordered)} reordered, {len(log.truncated)} truncated, "
        f"{len(log.corrupted)} records corrupted."
    )
    print(
        f"  whois: {len(degraded.whois_log.domains_dropped)} domains lost, "
        f"{len(degraded.whois_log.records_staled)} records staled."
    )
    print(f"  snapshot coverage: {degraded.snapshot_coverage:.1%}")

    # -- detect on the degraded view, with stage checkpointing ----------
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = Path(tmp) / "pipeline.pkl"
        pipeline = DetectionPipeline(degraded.zonedb, degraded.whois)
        result = pipeline.run(checkpoint_path=checkpoint)
        print("\nDetection on the degraded view (checkpointed per stage):")
        print(render_coverage(result))

        detected = {s.name for s in result.sacrificial}
        tp = len(detected & truth)
        precision = tp / len(detected) if detected else 1.0
        recall = tp / len(truth) if truth else 1.0
        print(
            f"\n  detected {len(detected)} sacrificial nameservers -> "
            f"precision {precision:.3f}, recall {recall:.3f} "
            f"against ground truth."
        )

        # A second run resumes from the checkpoint: every stage is
        # already done, so it only reassembles the result.
        resumed = DetectionPipeline(degraded.zonedb, degraded.whois).run(
            checkpoint_path=checkpoint
        )
        same = {s.name for s in resumed.sacrificial} == detected
        print(f"  resume from checkpoint reproduces the final set: {same}")

    # -- the full degradation sweep -------------------------------------
    print("\nSweeping fault rates (reusing the pristine world)...")
    report = run_degradation_sweep(
        [0.0, 0.05, 0.10, 0.20], seed=2021, scale=0.1, every=7,
        world_result=world,
    )
    print()
    print(render_sweep(report))
    print(
        "\nAt rate 0.0 the degraded plane is bypassed entirely, so the "
        "paper numbers reproduce exactly; accuracy falls gracefully as "
        "the observables rot."
    )


if __name__ == "__main__":
    main()
