#!/usr/bin/env python
"""The §6.1 controlled experiment, end to end.

Reproduces the paper's ethics-controlled hijack demonstration: register
a hijackable sacrificial domain defensively, observe the victim queries
that arrive (including .edu/.gov names — the shared-EPP-repository
surprise), prove the hijack works only from the research /24, and purge
the logs.

Run:  python examples/controlled_experiment.py
"""

from repro import reproduce
from repro.experiment.controlled import (
    INSIDE_IP,
    OUTSIDE_IP,
    RESEARCH_NETWORK,
    run_controlled_experiment,
)


def main() -> None:
    bundle = reproduce(seed=77, scale=0.25, use_cache=False)
    print("Running the controlled experiment (§6.1)...")
    report = run_controlled_experiment(bundle.world, bundle.study)

    print(f"\nTarget sacrificial domain : {report.sacrificial_domain}")
    print(f"Sacrificial nameservers   : {', '.join(report.nameservers)}")
    print(f"Victim domains delegated  : {len(report.delegated_domains)}")
    if report.restricted_tld_domains:
        print(
            "Restricted-TLD victims    : "
            + ", ".join(report.restricted_tld_domains)
        )
    print(f"Before registration       : {report.pre_registration_status}")
    print(f"Queries observed          : {report.queries_observed}")
    print(
        f"  of which .edu/.gov      : {report.restricted_queries_observed}"
        "  <- the cross-TLD repository effect"
    )
    print(f"Answer from {INSIDE_IP} ({RESEARCH_NETWORK}): {report.scoped_answer}")
    print(f"Answer from {OUTSIDE_IP} (outside)    : {report.outside_answer_status}")
    print(f"Hijack demonstrated       : {report.hijack_demonstrated}")
    print(f"Query-log records purged  : {report.logs_purged}  (ethics, §8)")


if __name__ == "__main__":
    main()
