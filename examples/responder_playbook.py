#!/usr/bin/env python
"""A responder's playbook: triage, attribute, protect.

Suppose you are the research/remediation team of §6–§7, looking at the
ecosystem as of the notification date. This example chains the
forensic tooling end-to-end:

1. **Triage** — where is dependency risk concentrated, and what is the
   blast radius of the biggest concentrations?
2. **Attribute** — who is operating the hijacked nameservers, and what
   are the hijacked domains being used for (parking vs redirect)?
3. **Protect** — defensively register the highest-value hijackable
   names (restricted-TLD reach first) and report the cost.

Run:  python examples/responder_playbook.py
"""

from repro import reproduce
from repro.analysis.actors import hijacker_rows
from repro.analysis.concentration import (
    concentration_report,
    single_registration_blast_radius,
)
from repro.analysis.report import format_table
from repro.experiment.defensive import DefensiveSweep
from repro.experiment.monetization import MonetizationProbe


def main() -> None:
    bundle = reproduce(seed=1337, scale=0.25, use_cache=False)
    world, study = bundle.world, bundle.study
    day = study.config.study_end - 1

    print("STEP 1 - Triage: where is resolution dependency concentrated?\n")
    concentration = concentration_report(world.zonedb, day=day)
    rows = [
        (row.provider_domain, row.dependent_domains,
         single_registration_blast_radius(world.zonedb, row.provider_domain, day=day))
        for row in concentration.top(6)
    ]
    print(format_table(
        ["provider domain", "dependents", "blast radius"], rows,
        title=f"Top dependency concentrations (gini={concentration.gini:.2f})",
    ))

    print("\nSTEP 2 - Attribute: who operates the hijacked nameservers?\n")
    print(format_table(
        ["controlling NS domain", "NS", "hijacked domains"],
        [(r.controlling_domain, r.nameserver_count, r.domain_count)
         for r in hijacker_rows(study, top=5)],
        title="Bulk hijackers (Table 4 view)",
    ))

    # Probe at a moment hijack registrations are live (registrations are
    # one-year terms, so the study end can fall in a quiet spell).
    hijack_days = sorted(h.day for h in world.log.hijacks)
    probe_day = min(day, hijack_days[len(hijack_days) // 2] + 30)
    probe = MonetizationProbe(world, study)
    report = probe.run(day=probe_day, sample=60, seed=7)
    print()
    print(format_table(
        ["usage class", "count"],
        list(report.classes.most_common()),
        title=f"What {report.sampled} hijacked domains serve (§6.2 probe)",
    ))

    print("\nSTEP 3 - Protect: defensive registrations (footnote 11)\n")
    sweep = DefensiveSweep(world, study, day=day)
    outcome = sweep.execute(budget=12)
    print(format_table(
        ["measure", "value"],
        [
            ("hijackable targets considered", outcome.targets_considered),
            ("registered (budget 12)", len(outcome.registered)),
            ("domains protected", len(outcome.protected_domains)),
            ("restricted-TLD groups covered",
             sum(1 for t in outcome.registered if t.reaches_restricted_tld)),
            ("first-year cost", f"${outcome.cost_usd:,.0f}"),
            ("cost per protected domain",
             f"${outcome.cost_per_protected_domain():,.2f}"),
        ],
        title="Defensive sweep outcome",
    ))
    print(
        "\nEverything above ran on observable data only (zone history, "
        "WHOIS, live probes) —\nthe same position a real responder is in."
    )


if __name__ == "__main__":
    main()
