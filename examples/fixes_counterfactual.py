#!/usr/bin/env python
"""What if the §7.3 fixes had always existed? A counterfactual study.

Runs three small worlds side by side — observed practice, the reserved
``.invalid`` renaming rule, and ubiquitous sink domains — and compares
the exposure each produces. Also demonstrates the cascade-deletion EPP
change on a live repository, including cross-registry cleanup through
the deletion-notification bus.

Run:  python examples/fixes_counterfactual.py
"""

from repro.analysis.report import format_table
from repro.analysis.study import StudyAnalysis
from repro.analysis.tables import table3
from repro.detection.pipeline import DetectionPipeline
from repro.ecosystem.config import default_scenario
from repro.ecosystem.counterfactual import all_sinks_scenario, invalid_fix_scenario
from repro.ecosystem.world import World
from repro.epp.extensions import DeletionNotificationBus, cascade_delete_everywhere
from repro.epp.registry import default_roster


def measure(name, config):
    world = World(config).run()
    pipeline = DetectionPipeline(
        world.zonedb, world.whois, mine_patterns=False
    ).run()
    summary = table3(StudyAnalysis(pipeline, world.zonedb, world.whois))
    return (
        name,
        sum(1 for r in world.log.renames if r.hijackable),
        summary.hijackable_domains,
        summary.hijacked_domains,
    )


def main() -> None:
    print("Running three 1:1000-scale worlds (~5 s)...\n")
    rows = [
        measure("observed practice", default_scenario().scaled(0.1)),
        measure("§7.3 fix: .invalid renaming", invalid_fix_scenario(scale=0.1)),
        measure("§7.3 fix: ubiquitous sinks", all_sinks_scenario(scale=0.1)),
    ]
    print(format_table(
        ["world", "hijackable renames", "exposed domains", "hijacked domains"],
        rows,
        title="Counterfactual: what the proposed fixes would have prevented",
    ))

    print("\nThe 'more ambitious' fix — cascade deletion with inter-registry")
    print("notification — demonstrated on a live repository pair:\n")
    roster = default_roster()
    verisign = roster.registry_for("x.com")
    afilias = roster.registry_for("x.org")
    for registry in (verisign, afilias):
        registry.accredit("regA")
        registry.accredit("regB")
    a_com = verisign.session("regA")
    b_org = afilias.session("regB")
    a_com.domain_create("hoster.com", day=0)
    a_com.host_create("ns1.hoster.com", day=0, addresses=["192.0.2.1"])
    b = verisign.session("regB")
    b.domain_create("client.com", day=1, nameservers=["ns1.hoster.com"])
    b_org.host_create("ns1.hoster.com", day=1)
    b_org.domain_create("client.org", day=1, nameservers=["ns1.hoster.com"])

    bus = DeletionNotificationBus()
    bus.subscribe(verisign.repository)
    bus.subscribe(afilias.repository)
    trimmed = cascade_delete_everywhere(
        [verisign.repository, afilias.repository],
        "regA", "hoster.com", day=400, bus=bus,
    )
    print(f"cascade-deleted hoster.com; trimmed references: {trimmed}")
    print(f"client.com NS now: {verisign.repository.domain('client.com').nameservers}")
    print(f"client.org NS now: {afilias.repository.domain('client.org').nameservers}")
    print(f"bus announcements: {bus.announcements()}")
    print(
        "\nNo sacrificial name was ever created — the dangling reference "
        "was removed at the\nsource, at the cost of the clients visibly "
        "losing the dead nameserver."
    )


if __name__ == "__main__":
    main()
