#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation.

Runs the canonical full-scale scenario, the detection pipeline, and all
analyses, then prints the complete report: the §3 funnel, Tables 1–6,
and Figures 3–7 (as text charts and CDF tables). Takes ~15 seconds.

Run:  python examples/full_paper_report.py [seed]
"""

import sys

from repro import reproduce
from repro.analysis.report import render_full_report


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 2021
    print(f"Running the full reproduction (seed={seed}, scale=1.0)...\n")
    bundle = reproduce(seed=seed)
    print(render_full_report(bundle.pipeline, bundle.study))


if __name__ == "__main__":
    main()
