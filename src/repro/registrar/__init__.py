"""Registrar agents, renaming idioms, and the deletion machinery.

This subpackage models the *operational practice* side of the paper:
registrars that must delete expired domains, the EPP constraint that
blocks deletion while subordinate host objects are linked, and the
rename-to-delete workaround — parameterized by the per-registrar renaming
idioms documented in the paper's Tables 1, 2, and 6.
"""

from repro.registrar.idioms import (
    RenamingIdiom,
    SinkDomainIdiom,
    PleaseDropThisHostIdiom,
    DropThisHostIdiom,
    DeletedDropIdiom,
    Enom123BizIdiom,
    SldRandomSuffixIdiom,
    ReservedLabelIdiom,
    idiom_catalog,
)
from repro.registrar.policy import DeletionMachinery, DeletionOutcome, HostRename
from repro.registrar.registrar import IdiomSchedule, Registrar

__all__ = [
    "RenamingIdiom",
    "SinkDomainIdiom",
    "PleaseDropThisHostIdiom",
    "DropThisHostIdiom",
    "DeletedDropIdiom",
    "Enom123BizIdiom",
    "SldRandomSuffixIdiom",
    "ReservedLabelIdiom",
    "idiom_catalog",
    "DeletionMachinery",
    "DeletionOutcome",
    "HostRename",
    "IdiomSchedule",
    "Registrar",
]
