"""The registrar deletion machinery: rename-then-delete.

This module implements the undocumented operational workaround at the
heart of the paper. Deleting an expired domain fails with EPP 2305 while
subordinate host objects exist; unlinked subordinate hosts can simply be
deleted, but a host still referenced by *other* domains (possibly at other
registrars, which isolation puts out of reach) can only be *renamed* out
of the way. The machinery renames such hosts using the registrar's
current idiom, retrying on host-object collisions, then deletes the
domain.

Sink-domain idioms additionally require the registrar to hold the sink
registration in every repository where the rename target is internal;
:func:`ensure_sink_domains` provisions those.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.dnscore.names import Name
from repro.dnscore.psl import PublicSuffixList, default_psl
from repro.epp.commands import EppSession
from repro.epp.errors import ResultCode
from repro.epp.registry import Registry
from repro.registrar.idioms import RenamingIdiom


@dataclass(frozen=True, slots=True)
class HostRename:
    """One sacrificial rename performed during a deletion."""

    old_name: str
    new_name: str
    day: int
    linked_domains: tuple[str, ...]
    attempts: int = 1


@dataclass
class DeletionOutcome:
    """The full result of one delete-domain operation."""

    domain: str
    day: int
    deleted: bool = False
    renames: list[HostRename] = field(default_factory=list)
    deleted_hosts: list[str] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)

    @property
    def created_sacrificial(self) -> bool:
        """True if any host was renamed (a sacrificial name was created)."""
        return bool(self.renames)


class DeletionMachinery:
    """Deletes domains through EPP, renaming linked subordinate hosts.

    One instance per registrar; stateless apart from its RNG, which must
    be the registrar's own stream so runs stay deterministic.
    """

    def __init__(
        self,
        rng: random.Random,
        *,
        psl: PublicSuffixList | None = None,
        max_rename_attempts: int = 8,
    ) -> None:
        self._rng = rng
        self._psl = psl or default_psl()
        self._max_attempts = max_rename_attempts

    def delete_domain(
        self,
        session: EppSession,
        domain: str,
        idiom: RenamingIdiom,
        *,
        day: int,
    ) -> DeletionOutcome:
        """Delete ``domain``, renaming linked subordinate hosts as needed.

        Follows the observed operational sequence:

        1. try <domain:delete> — done if it succeeds;
        2. on 2305, walk the subordinate hosts: <host:delete> the
           unlinked ones, rename the linked ones via the idiom;
        3. retry <domain:delete>.
        """
        outcome = DeletionOutcome(domain=Name(domain).text, day=day)
        result = session.domain_delete(domain, day=day)
        if result.ok:
            outcome.deleted = True
            return outcome
        if result.code is not ResultCode.ASSOCIATION_PROHIBITS_OPERATION:
            outcome.errors.append(f"domain:delete -> {result.code} {result.detail}")
            return outcome

        repo = session.repository
        # Strip the dying domain's own delegation first: its subordinate
        # hosts should not be kept alive (and renamed) merely because the
        # domain being deleted delegates to them. Registrar deprovisioning
        # removes the zone entry as part of deletion anyway.
        own_ns = list(repo.domain(domain).nameservers)
        if own_ns:
            session.domain_update_ns(domain, day=day, remove=own_ns)
        for host_name in sorted(repo.subordinate_hosts(domain)):
            self._clear_host(session, host_name, idiom, day, outcome)

        result = session.domain_delete(domain, day=day)
        if result.ok:
            outcome.deleted = True
        else:
            outcome.errors.append(
                f"final domain:delete -> {result.code} {result.detail}"
            )
        return outcome

    def _clear_host(
        self,
        session: EppSession,
        host_name: str,
        idiom: RenamingIdiom,
        day: int,
        outcome: DeletionOutcome,
    ) -> None:
        delete_result = session.host_delete(host_name, day=day)
        if delete_result.ok:
            outcome.deleted_hosts.append(host_name)
            return
        if delete_result.code is not ResultCode.ASSOCIATION_PROHIBITS_OPERATION:
            outcome.errors.append(
                f"host:delete {host_name} -> {delete_result.code} "
                f"{delete_result.detail}"
            )
            return
        # Host is linked by other domains: rename it out of the namespace.
        linked = tuple(sorted(session.repository.host(host_name).linked_domains))
        for attempt in range(self._max_attempts):
            new_name = idiom.rename(
                host_name, self._rng, attempt=attempt, psl=self._psl
            )
            rename_result = session.host_rename(host_name, new_name, day=day)
            if rename_result.ok:
                # Drop stale glue: an internal (sink) rename keeps the host
                # object's addresses, which would leave the sacrificial name
                # statically resolvable via glue. Operationally registrars
                # strip the addresses so the sink host answers nothing.
                host_obj = session.repository.host(new_name)
                if not host_obj.external and host_obj.addresses:
                    session.host_set_addresses(new_name, (), day=day)
                outcome.renames.append(
                    HostRename(
                        old_name=Name(host_name).text,
                        new_name=Name(new_name).text,
                        day=day,
                        linked_domains=linked,
                        attempts=attempt + 1,
                    )
                )
                return
            if rename_result.code is not ResultCode.OBJECT_EXISTS:
                outcome.errors.append(
                    f"host:rename {host_name} -> {rename_result.code} "
                    f"{rename_result.detail}"
                )
                return
        outcome.errors.append(
            f"host:rename {host_name}: exhausted {self._max_attempts} attempts"
        )


def ensure_sink_domains(
    registrar: str,
    idiom: RenamingIdiom,
    registries: list[Registry],
    *,
    day: int,
    period_years: int = 10,
) -> list[str]:
    """Register the idiom's sink domains wherever they are registerable.

    A sink rename targeting a namespace *internal* to a repository is only
    accepted if the sink domain object exists there under the acting
    registrar, and the sink is only safe from hijacking if its public
    registration is maintained. Sinks are registered **without
    nameservers**: the registrar does not want its servers answering for
    domains it is not authoritative for, so sacrificial names under the
    sink stay lame-delegated (paper §3.1, property 2).

    Returns the names actually registered (empty if already present or if
    no simulated registry sells the sink's TLD — e.g. ``notaplaceto.be``).
    """
    registered: list[str] = []
    for sink in idiom.sink_domains_needed():
        tld = Name(sink).tld
        for registry in registries:
            if tld not in registry.tlds:
                continue
            if registry.repository.domain_exists(sink):
                break
            session = registry.session(registrar)
            result = session.domain_create(
                sink, day=day, period_years=period_years
            )
            if result.ok:
                registered.append(Name(sink).text)
            break
    return registered
