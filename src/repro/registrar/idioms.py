"""Registrar renaming idioms (paper Tables 1, 2, and 6).

When the deletion machinery must rename a host object out of a domain's
namespace, the replacement name is produced by the registrar's *renaming
idiom*. The paper documents two classes:

* **sink-domain idioms** (Table 1) rename under a fixed domain the
  registrar keeps registered — non-hijackable while the registration is
  maintained;
* **random-name idioms** (Table 2) rename to a fresh, usually
  unregistered, name in a foreign TLD (classically ``.biz``) —
  hijackable by whoever registers that name.

Table 6 adds the post-remediation idioms (a reserved-namespace label and
two new sink domains).

Every idiom is deterministic given the caller-supplied
:class:`random.Random`, and takes an ``attempt`` counter so collision
retries produce different names.
"""

from __future__ import annotations

import random
import string
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.dnscore.names import Name
from repro.dnscore.psl import PublicSuffixList, default_psl

_ALNUM = string.ascii_lowercase + string.digits
_HEX = "0123456789abcdef"


def random_alnum(rng: random.Random, length: int) -> str:
    """A lowercase alphanumeric string of the given length."""
    return "".join(rng.choice(_ALNUM) for _ in range(length))


def random_uuid(rng: random.Random) -> str:
    """A UUID-shaped hex string (GoDaddy's DROPTHISHOST suffix format)."""
    parts = (8, 4, 4, 4, 12)
    return "-".join("".join(rng.choice(_HEX) for _ in range(n)) for n in parts)


class RenamingIdiom(ABC):
    """One registrar's scheme for naming renamed (sacrificial) hosts."""

    #: Short identifier matching the paper's "Renaming Idiom" column.
    idiom_id: str = ""
    #: True if the produced names are registerable by third parties.
    hijackable: bool = True
    #: The fixed sink registered-domain, if the idiom uses one.
    sink_domain: str | None = None

    @abstractmethod
    def rename(
        self,
        host: str,
        rng: random.Random,
        *,
        attempt: int = 0,
        psl: PublicSuffixList | None = None,
    ) -> str:
        """Produce the sacrificial name replacing ``host``."""

    def sink_domains_needed(self) -> tuple[str, ...]:
        """Registered domains the registrar must hold for safety."""
        return (self.sink_domain,) if self.sink_domain else ()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(idiom_id={self.idiom_id!r})"


def _flatten(host: str) -> str:
    """Flatten a host name into a single label fragment (dots to dashes)."""
    return Name(host).text.replace(".", "-")


@dataclass(repr=False)
class SinkDomainIdiom(RenamingIdiom):
    """Rename under a registered sink domain: ``{tag}.{sink}``.

    Used (per Table 1) by Internet.bs (DUMMYNS.COM), Network Solutions
    (LAMEDELEGATION.ORG), TLD Registrar Solutions (NSHOLDFIX.COM), GMO
    Internet (DELETE-HOST.COM), Xin Net (DELETEDNS.COM), and SRSPlus
    (LAMEDELEGATIONSERVERS.{COM,NET}); and (per Table 6) post-remediation
    by Internet.bs (NOTAPLACETO.BE) and Enom (DELETE-REGISTRATION.COM).
    """

    sink: str
    tag_length: int = 6

    def __post_init__(self) -> None:
        self.sink_domain = Name(self.sink).text
        self.idiom_id = self.sink_domain.upper()
        self.hijackable = False

    def rename(
        self,
        host: str,
        rng: random.Random,
        *,
        attempt: int = 0,
        psl: PublicSuffixList | None = None,
    ) -> str:
        tag = _flatten(host)
        suffix = random_alnum(rng, self.tag_length + attempt)
        return f"{tag}-{suffix}.{self.sink_domain}"


@dataclass(repr=False)
class PleaseDropThisHostIdiom(RenamingIdiom):
    """GoDaddy's early idiom: ``pleasedropthishost{rand}.{sld}.biz``.

    The original second-level name is preserved, the host label is
    replaced with PLEASEDROPTHISHOST plus a random string, and the TLD
    becomes ``.biz`` — or ``.com`` when the original was already in
    ``.biz``. Because the SLD is preserved verbatim, the produced
    registered domain can collide with an *existing* registration (the
    paper counts 3,704 such accidents).
    """

    rand_length: int = 5

    def __post_init__(self) -> None:
        self.idiom_id = "PLEASEDROPTHISHOST"
        self.hijackable = True

    def rename(
        self,
        host: str,
        rng: random.Random,
        *,
        attempt: int = 0,
        psl: PublicSuffixList | None = None,
    ) -> str:
        psl = psl or default_psl()
        name = Name(host)
        sld = psl.sld(name) or name.labels[0]
        new_tld = "com" if name.tld == "biz" else "biz"
        label = "pleasedropthishost" + random_alnum(rng, self.rand_length + attempt)
        return f"{label}.{sld}.{new_tld}"


@dataclass(repr=False)
class DropThisHostIdiom(RenamingIdiom):
    """GoDaddy's 2015+ idiom: ``dropthishost-{uuid}.biz``.

    A fresh UUID per rename avoids the accidental collisions of the
    PLEASEDROPTHISHOST scheme but the name remains registerable.
    """

    def __post_init__(self) -> None:
        self.idiom_id = "DROPTHISHOST"
        self.hijackable = True

    def rename(
        self,
        host: str,
        rng: random.Random,
        *,
        attempt: int = 0,
        psl: PublicSuffixList | None = None,
    ) -> str:
        return f"dropthishost-{random_uuid(rng)}.biz"


@dataclass(repr=False)
class DeletedDropIdiom(RenamingIdiom):
    """Internet.bs's 2015+ idiom: ``deleted-{rand}.drop-{rand}.biz``."""

    def __post_init__(self) -> None:
        self.idiom_id = "DELETED-DROP"
        self.hijackable = True

    def rename(
        self,
        host: str,
        rng: random.Random,
        *,
        attempt: int = 0,
        psl: PublicSuffixList | None = None,
    ) -> str:
        left = "deleted-" + random_alnum(rng, 5 + attempt)
        right = "drop-" + random_alnum(rng, 6)
        return f"{left}.{right}.biz"


@dataclass(repr=False)
class Enom123BizIdiom(RenamingIdiom):
    """Enom's early idiom: ``ns1.foo.com`` becomes ``ns1.foo123.biz``.

    The host label is preserved, ``123`` is appended to the SLD, and the
    TLD is replaced with ``.biz``. Deterministic — collision retries fall
    back to appending extra digits.
    """

    def __post_init__(self) -> None:
        self.idiom_id = "123.BIZ"
        self.hijackable = True

    def rename(
        self,
        host: str,
        rng: random.Random,
        *,
        attempt: int = 0,
        psl: PublicSuffixList | None = None,
    ) -> str:
        psl = psl or default_psl()
        name = Name(host)
        sld = psl.sld(name) or name.labels[0]
        sub = psl.subdomain_part(name) or "ns"
        extra = str(attempt) if attempt else ""
        return f"{sub}.{sld}123{extra}.biz"


@dataclass(repr=False)
class SldRandomSuffixIdiom(RenamingIdiom):
    """The ``ns1.foo.com`` → ``ns1.foo{rand}.biz`` family.

    Used by Enom (post-2012), DomainPeople, Fabulous.com, and
    Register.com with varying random-string lengths. When the original
    host is already under ``.biz`` the replacement uses ``.com``
    (matching Enom's documented behaviour).
    """

    rand_length: int = 6

    def __post_init__(self) -> None:
        self.idiom_id = "XXXXX.BIZ"
        self.hijackable = True

    def rename(
        self,
        host: str,
        rng: random.Random,
        *,
        attempt: int = 0,
        psl: PublicSuffixList | None = None,
    ) -> str:
        psl = psl or default_psl()
        name = Name(host)
        sld = psl.sld(name) or name.labels[0]
        sub = psl.subdomain_part(name) or "ns"
        new_tld = "com" if name.tld == "biz" else "biz"
        suffix = random_alnum(rng, self.rand_length + attempt)
        return f"{sub}.{sld}{suffix}.{new_tld}"


@dataclass(repr=False)
class ReservedLabelIdiom(RenamingIdiom):
    """GoDaddy's post-remediation idiom: ``{rand}.empty.as112.arpa``.

    Renames under a reserved namespace that no registry sells, so the
    name can never be registered (Table 6). The same class models any
    future ``.invalid``-style reserved-TLD scheme.
    """

    apex: str = "empty.as112.arpa"

    def __post_init__(self) -> None:
        self.apex = Name(self.apex).text
        self.idiom_id = self.apex.upper()
        self.hijackable = False
        self.sink_domain = None  # reserved namespace: nothing to register

    def rename(
        self,
        host: str,
        rng: random.Random,
        *,
        attempt: int = 0,
        psl: PublicSuffixList | None = None,
    ) -> str:
        tag = _flatten(host)
        suffix = random_alnum(rng, 6 + attempt)
        return f"{tag}-{suffix}.{self.apex}"


def idiom_catalog() -> dict[str, RenamingIdiom]:
    """Every idiom documented in the paper, keyed by its idiom id.

    Table 1 (sink domains), Table 2 (random names), and Table 6
    (post-remediation schemes).
    """
    idioms: list[RenamingIdiom] = [
        # Table 1 — non-hijackable sink domains.
        SinkDomainIdiom("dummyns.com"),
        SinkDomainIdiom("lamedelegation.org"),
        SinkDomainIdiom("nsholdfix.com"),
        SinkDomainIdiom("delete-host.com"),
        SinkDomainIdiom("deletedns.com"),
        SinkDomainIdiom("lamedelegationservers.com"),
        # Table 2 — hijackable random names.
        PleaseDropThisHostIdiom(),
        DropThisHostIdiom(),
        DeletedDropIdiom(),
        Enom123BizIdiom(),
        SldRandomSuffixIdiom(),
        # Table 6 — post-remediation idioms.
        ReservedLabelIdiom(),
        SinkDomainIdiom("notaplaceto.be"),
        SinkDomainIdiom("delete-registration.com"),
    ]
    return {idiom.idiom_id: idiom for idiom in idioms}
