"""Registrar agents: accreditation, provisioning, and idiom schedules.

A :class:`Registrar` owns EPP sessions at the registries where it is
accredited, registers and deletes domains on behalf of registrants, and
carries an :class:`IdiomSchedule` describing which renaming idiom its
deletion machinery uses at any point in time (registrars changed idioms
over the years — e.g. GoDaddy's PLEASEDROPTHISHOST → DROPTHISHOST →
EMPTY.AS112.ARPA progression).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.dnscore.names import Name
from repro.dnscore.psl import PublicSuffixList, default_psl
from repro.epp.commands import EppSession, Result
from repro.epp.registry import Registry, RegistryRoster
from repro.registrar.idioms import RenamingIdiom
from repro.registrar.policy import (
    DeletionMachinery,
    DeletionOutcome,
    ensure_sink_domains,
)


@dataclass
class IdiomSchedule:
    """A time-ordered sequence of (effective_day, idiom) entries."""

    entries: list[tuple[int, RenamingIdiom]] = field(default_factory=list)

    def add(self, day: int, idiom: RenamingIdiom) -> None:
        """Adopt ``idiom`` effective on ``day`` (kept sorted)."""
        self.entries.append((day, idiom))
        self.entries.sort(key=lambda entry: entry[0])

    def current(self, day: int) -> RenamingIdiom:
        """The idiom in effect on ``day``.

        Raises :class:`LookupError` if no idiom is effective yet.
        """
        chosen: RenamingIdiom | None = None
        for effective, idiom in self.entries:
            if effective <= day:
                chosen = idiom
            else:
                break
        if chosen is None:
            raise LookupError(f"no renaming idiom effective on day {day}")
        return chosen

    def history(self) -> list[tuple[int, RenamingIdiom]]:
        """All entries, oldest first."""
        return list(self.entries)


class Registrar:
    """One registrar in the simulated ecosystem."""

    def __init__(
        self,
        ident: str,
        display_name: str,
        *,
        seed: int = 0,
        schedule: IdiomSchedule | None = None,
        default_ns_domain: str | None = None,
        psl: PublicSuffixList | None = None,
    ) -> None:
        self.ident = ident
        self.display_name = display_name
        self.schedule = schedule or IdiomSchedule()
        self.default_ns_domain = (
            Name(default_ns_domain).text if default_ns_domain else None
        )
        self.rng = random.Random(seed)
        self._psl = psl or default_psl()
        self.machinery = DeletionMachinery(self.rng, psl=self._psl)
        self._sessions: dict[str, EppSession] = {}
        self._registries: list[Registry] = []

    # -- accreditation and sessions ----------------------------------------

    def accredit_at(self, registries: list[Registry]) -> None:
        """Become accredited at each registry and cache it."""
        for registry in registries:
            registry.accredit(self.ident)
            if registry not in self._registries:
                self._registries.append(registry)

    def session_for(self, registry: Registry) -> EppSession:
        """A (cached) EPP session at ``registry``."""
        session = self._sessions.get(registry.operator)
        if session is None:
            session = registry.session(self.ident)
            self._sessions[registry.operator] = session
        return session

    # -- idioms ------------------------------------------------------------

    def current_idiom(self, day: int) -> RenamingIdiom:
        """The renaming idiom this registrar's machinery uses on ``day``."""
        return self.schedule.current(day)

    def adopt_idiom(self, day: int, idiom: RenamingIdiom) -> list[str]:
        """Switch to a new idiom and provision any sink domains it needs."""
        self.schedule.add(day, idiom)
        return ensure_sink_domains(self.ident, idiom, self._registries, day=day)

    def provision_sinks(self, day: int) -> list[str]:
        """Ensure the sinks of the currently scheduled idioms exist."""
        registered: list[str] = []
        for _, idiom in self.schedule.history():
            registered.extend(
                ensure_sink_domains(self.ident, idiom, self._registries, day=day)
            )
        return registered

    # -- provisioning -------------------------------------------------------

    def register_domain(
        self,
        roster: RegistryRoster,
        name: str,
        *,
        day: int,
        nameservers: list[str] | None = None,
        period_years: int = 1,
        registrant: str = "",
    ) -> Result:
        """Register ``name``, creating missing external host objects.

        Nameserver host objects internal to the target repository must
        already exist (only their superordinate domain's sponsor can
        create them); external ones are created on the fly, which is how
        real registrars reference third-party nameservers.
        """
        registry = roster.registry_for(name)
        session = self.session_for(registry)
        ns_list = [Name(ns).text for ns in (nameservers or [])]
        for ns in ns_list:
            self.ensure_external_host(registry, ns, day=day)
        return session.domain_create(
            name,
            day=day,
            period_years=period_years,
            nameservers=ns_list,
            registrant=registrant,
        )

    def ensure_external_host(
        self, registry: Registry, host: str, *, day: int
    ) -> None:
        """Create a host object for an out-of-repository nameserver name."""
        repo = registry.repository
        if repo.host_exists(host) or repo.is_internal(host):
            return
        self.session_for(registry).host_create(host, day=day)

    def create_subordinate_hosts(
        self,
        roster: RegistryRoster,
        domain: str,
        hosts: dict[str, list[str]],
        *,
        day: int,
    ) -> list[Result]:
        """Create glue-carrying host objects under a domain we sponsor.

        ``hosts`` maps host names (e.g. ``ns1.foo.com``) to address lists.
        """
        registry = roster.registry_for(domain)
        session = self.session_for(registry)
        return [
            session.host_create(host, day=day, addresses=addresses)
            for host, addresses in hosts.items()
        ]

    def update_nameservers(
        self,
        roster: RegistryRoster,
        domain: str,
        *,
        day: int,
        add: list[str] | None = None,
        remove: list[str] | None = None,
    ) -> Result:
        """Change a sponsored domain's delegation."""
        registry = roster.registry_for(domain)
        session = self.session_for(registry)
        for ns in add or []:
            self.ensure_external_host(registry, ns, day=day)
        return session.domain_update_ns(
            domain, day=day, add=add or [], remove=remove or []
        )

    def renew_domain(
        self, roster: RegistryRoster, domain: str, *, day: int, period_years: int = 1
    ) -> Result:
        """Renew a sponsored domain."""
        registry = roster.registry_for(domain)
        return self.session_for(registry).domain_renew(
            domain, day=day, period_years=period_years
        )

    def delete_domain(
        self, roster: RegistryRoster, domain: str, *, day: int
    ) -> DeletionOutcome:
        """Delete a sponsored domain via the rename-then-delete machinery."""
        registry = roster.registry_for(domain)
        session = self.session_for(registry)
        idiom = self.current_idiom(day)
        return self.machinery.delete_domain(session, domain, idiom, day=day)

    def __repr__(self) -> str:
        return f"Registrar(ident={self.ident!r}, display_name={self.display_name!r})"
