"""Named, independent RNG streams for fault injection.

Each fault class draws from its own stream, derived from ``(seed,
stream name)`` by hashing — so enabling snapshot drops cannot shift the
draws that decide WHOIS gaps, and enabling faults at all cannot perturb
the base world (whose RNGs are seeded elsewhere entirely). Streams are
stable across processes and Python versions (SHA-256, not ``hash()``).
"""

from __future__ import annotations

import hashlib
import random


def stable_hash(text: str) -> int:
    """A 64-bit hash of ``text`` that is identical across processes.

    Builtin ``hash()`` is randomized per process for str/bytes
    (PYTHONHASHSEED), so any value derived from it breaks bit-level
    reproducibility. Use this wherever a hash feeds simulation state or
    serialized output.
    """
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def stream_rng(seed: int, name: str) -> random.Random:
    """A deterministic :class:`random.Random` for one named stream."""
    return random.Random(stable_hash(f"{seed}:{name}"))


class FaultStreams:
    """A factory of memoized named streams sharing one seed.

    >>> streams = FaultStreams(7)
    >>> streams.stream("snapshot.drop") is streams.stream("snapshot.drop")
    True
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name``, created on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = stream_rng(self.seed, name)
            self._streams[name] = rng
        return rng
