"""Fault-injection configuration: rates, windows, and retry policy.

:class:`FaultConfig` is deliberately a plain frozen dataclass with no
imports from the rest of the library, so any layer (ecosystem scenario,
resolver, CLI) can depend on it without cycles. All rates are
probabilities in ``[0, 1]``; a config whose rates are all zero is
*disabled* and every consumer short-circuits to its pristine fast path.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any


@dataclass(frozen=True)
class RetryPolicy:
    """Resolver retry-with-exponential-backoff/timeout parameters.

    Attempt ``k`` (0-based) is given ``base_timeout_ms *
    backoff_factor**k`` milliseconds, capped at ``max_timeout_ms``;
    after ``max_retries`` re-attempts the resolver gives up and treats
    the failure as persistent.
    """

    max_retries: int = 2
    base_timeout_ms: int = 1000
    backoff_factor: float = 2.0
    max_timeout_ms: int = 8000

    def timeout_for(self, attempt: int) -> int:
        """The timeout budget (ms) for the ``attempt``-th try (0-based)."""
        budget = self.base_timeout_ms * (self.backoff_factor ** attempt)
        return int(min(budget, self.max_timeout_ms))

    @property
    def attempts(self) -> int:
        """Total tries per server: the first query plus every retry."""
        return self.max_retries + 1


@dataclass(frozen=True)
class FaultConfig:
    """Every knob of the degraded-data plane, in one seedable value.

    Snapshot-plane rates model CAIDA-DZDB realities (missing days,
    truncated files, corrupted records); WHOIS rates model partial
    DomainTools coverage; nameserver rates model flaky authoritative
    servers. ``gap_bridge_days``/``strict`` configure how ingestion
    reacts, and ``retry`` how resolution reacts.
    """

    #: Seed for the named fault RNG streams (independent of the world seed).
    seed: int = 0

    # -- snapshot plane (zone-file archive) --------------------------------
    #: Probability a daily snapshot is missing entirely.
    snapshot_drop_rate: float = 0.0
    #: Probability a snapshot is delivered twice.
    snapshot_duplicate_rate: float = 0.0
    #: Probability a snapshot is swapped with its successor (out of order).
    snapshot_reorder_rate: float = 0.0
    #: Probability a snapshot is truncated (file cut short mid-transfer).
    snapshot_truncate_rate: float = 0.0
    #: Fraction of delegations that survive a truncation.
    truncate_keep_fraction: float = 0.5
    #: Per-delegation probability of record corruption (mangled names).
    record_corrupt_rate: float = 0.0

    # -- WHOIS plane --------------------------------------------------------
    #: Probability a domain's entire WHOIS history is missing (coverage gap).
    whois_gap_rate: float = 0.0
    #: Probability a WHOIS record is stale (deletion/transfers never observed).
    whois_stale_rate: float = 0.0

    # -- nameserver plane ---------------------------------------------------
    #: Per-query probability an authoritative server times out.
    ns_timeout_rate: float = 0.0
    #: Per-query probability of a SERVFAIL response.
    ns_servfail_rate: float = 0.0
    #: Per-query probability of a slow (but correct) answer.
    ns_slow_rate: float = 0.0
    #: Latency of a slow answer, in milliseconds.
    slow_latency_ms: int = 1500

    # -- consumer policy ----------------------------------------------------
    #: DZDB-style gap bridging: a delegation absent for at most this many
    #: days keeps its interval open. 0 reproduces strict day-level diffing.
    gap_bridge_days: int = 0
    #: Strict ingestion: raise on degraded input instead of degrading.
    strict: bool = False
    #: Resolver retry/timeout model used when querying flaky servers.
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    _RATE_FIELDS = (
        "snapshot_drop_rate",
        "snapshot_duplicate_rate",
        "snapshot_reorder_rate",
        "snapshot_truncate_rate",
        "record_corrupt_rate",
        "whois_gap_rate",
        "whois_stale_rate",
        "ns_timeout_rate",
        "ns_servfail_rate",
        "ns_slow_rate",
    )

    @property
    def enabled(self) -> bool:
        """True if any fault rate is non-zero."""
        return any(getattr(self, name) > 0 for name in self._RATE_FIELDS)

    @property
    def snapshot_faults_enabled(self) -> bool:
        """True if any snapshot-plane rate is non-zero."""
        return any(
            getattr(self, name) > 0
            for name in self._RATE_FIELDS
            if name.startswith(("snapshot_", "record_"))
        )

    @property
    def whois_faults_enabled(self) -> bool:
        """True if any WHOIS-plane rate is non-zero."""
        return self.whois_gap_rate > 0 or self.whois_stale_rate > 0

    @property
    def ns_faults_enabled(self) -> bool:
        """True if any nameserver-plane rate is non-zero."""
        return any(
            getattr(self, name) > 0
            for name in self._RATE_FIELDS
            if name.startswith("ns_")
        )

    @classmethod
    def off(cls) -> "FaultConfig":
        """A disabled config (all rates zero) — the default."""
        return cls()

    @classmethod
    def uniform(cls, rate: float, *, seed: int = 0, **overrides: Any) -> "FaultConfig":
        """A config degrading every observational plane at one rate.

        The sweep experiment uses this to parameterize "X% degraded":
        snapshot drops/truncations/corruption and WHOIS gaps all at
        ``rate``; duplication/reordering at half of it (rarer in
        practice); and a gap-bridge window wide enough to matter.
        """
        config = cls(
            seed=seed,
            snapshot_drop_rate=rate,
            snapshot_duplicate_rate=rate / 2,
            snapshot_reorder_rate=rate / 2,
            snapshot_truncate_rate=rate,
            record_corrupt_rate=rate / 10,
            whois_gap_rate=rate,
            whois_stale_rate=rate,
            ns_timeout_rate=rate,
            ns_servfail_rate=rate / 2,
            ns_slow_rate=rate,
            gap_bridge_days=45,
        )
        return replace(config, **overrides) if overrides else config


def fault_config_to_dict(config: FaultConfig) -> dict[str, Any]:
    """A JSON-ready dict for a :class:`FaultConfig`."""
    return {
        "seed": config.seed,
        "snapshot_drop_rate": config.snapshot_drop_rate,
        "snapshot_duplicate_rate": config.snapshot_duplicate_rate,
        "snapshot_reorder_rate": config.snapshot_reorder_rate,
        "snapshot_truncate_rate": config.snapshot_truncate_rate,
        "truncate_keep_fraction": config.truncate_keep_fraction,
        "record_corrupt_rate": config.record_corrupt_rate,
        "whois_gap_rate": config.whois_gap_rate,
        "whois_stale_rate": config.whois_stale_rate,
        "ns_timeout_rate": config.ns_timeout_rate,
        "ns_servfail_rate": config.ns_servfail_rate,
        "ns_slow_rate": config.ns_slow_rate,
        "slow_latency_ms": config.slow_latency_ms,
        "gap_bridge_days": config.gap_bridge_days,
        "strict": config.strict,
        "retry": {
            "max_retries": config.retry.max_retries,
            "base_timeout_ms": config.retry.base_timeout_ms,
            "backoff_factor": config.retry.backoff_factor,
            "max_timeout_ms": config.retry.max_timeout_ms,
        },
    }


def fault_config_from_dict(data: dict[str, Any] | None) -> FaultConfig:
    """Rebuild a :class:`FaultConfig`; ``None`` yields the disabled default.

    Tolerating ``None``/missing keys keeps scenario files written before
    the faults subsystem loadable unchanged.
    """
    if data is None:
        return FaultConfig()
    retry_data = data.get("retry", {})
    kwargs = {k: v for k, v in data.items() if k != "retry"}
    return FaultConfig(retry=RetryPolicy(**retry_data), **kwargs)
