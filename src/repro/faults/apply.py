"""Degrade one simulated world's observables into realistic data sets.

The world engine produces *pristine* observables: a zone database built
from every registry change and a complete WHOIS archive. Real
measurement inputs are worse — zone files arrive daily (and sometimes
not at all), WHOIS coverage is partial. :func:`degrade_world` rebuilds
the observables the way a collector would have seen them: reconstruct
the daily snapshot stream, push it through the fault injectors, then
re-ingest with the configured gap-bridging policy.

The base world is never touched; all degradation happens on copies
derived from its outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.ecosystem.world import WorldResult

from repro.faults.config import FaultConfig
from repro.faults.injectors import (
    SnapshotFaultInjector,
    SnapshotFaultLog,
    WhoisFaultInjector,
    WhoisFaultLog,
)
from repro.whois.archive import WhoisArchive
from repro.zonedb.database import IngestPolicy, IngestReport, ZoneDatabase
from repro.zonedb.snapshot import ZoneSnapshot


def snapshot_stream(
    zonedb: ZoneDatabase, *, every: int = 1, end_day: int | None = None
) -> list[ZoneSnapshot]:
    """Reconstruct the daily snapshot deliveries a collector would see.

    Samples one snapshot per covered TLD every ``every`` days (always
    including the final day), in (day, tld) delivery order — the same
    sampling ``riskybiz simulate`` writes to disk. Empty snapshots are
    skipped, as a TLD with no delegations publishes nothing of interest.
    """
    end = end_day if end_day is not None else zonedb.horizon
    days = list(range(0, end, every))
    if end > 0 and (not days or days[-1] != end - 1):
        days.append(end - 1)
    snapshots: list[ZoneSnapshot] = []
    for day in days:
        for tld in sorted(zonedb.covered_tlds):
            snapshot = zonedb.snapshot_at(day, tld)
            if snapshot.delegations:
                snapshots.append(snapshot)
    return snapshots


@dataclass
class DegradedObservables:
    """The degraded data sets plus a full account of the degradation."""

    config: FaultConfig
    zonedb: ZoneDatabase
    whois: WhoisArchive
    snapshot_log: SnapshotFaultLog = field(default_factory=SnapshotFaultLog)
    whois_log: WhoisFaultLog = field(default_factory=WhoisFaultLog)
    ingest_reports: list[IngestReport] = field(default_factory=list)
    #: Snapshots the pristine stream contained.
    snapshots_total: int = 0
    #: Snapshots actually delivered after injection (drops/duplicates).
    snapshots_delivered: int = 0

    @property
    def snapshot_coverage(self) -> float:
        """Fraction of pristine snapshots that survived injection."""
        if self.snapshots_total == 0:
            return 1.0
        survived = self.snapshots_total - len(self.snapshot_log.dropped)
        return survived / self.snapshots_total


def _record_fault_metrics(
    snapshot_log: SnapshotFaultLog, whois_log: WhoisFaultLog
) -> None:
    """Mirror injector activations into the obs metrics registry.

    Imported lazily so the faults package keeps no import-time
    dependency on the obs layer.
    """
    from repro.obs import runtime as obs

    obs.counter("faults.snapshots_dropped").inc(len(snapshot_log.dropped))
    obs.counter("faults.snapshots_duplicated").inc(len(snapshot_log.duplicated))
    obs.counter("faults.snapshots_reordered").inc(len(snapshot_log.reordered))
    obs.counter("faults.snapshots_truncated").inc(len(snapshot_log.truncated))
    obs.counter("faults.records_corrupted").inc(len(snapshot_log.corrupted))
    obs.counter("faults.whois_domains_dropped").inc(
        len(whois_log.domains_dropped)
    )
    obs.counter("faults.whois_records_staled").inc(
        len(whois_log.records_staled)
    )


def degrade_world(
    world_result: "WorldResult", config: FaultConfig, *, every: int = 7
) -> DegradedObservables:
    """Degraded observables for one :class:`~repro.ecosystem.world.WorldResult`.

    Rebuilds the zone database from a fault-injected snapshot stream
    (ingested under ``config``'s gap-bridge/strict policy) and a
    fault-injected WHOIS archive. ``every`` is the snapshot sampling
    interval in days; smaller is more faithful and slower.
    """
    snapshots = snapshot_stream(
        world_result.zonedb, every=every, end_day=world_result.config.end_day
    )
    snapshot_injector = SnapshotFaultInjector(config)
    delivered = snapshot_injector.degrade(snapshots)
    policy = IngestPolicy(gap_bridge_days=config.gap_bridge_days, strict=config.strict)
    zonedb = ZoneDatabase(ingest_policy=policy)
    for snapshot in delivered:
        zonedb.ingest_snapshot(snapshot)
    zonedb.finalize_pending()
    if world_result.config.end_day > zonedb.horizon:
        zonedb.advance(world_result.config.end_day)
    whois_injector = WhoisFaultInjector(config)
    whois = whois_injector.degrade(world_result.whois)
    _record_fault_metrics(snapshot_injector.log, whois_injector.log)
    return DegradedObservables(
        config=config,
        zonedb=zonedb,
        whois=whois,
        snapshot_log=snapshot_injector.log,
        whois_log=whois_injector.log,
        ingest_reports=list(zonedb.ingest_reports),
        snapshots_total=len(snapshots),
        snapshots_delivered=len(delivered),
    )
