"""Process-level chaos: killing workers and supervisors at boundaries.

Where :mod:`repro.faults.injectors` degrades the *observational* data
plane (what a measurement team collects), this module degrades the
*execution* plane: the processes running the pipeline. Three fault
classes, each on its own named RNG stream (seeded-stream conventions
from :mod:`repro.faults.rng`):

* ``chaos.worker`` — kill a shard worker at a stage boundary;
* ``chaos.supervisor`` — kill the supervisor at a journal-append
  boundary;
* ``chaos.torn`` — cut a journal append short mid-record (a torn
  write), then die.

In-process execution simulates a SIGKILL by raising
:class:`ChaosKill` — a ``BaseException`` so no ordinary error handler
can absorb it, mirroring how a real kill skips ``except Exception``
blocks entirely. Real worker processes call :meth:`ChaosMonkey.exit_if`
instead, which ``os._exit``\\ s with :data:`KILL_EXIT_CODE` (what the
kernel reports for SIGKILL) so the supervisor's crash-retry path is
exercised for real.

A monkey's kill budget (``max_kills``) makes chaos runs terminate: once
spent, every boundary passes and the run completes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.faults.rng import stream_rng

#: Exit status of a SIGKILLed process (128 + 9).
KILL_EXIT_CODE = 137


class ChaosKill(BaseException):
    """Simulated SIGKILL: the process is considered dead at this point.

    Derives from ``BaseException`` deliberately — crash-safety code must
    survive the process *vanishing*, not an exception politely unwinding
    through cleanup handlers.
    """

    def __init__(self, site: str, label: str) -> None:
        super().__init__(f"chaos kill at {site}:{label}")
        self.site = site
        self.label = label


@dataclass(frozen=True)
class ProcessChaosConfig:
    """Every knob of the execution-plane chaos, in one seedable value."""

    #: Seed for the chaos RNG streams (independent of world/fault seeds).
    seed: int = 0
    #: Per-boundary probability of killing a shard worker.
    kill_worker_rate: float = 0.0
    #: Per-append probability of killing the supervisor.
    kill_supervisor_rate: float = 0.0
    #: Per-append probability of a torn (truncated) journal write.
    torn_write_rate: float = 0.0
    #: Total kills the monkey may inject (None: unbounded).
    max_kills: int | None = None

    @property
    def enabled(self) -> bool:
        """True if any chaos rate is non-zero."""
        return (
            self.kill_worker_rate > 0
            or self.kill_supervisor_rate > 0
            or self.torn_write_rate > 0
        )


class ChaosMonkey:
    """Draws kill decisions from named streams, within a kill budget.

    One monkey instance owns the budget for a whole kill-and-resume
    trial: the harness keeps it across simulated deaths, so a trial
    with ``max_kills=K`` injects exactly ``K`` kills (given enough
    boundaries) and then lets the run finish.
    """

    def __init__(self, config: ProcessChaosConfig) -> None:
        self.config = config
        self.kills = 0
        self.kill_sites: list[tuple[str, str]] = []
        self._worker_rng = stream_rng(config.seed, "chaos.worker")
        self._supervisor_rng = stream_rng(config.seed, "chaos.supervisor")
        self._torn_rng = stream_rng(config.seed, "chaos.torn")

    def _budget_left(self) -> bool:
        return self.config.max_kills is None or self.kills < self.config.max_kills

    def _record(self, site: str, label: str) -> None:
        self.kills += 1
        self.kill_sites.append((site, label))
        # Telemetry mirror; imported lazily so the faults package keeps
        # no import-time dependency on the obs layer.
        from repro.obs import runtime as obs

        obs.counter("chaos.kills").inc()
        obs.trace_event("chaos.kill", site=site, label=label)

    def worker_boundary(self, label: str) -> None:
        """Maybe kill (raise) at a worker stage boundary."""
        if not self.config.kill_worker_rate or not self._budget_left():
            return
        if self._worker_rng.random() < self.config.kill_worker_rate:
            self._record("worker", label)
            raise ChaosKill("worker", label)

    def supervisor_boundary(self, label: str) -> None:
        """Maybe kill (raise) at a supervisor journal boundary."""
        if not self.config.kill_supervisor_rate or not self._budget_left():
            return
        if self._supervisor_rng.random() < self.config.kill_supervisor_rate:
            self._record("supervisor", label)
            raise ChaosKill("supervisor", label)

    def torn_write(self, data: bytes) -> int | None:
        """Bytes of ``data`` to write before dying, or None to pass.

        The cut lands strictly inside the record so the survivor is an
        unverifiable fragment, which is exactly what journal recovery
        must drop.
        """
        if not self.config.torn_write_rate or not self._budget_left():
            return None
        if self._torn_rng.random() >= self.config.torn_write_rate:
            return None
        self._record("torn", "journal-append")
        if len(data) < 2:
            return 0
        return 1 + self._torn_rng.randrange(len(data) - 1)

    def exit_if(self, label: str) -> None:
        """Real-process variant: ``os._exit(137)`` instead of raising.

        For worker processes only — the parent observes a genuine crash
        (no cleanup, no exception) and must retry the shard.
        """
        try:
            self.worker_boundary(label)
        except ChaosKill:  # pragma: no cover - exercised in worker subprocesses
            os._exit(KILL_EXIT_CODE)
