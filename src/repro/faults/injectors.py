"""Fault injectors for each observational plane.

Each injector consumes pristine observables (the simulated world's
outputs) and produces the degraded view a real measurement team would
have collected. All randomness comes from named streams derived from
``FaultConfig.seed`` (see :mod:`repro.faults.rng`), so every injector is
deterministic, and a disabled injector returns its input untouched
without drawing a single random number.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.config import FaultConfig
from repro.faults.rng import stream_rng
from repro.resolver.server import (
    NameserverBehavior,
    QueryRecord,
    RRType,
    SilentBehavior,
    TransientServerFailure,
)
from repro.whois.archive import WhoisArchive, WhoisRecord
from repro.zonedb.snapshot import ZoneSnapshot


def _mangle(name: str) -> str:
    """Corrupt a domain name so it fails validation (empty label)."""
    if "." in name:
        return name.replace(".", "..", 1)
    return name + ".."


@dataclass
class SnapshotFaultLog:
    """Ground truth of what the snapshot injector did (for validation)."""

    #: Snapshots dropped entirely: (tld, day).
    dropped: list[tuple[str, int]] = field(default_factory=list)
    #: Snapshots delivered twice: (tld, day).
    duplicated: list[tuple[str, int]] = field(default_factory=list)
    #: Adjacent deliveries swapped: ((tld, day), (tld, day)).
    reordered: list[tuple[tuple[str, int], tuple[str, int]]] = field(
        default_factory=list
    )
    #: Truncated snapshots: (tld, day, delegations kept, delegations total).
    truncated: list[tuple[str, int, int, int]] = field(default_factory=list)
    #: Mangled records: (tld, day, corrupted name).
    corrupted: list[tuple[str, int, str]] = field(default_factory=list)

    @property
    def total_faults(self) -> int:
        """Every individual fault the injector introduced."""
        return (
            len(self.dropped)
            + len(self.duplicated)
            + len(self.reordered)
            + len(self.truncated)
            + len(self.corrupted)
        )


class SnapshotFaultInjector:
    """Degrades a stream of daily zone snapshots.

    Models the realities of multi-year zone-file collection: missing
    days, double deliveries, out-of-order arrival, files cut short
    mid-transfer, and mangled individual records. Faults are applied in
    delivery order; each fault class draws from its own RNG stream so
    rates can be varied independently without reshuffling the others.
    """

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self.log = SnapshotFaultLog()
        seed = config.seed
        self._drop_rng = stream_rng(seed, "snapshot.drop")
        self._dup_rng = stream_rng(seed, "snapshot.duplicate")
        self._reorder_rng = stream_rng(seed, "snapshot.reorder")
        self._truncate_rng = stream_rng(seed, "snapshot.truncate")
        self._corrupt_rng = stream_rng(seed, "snapshot.corrupt")

    def degrade(self, snapshots: list[ZoneSnapshot]) -> list[ZoneSnapshot]:
        """The degraded delivery sequence for a pristine snapshot stream."""
        config = self.config
        if not config.snapshot_faults_enabled:
            return list(snapshots)
        out: list[ZoneSnapshot] = []
        for snapshot in snapshots:
            if (
                config.snapshot_drop_rate
                and self._drop_rng.random() < config.snapshot_drop_rate
            ):
                self.log.dropped.append((snapshot.tld, snapshot.day))
                continue
            if (
                config.snapshot_truncate_rate
                and self._truncate_rng.random() < config.snapshot_truncate_rate
            ):
                snapshot = self._truncate(snapshot)
            if config.record_corrupt_rate:
                snapshot = self._corrupt(snapshot)
            out.append(snapshot)
            if (
                config.snapshot_duplicate_rate
                and self._dup_rng.random() < config.snapshot_duplicate_rate
            ):
                self.log.duplicated.append((snapshot.tld, snapshot.day))
                out.append(snapshot)
        if config.snapshot_reorder_rate:
            index = 0
            while index < len(out) - 1:
                if self._reorder_rng.random() < config.snapshot_reorder_rate:
                    first, second = out[index], out[index + 1]
                    out[index], out[index + 1] = second, first
                    self.log.reordered.append(
                        ((first.tld, first.day), (second.tld, second.day))
                    )
                    index += 2
                else:
                    index += 1
        return out

    def _truncate(self, snapshot: ZoneSnapshot) -> ZoneSnapshot:
        """Cut the snapshot short, keeping a prefix of its sorted records.

        A truncated zone file ends mid-stream: every delegation past the
        cut is absent that day, which is exactly the signal gap bridging
        exists to absorb.
        """
        total = len(snapshot.delegations)
        keep = int(total * self.config.truncate_keep_fraction)
        kept_domains = sorted(snapshot.delegations)[:keep]
        glue_keep = int(len(snapshot.glue) * self.config.truncate_keep_fraction)
        kept_hosts = sorted(snapshot.glue)[:glue_keep]
        self.log.truncated.append((snapshot.tld, snapshot.day, keep, total))
        return ZoneSnapshot(
            day=snapshot.day,
            tld=snapshot.tld,
            delegations={d: snapshot.delegations[d] for d in kept_domains},
            glue={h: snapshot.glue[h] for h in kept_hosts},
        )

    def _corrupt(self, snapshot: ZoneSnapshot) -> ZoneSnapshot:
        """Mangle individual records at ``record_corrupt_rate``.

        Mostly NS targets (one bad line in a delegation's record set),
        occasionally the owner name itself — both shapes the ingest
        salvage path must handle.
        """
        rate = self.config.record_corrupt_rate
        rng = self._corrupt_rng
        delegations: dict[str, frozenset[str]] = {}
        touched = False
        for domain in sorted(snapshot.delegations):
            ns_set = snapshot.delegations[domain]
            if rng.random() >= rate:
                delegations[domain] = ns_set
                continue
            touched = True
            if rng.random() < 0.25:
                mangled_domain = _mangle(domain)
                delegations[mangled_domain] = ns_set
                self.log.corrupted.append(
                    (snapshot.tld, snapshot.day, mangled_domain)
                )
            else:
                target = sorted(ns_set)[0]
                mangled_ns = _mangle(target)
                delegations[domain] = (ns_set - {target}) | {mangled_ns}
                self.log.corrupted.append((snapshot.tld, snapshot.day, mangled_ns))
        if not touched:
            return snapshot
        return ZoneSnapshot(
            day=snapshot.day,
            tld=snapshot.tld,
            delegations=delegations,
            glue=dict(snapshot.glue),
        )


@dataclass
class WhoisFaultLog:
    """Ground truth of what the WHOIS injector did."""

    #: Domains whose entire history is missing (coverage gaps).
    domains_dropped: list[str] = field(default_factory=list)
    #: Domains with at least one stale (never-refreshed) epoch.
    records_staled: list[str] = field(default_factory=list)

    @property
    def total_faults(self) -> int:
        """Every individual fault the injector introduced."""
        return len(self.domains_dropped) + len(self.records_staled)


class WhoisFaultInjector:
    """Degrades a WHOIS archive: coverage gaps and stale records.

    A *gap* removes a domain's entire history (the provider never
    covered it); a *stale* epoch looks as it did when first fetched —
    later deletion and transfers were never observed.
    """

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self.log = WhoisFaultLog()
        self._gap_rng = stream_rng(config.seed, "whois.gap")
        self._stale_rng = stream_rng(config.seed, "whois.stale")

    def degrade(self, archive: WhoisArchive) -> WhoisArchive:
        """A degraded copy of ``archive`` (the input when faults are off)."""
        config = self.config
        if not config.whois_faults_enabled:
            return archive
        degraded = WhoisArchive(redact_registrants=archive.redact_registrants)
        for domain in sorted(archive.domains()):
            if (
                config.whois_gap_rate
                and self._gap_rng.random() < config.whois_gap_rate
            ):
                self.log.domains_dropped.append(domain)
                continue
            staled = False
            for record in archive.history(domain):
                clone = WhoisRecord(
                    domain=record.domain,
                    registrar=record.registrar,
                    created=record.created,
                    expires=record.expires,
                    deleted=record.deleted,
                    registrant=record.registrant,
                    transfers=list(record.transfers),
                )
                if (
                    config.whois_stale_rate
                    and self._stale_rng.random() < config.whois_stale_rate
                ):
                    clone.deleted = None
                    clone.transfers = []
                    staled = True
                degraded._records.setdefault(domain, []).append(clone)
            if staled:
                self.log.records_staled.append(domain)
        return degraded


@dataclass
class FlakyBehavior(NameserverBehavior):
    """A nameserver that is alive but unreliable.

    Wraps an inner behaviour: per query, the server may time out,
    SERVFAIL, or answer slowly (raising
    :class:`~repro.resolver.server.TransientServerFailure` for the
    resolver's retry model to handle). The wrapped behaviour still logs
    every query — a timed-out query *arrived*; only the answer was lost.
    Flakiness for each host draws from its own named stream, so query
    order against one server never perturbs another.
    """

    inner: NameserverBehavior = field(default_factory=SilentBehavior)
    config: FaultConfig = field(default_factory=FaultConfig)
    host: str = ""
    faults_injected: int = 0

    def __post_init__(self) -> None:
        self._rng = stream_rng(self.config.seed, f"ns.flaky:{self.host}")

    def handle(
        self, day: int, qname: str, qtype: RRType, source_ip: str
    ) -> list[str] | None:
        config = self.config
        if not config.ns_faults_enabled:
            return self.inner.handle(day, qname, qtype, source_ip)
        roll = self._rng.random()
        if roll < config.ns_timeout_rate:
            self.inner.handle(day, qname, qtype, source_ip)
            self.faults_injected += 1
            raise TransientServerFailure(
                "timeout", latency_ms=config.retry.max_timeout_ms
            )
        roll -= config.ns_timeout_rate
        if roll < config.ns_servfail_rate:
            self.inner.handle(day, qname, qtype, source_ip)
            self.faults_injected += 1
            raise TransientServerFailure("servfail")
        roll -= config.ns_servfail_rate
        answer = self.inner.handle(day, qname, qtype, source_ip)
        if roll < config.ns_slow_rate and answer is not None:
            self.faults_injected += 1
            raise TransientServerFailure(
                "slow", latency_ms=config.slow_latency_ms, answer=answer
            )
        return answer

    def queries_for(self, qname: str) -> list[QueryRecord]:
        """Logged queries for one name (kept by the wrapped behaviour)."""
        return self.inner.queries_for(qname)

    def purge_logs(self) -> int:
        """Purge the wrapped behaviour's log (plus any of our own)."""
        return self.inner.purge_logs() + super().purge_logs()
