"""Deterministic fault injection for the observational data plane.

The paper's methodology ran on messy inputs: CAIDA-DZDB has missing
zone-file days and truncated snapshots, WHOIS coverage is partial, and
live nameservers time out or answer slowly (§3). This package models
exactly that degradation, reproducibly:

* :class:`~repro.faults.config.FaultConfig` — every fault rate, the
  ingestion gap-bridging window, and the resolver retry policy, in one
  seedable, JSON-serializable value;
* :class:`~repro.faults.injectors.SnapshotFaultInjector` — dropped,
  duplicated, out-of-order, truncated, and record-corrupted daily zone
  snapshots;
* :class:`~repro.faults.injectors.WhoisFaultInjector` — WHOIS coverage
  gaps and stale (never-refreshed) records;
* :class:`~repro.faults.injectors.FlakyBehavior` — nameservers that
  time out, SERVFAIL, or answer slowly, for exercising the resolver's
  retry/timeout model;
* :func:`~repro.faults.apply.degrade_world` — turn one simulated
  world's pristine observables into the degraded data sets a real
  measurement team would have collected;
* :class:`~repro.faults.process.ChaosMonkey` — the *execution*-plane
  injectors: killing shard workers at stage boundaries, killing the
  supervisor at journal-append boundaries, and tearing journal writes
  mid-record, all within a seeded kill budget.

Every injector draws from its own named RNG stream derived from
``FaultConfig.seed``, so enabling one fault class never perturbs
another — and never perturbs the base world, which is built before any
injector runs.
"""

from repro.faults.config import FaultConfig, RetryPolicy
from repro.faults.rng import FaultStreams, stream_rng
from repro.faults.injectors import (
    FlakyBehavior,
    SnapshotFaultInjector,
    SnapshotFaultLog,
    WhoisFaultInjector,
    WhoisFaultLog,
)
from repro.faults.apply import DegradedObservables, degrade_world, snapshot_stream
from repro.faults.process import (
    KILL_EXIT_CODE,
    ChaosKill,
    ChaosMonkey,
    ProcessChaosConfig,
)

__all__ = [
    "FaultConfig",
    "RetryPolicy",
    "FaultStreams",
    "stream_rng",
    "FlakyBehavior",
    "SnapshotFaultInjector",
    "SnapshotFaultLog",
    "WhoisFaultInjector",
    "WhoisFaultLog",
    "DegradedObservables",
    "degrade_world",
    "snapshot_stream",
    "ChaosKill",
    "ChaosMonkey",
    "KILL_EXIT_CODE",
    "ProcessChaosConfig",
]
