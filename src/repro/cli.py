"""Command-line interface: simulate, detect, report, experiment.

The CLI exposes the library as a tool chain a measurement team could
actually run:

``riskybiz simulate --out DIR``
    Run the ecosystem and write its observable outputs to disk — a
    DZDB-style zone-file archive (sampled snapshot days) plus a WHOIS
    JSON-lines archive.

``riskybiz detect --archive DIR --whois FILE``
    Run the §3 detection methodology against an on-disk archive (yours
    or a simulated one) and print the funnel and idiom tables. With
    ``--dataset FILE`` it instead opens the SQLite dataset a previous
    ``simulate`` run wrote — no in-process world object is shared
    between the two commands. ``--shards N`` runs the per-nameserver
    stages sharded; ``--cache-dir DIR`` caches the pipeline result
    content-addressed by scenario digest + options.

``riskybiz report``
    Regenerate every table and figure of the paper in one run.

``riskybiz experiment``
    Run the §6.1 controlled hijack experiment and print the protocol
    observations.

``riskybiz lint``
    Run the two-layer static analysis: determinism rules over the
    Python tree and RFC 5731/5732 referential-integrity rules over
    scenario/world JSON. Exits non-zero on any non-baselined error.

``riskybiz verify-data``
    Recompute every recorded SHA-256 over a dataset, artifact cache,
    and/or run directory; report corrupt or orphaned entries and exit
    non-zero on any mismatch.

``riskybiz chaos-smoke``
    Run one seeded kill-and-resume chaos trial (see
    :mod:`repro.runner.chaos_harness`) and fail unless the interrupted
    run reproduces the uninterrupted result bit-for-bit. With
    ``--trace`` both runs are traced and their canonical trace content
    must converge too.

``riskybiz trace``
    Inspect the telemetry a supervised ``detect --trace`` run wrote:
    the span timeline, a per-stage summary table, and the metrics
    snapshot, as text or JSON. ``--validate`` schema-checks the
    ``trace.jsonl``/``metrics.json`` pair instead (CI's telemetry
    smoke gate).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.report import (
    render_full_report,
    render_funnel,
    render_table1,
    render_table2,
    render_table3,
)
from repro.analysis.study import StudyAnalysis, StudyConfig
from repro.detection.pipeline import DetectionPipeline
from repro.whois.archive import WhoisArchive
from repro.zonedb.archive import read_archive, write_archive


def _add_world_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=2021, help="scenario seed")
    parser.add_argument(
        "--scale", type=float, default=0.25,
        help="world scale relative to the canonical 1:100 scenario",
    )
    parser.add_argument(
        "--config", help="scenario JSON file (overrides --seed/--scale)"
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR",
        help="persist pipeline artifacts content-addressed under DIR "
             "(keyed by scenario digest; reused across invocations)",
    )


def _resolve_config(args: argparse.Namespace):
    """The scenario the command should run (file > seed/scale flags)."""
    from repro.ecosystem.config import default_scenario

    if getattr(args, "config", None):
        from repro.ecosystem.scenario_io import load_scenario

        return load_scenario(args.config)
    config = default_scenario(args.seed)
    if args.scale != 1.0:
        config = config.scaled(args.scale)
    return config


def _artifact_cache(args: argparse.Namespace):
    """A disk-backed artifact cache when ``--cache-dir`` was given."""
    if not getattr(args, "cache_dir", None):
        return None
    from repro.store.artifacts import ArtifactCache

    return ArtifactCache(root=args.cache_dir)


def _run_bundle(args: argparse.Namespace):
    """Build a full bundle from the resolved scenario.

    A scenario with non-zero fault rates is replayed through the
    degraded-data plane: the world runs pristine, its observables are
    fault-injected, and detection/study consume the degraded view.
    With ``--cache-dir`` the pipeline result is content-addressed by the
    scenario digest (which covers the fault configuration) and reused.
    """
    from repro.analysis.study import StudyAnalysis
    from repro.api import ReproBundle
    from repro.detection.pipeline import DetectionPipeline
    from repro.ecosystem.world import World
    from repro.store.artifacts import ArtifactKey, scenario_digest

    config = _resolve_config(args)
    world = World(config).run()
    zonedb, whois = world.zonedb, world.whois
    if config.faults.enabled:
        from repro.faults.apply import degrade_world

        print(
            f"Degrading observables (fault seed={config.faults.seed})...",
            file=sys.stderr,
        )
        degraded = degrade_world(world, config.faults)
        zonedb, whois = degraded.zonedb, degraded.whois
    cache = _artifact_cache(args)
    if cache is None:
        pipeline = DetectionPipeline(zonedb, whois).run()
    else:
        key = ArtifactKey.build("pipeline", scenario_digest(config))
        pipeline = cache.get_or_create(
            key, lambda: DetectionPipeline(zonedb, whois).run()
        )
    study = StudyAnalysis(pipeline, zonedb, whois)
    return ReproBundle(world=world, pipeline=pipeline, study=study)


def cmd_report(args: argparse.Namespace) -> int:
    """Regenerate the full paper report."""
    bundle = _run_bundle(args)
    print(render_full_report(bundle.pipeline, bundle.study))
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    """Run the world and write its observable data sets to disk."""
    from repro.ecosystem.world import World
    from repro.store.artifacts import scenario_digest
    from repro.store.dataset import write_dataset

    config = _resolve_config(args)
    print(f"Simulating (seed={config.seed})...", file=sys.stderr)
    result = World(config).run()

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    sample_days = list(range(0, config.end_day, args.every)) + [config.end_day - 1]
    snapshots = []
    for day in sample_days:
        for tld in sorted(result.zonedb.covered_tlds):
            snapshot = result.zonedb.snapshot_at(day, tld)
            if snapshot.delegations:
                snapshots.append(snapshot)
    paths = write_archive(out / "zones", snapshots)
    epochs = result.whois.dump(out / "whois.jsonl")
    digest = scenario_digest(config)
    dataset_path = write_dataset(
        result.zonedb, out / "dataset.sqlite", scenario_digest=digest
    )
    print(
        f"Wrote {len(paths)} zone files ({len(sample_days)} sampled days, "
        f"{len(result.zonedb.covered_tlds)} TLDs) and {epochs} WHOIS epochs "
        f"to {out}",
        file=sys.stderr,
    )
    print(
        f"Wrote SQLite dataset {dataset_path} "
        f"(scenario digest {digest[:12]}…)",
        file=sys.stderr,
    )
    if args.world_json:
        from repro.ecosystem.scenario_io import save_world

        world_path = save_world(result, args.world_json)
        print(f"Wrote world dump to {world_path}", file=sys.stderr)
    return 0


def _detect_zonedb(args: argparse.Namespace):
    """The zone database ``riskybiz detect`` should analyze, or None.

    Either opens the on-disk SQLite dataset (``--dataset``) or ingests a
    zone-file archive (``--archive``) into the requested backend.
    """
    from repro.zonedb.database import IngestError, IngestPolicy

    policy = IngestPolicy(gap_bridge_days=args.gap_bridge, strict=args.strict)
    if args.dataset:
        from repro.store.dataset import open_dataset

        try:
            zonedb = open_dataset(args.dataset, ingest_policy=policy)
        except FileNotFoundError as error:
            print(f"error: {error}", file=sys.stderr)
            return None
        digest = zonedb.store.get_meta("scenario_digest")
        suffix = f" (scenario digest {digest[:12]}…)" if digest else ""
        print(f"Opened dataset {args.dataset}{suffix}", file=sys.stderr)
        return zonedb
    print(f"Ingesting zone archive {args.archive}...", file=sys.stderr)
    store = None
    if args.backend == "sqlite":
        from repro.store.sqlite import SqliteDelegationStore

        store = SqliteDelegationStore()  # in-memory SQLite for one run
    try:
        return read_archive(args.archive, ingest_policy=policy, store=store)
    except IngestError as error:
        print(f"error: strict ingest failed: {error}", file=sys.stderr)
        return None


def _detect_supervised(args: argparse.Namespace, zonedb, whois):
    """Run detection under the supervised, journaled runner.

    Used when ``--run-dir`` is given: every stage/shard completion is
    journaled so ``--resume <run-id>`` restarts exactly the work that
    did not durably complete. Returns the pipeline result, or None on a
    runner error (already reported).
    """
    from repro.runner import RunFailed, SupervisorPolicy, run_supervised_detection

    if args.workers > 0 and not args.dataset:
        print(
            "error: --workers requires --dataset (workers reopen it)",
            file=sys.stderr,
        )
        return None
    try:
        supervised = run_supervised_detection(
            zonedb,
            whois,
            run_dir=args.run_dir,
            shards=args.shards,
            mine_patterns=args.mine_patterns,
            options={"gap_bridge": args.gap_bridge, "strict": args.strict},
            policy=SupervisorPolicy(workers=args.workers),
            resume=args.resume,
            dataset_path=args.dataset,
            whois_path=args.whois,
            trace=args.trace,
            profile=args.profile,
        )
    except RunFailed as error:
        print(f"error: {error}", file=sys.stderr)
        return None
    verb = "Resumed" if supervised.resumed else "Completed"
    retried = sum(1 for o in supervised.outcomes.values() if o.retried)
    print(
        f"{verb} supervised run {supervised.run_id} "
        f"({args.shards} shard(s), {retried} retried); journal at "
        f"{supervised.journal_path}",
        file=sys.stderr,
    )
    if args.trace:
        from repro.runner.execution import METRICS_NAME, TRACE_NAME

        run_dir = Path(args.run_dir)
        print(
            f"Trace at {run_dir / TRACE_NAME}, metrics at "
            f"{run_dir / METRICS_NAME} (inspect with `riskybiz trace "
            f"--run-dir {run_dir}`)",
            file=sys.stderr,
        )
    return supervised.result


def _detect_incremental(args: argparse.Namespace, zonedb, whois):
    """Run detection by folding recorded day deltas into a standing engine.

    The engine's durable state lives in ``--run-dir``; each invocation
    folds exactly the day batches past the journaled watermark and
    reconstructs the batch-identical result. ``--since-watermark``
    auto-resumes the standing run (run ID read from its journal) and
    commits the dataset-side consumer watermark after each durable day.
    """
    from repro.detection.incremental import IncrementalDetectionEngine
    from repro.runner import RunFailed, run_incremental_detection

    resume = args.resume
    consumer = None
    if args.since_watermark:
        from repro.runner.execution import JOURNAL_NAME
        from repro.runner.journal import RunJournal

        journal_path = Path(args.run_dir) / JOURNAL_NAME
        if resume is None and journal_path.exists():
            resume = RunJournal.open(journal_path).run_id
        consumer = IncrementalDetectionEngine.CONSUMER
    try:
        outcome = run_incremental_detection(
            zonedb,
            whois,
            run_dir=args.run_dir,
            mine_patterns=args.mine_patterns,
            options={"gap_bridge": args.gap_bridge, "strict": args.strict},
            resume=resume,
            consumer=consumer,
            trace=args.trace,
            profile=args.profile,
        )
    except RunFailed as error:
        print(f"error: {error}", file=sys.stderr)
        return None
    verb = "Resumed" if outcome.resumed else "Started"
    print(
        f"{verb} incremental run {outcome.run_id}: advanced "
        f"{outcome.days_advanced} day(s) ({outcome.deltas_applied} "
        f"delta(s)), watermark {outcome.watermark}; journal at "
        f"{outcome.journal_path}",
        file=sys.stderr,
    )
    return outcome.result


def cmd_detect(args: argparse.Namespace) -> int:
    """Run the detection methodology against an on-disk dataset/archive."""
    if not args.dataset and not args.archive:
        print("error: one of --dataset or --archive is required", file=sys.stderr)
        return 2
    if args.resume and not args.run_dir:
        print("error: --resume requires --run-dir", file=sys.stderr)
        return 2
    if (args.trace or args.profile) and not args.run_dir:
        print(
            "error: --trace/--profile require --run-dir (telemetry lives "
            "next to the run journal)",
            file=sys.stderr,
        )
        return 2
    if args.since_watermark and not args.incremental:
        print("error: --since-watermark requires --incremental", file=sys.stderr)
        return 2
    if args.incremental:
        if not args.run_dir:
            print(
                "error: --incremental requires --run-dir (the standing "
                "engine state lives there)",
                file=sys.stderr,
            )
            return 2
        if args.shards != 1 or args.workers > 0:
            print(
                "error: --incremental folds deltas in one process; drop "
                "--shards/--workers",
                file=sys.stderr,
            )
            return 2
    zonedb = _detect_zonedb(args)
    if zonedb is None:
        return 1
    if zonedb.nameserver_count() == 0:
        print("error: data set contains no delegations", file=sys.stderr)
        return 1
    whois = WhoisArchive.load(args.whois) if args.whois else WhoisArchive()
    if args.incremental:
        result = _detect_incremental(args, zonedb, whois)
        if result is None:
            return 1
        return _render_detect(args, result, zonedb, whois)
    if args.run_dir:
        result = _detect_supervised(args, zonedb, whois)
        if result is None:
            return 1
        return _render_detect(args, result, zonedb, whois)
    pipeline = DetectionPipeline(
        zonedb, whois, mine_patterns=args.mine_patterns, shards=args.shards
    )
    cache = _artifact_cache(args)
    dataset_digest = zonedb.store.get_meta("scenario_digest")
    if cache is not None and dataset_digest is not None:
        from repro.store.artifacts import ArtifactKey

        # Shard count is deliberately not part of the key: sharded and
        # unsharded runs produce bit-identical results.
        key = ArtifactKey.build(
            "pipeline",
            dataset_digest,
            {
                "mine_patterns": args.mine_patterns,
                "gap_bridge": args.gap_bridge,
                "strict": args.strict,
            },
        )
        result = cache.get_or_create(
            key, lambda: pipeline.run(checkpoint_path=args.checkpoint)
        )
        stats = cache.stats()
        print(
            f"Artifact cache: {stats['hits']} hit(s), "
            f"{stats['misses']} miss(es), "
            f"{stats['quarantined']} quarantined",
            file=sys.stderr,
        )
    else:
        result = pipeline.run(checkpoint_path=args.checkpoint)
    return _render_detect(args, result, zonedb, whois)


def _render_detect(args: argparse.Namespace, result, zonedb, whois) -> int:
    """Print the detect command's funnel, patterns, and study tables."""
    print(render_funnel(result))
    if result.coverage.degraded:
        from repro.analysis.report import render_coverage

        print()
        print(render_coverage(result))
    if args.mine_patterns and result.mined_patterns:
        print("\nTop mined substrings:")
        for pattern in result.mined_patterns[:15]:
            print(f"  {pattern.substring!r}  x{pattern.support}")
    study = StudyAnalysis(
        result, zonedb, whois, StudyConfig(study_end=zonedb.horizon)
    )
    print()
    print(render_table1(study))
    print()
    print(render_table2(study))
    print()
    print(render_table3(study))
    return 0


def cmd_advance(args: argparse.Namespace) -> int:
    """Fold new dataset days into a standing incremental detection run.

    The daily-update entry point: point it at the same dataset and run
    directory every day and exactly the day batches recorded past the
    run's durable watermark are folded in — the result is bit-identical
    to re-running ``riskybiz detect`` from scratch, without re-reading
    history. The run ID is read from the journal, so no ``--resume``
    bookkeeping is needed; the dataset's per-consumer watermark is
    committed after every durably folded day.
    """
    from repro.detection.incremental import IncrementalDetectionEngine
    from repro.runner import JournalCorruption, RunFailed, run_incremental_detection
    from repro.runner.execution import JOURNAL_NAME
    from repro.runner.journal import RunJournal
    from repro.store.dataset import open_dataset

    try:
        zonedb = open_dataset(args.dataset)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    whois = WhoisArchive.load(args.whois) if args.whois else WhoisArchive()
    run_dir = Path(args.run_dir)
    journal_path = run_dir / JOURNAL_NAME
    try:
        resume = (
            RunJournal.open(journal_path).run_id
            if journal_path.exists()
            else None
        )
        outcome = run_incremental_detection(
            zonedb,
            whois,
            run_dir=run_dir,
            until=args.until,
            backend=args.engine_backend,
            mine_patterns=args.mine_patterns,
            resume=resume,
            consumer=IncrementalDetectionEngine.CONSUMER,
        )
    except (RunFailed, JournalCorruption) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if outcome.days_advanced:
        print(
            f"Run {outcome.run_id}: advanced {outcome.days_advanced} day(s), "
            f"{outcome.deltas_applied} delta(s); watermark now "
            f"{outcome.watermark}",
            file=sys.stderr,
        )
    else:
        print(
            f"Run {outcome.run_id}: already current at watermark "
            f"{outcome.watermark}; nothing to fold",
            file=sys.stderr,
        )
    print(render_funnel(outcome.result))
    print(f"\nResult digest: {outcome.result_digest}")
    return 0


def cmd_verify_data(args: argparse.Namespace) -> int:
    """Recompute and check every recorded digest over on-disk state."""
    from repro.store.verify import (
        artifact_entry_count,
        issues_as_json,
        render_issues,
        verify_artifact_dir,
        verify_dataset,
        verify_run_dir,
    )

    if not (args.dataset or args.cache_dir or args.run_dir):
        print(
            "error: nothing to verify; pass --dataset, --cache-dir, "
            "and/or --run-dir",
            file=sys.stderr,
        )
        return 2
    issues = []
    if args.dataset:
        issues.extend(verify_dataset(args.dataset))
    if args.cache_dir:
        issues.extend(verify_artifact_dir(args.cache_dir))
        print(
            f"Artifact cache {args.cache_dir}: "
            f"{artifact_entry_count(args.cache_dir)} entr(y/ies) checked",
            file=sys.stderr,
        )
    if args.run_dir:
        issues.extend(verify_run_dir(args.run_dir))
    print(
        issues_as_json(issues) if args.format == "json" else render_issues(issues)
    )
    return 1 if issues else 0


def cmd_chaos_smoke(args: argparse.Namespace) -> int:
    """One seeded kill-and-resume trial; non-zero unless bit-identical."""
    from repro.runner import run_kill_resume_trial

    print(
        f"Chaos trial: backend={args.backend} scale={args.scale} "
        f"seed={args.seed} chaos-seed={args.chaos_seed} kills<={args.kills}",
        file=sys.stderr,
    )
    report = run_kill_resume_trial(
        workdir=args.out,
        scale=args.scale,
        seed=args.seed,
        backend=args.backend,
        shards=args.shards,
        chaos_seed=args.chaos_seed,
        max_kills=args.kills,
        trace=args.trace,
    )
    print(f"kills injected : {report.kills}")
    for site, label in report.kill_sites:
        print(f"  killed at    : {site}:{label}")
    print(f"resumes        : {report.resumes}")
    print(f"baseline digest: {report.baseline_digest[:16]}…")
    print(f"chaos digest   : {report.chaos_digest[:16]}…")
    print(f"bit-identical  : {report.bit_identical}")
    if report.baseline_trace_digest is not None:
        print(f"baseline trace : {report.baseline_trace_digest[:16]}…")
        print(f"chaos trace    : {report.chaos_trace_digest[:16]}…")
        print(f"traces match   : {report.traces_identical}")
    if report.verify_issues:
        print("verify-data issues:")
        for issue in report.verify_issues:
            print(f"  {issue}")
    return 0 if report.passed else 1


def cmd_trace(args: argparse.Namespace) -> int:
    """Inspect or validate the telemetry of a supervised run directory."""
    import json

    from repro.obs.reporters import render_trace_json, render_trace_text
    from repro.obs.schema import validate_metrics_file, validate_trace_file
    from repro.obs.tracer import TraceCorruption, read_trace
    from repro.runner.execution import METRICS_NAME, TRACE_NAME

    run_dir = Path(args.run_dir)
    trace_path = run_dir / TRACE_NAME
    metrics_path = run_dir / METRICS_NAME
    if args.validate:
        issues = list(validate_trace_file(trace_path))
        if metrics_path.exists():
            issues.extend(validate_metrics_file(metrics_path))
        for issue in issues:
            print(issue)
        print(f"{len(issues)} issue(s)")
        return 1 if issues else 0
    if not trace_path.exists():
        print(
            f"error: no trace at {trace_path} "
            "(run `riskybiz detect --run-dir ... --trace` first)",
            file=sys.stderr,
        )
        return 1
    try:
        records = read_trace(trace_path)
    except TraceCorruption as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    metrics_document = None
    if metrics_path.exists():
        metrics_document = json.loads(metrics_path.read_text(encoding="utf-8"))
    print(
        render_trace_json(records, metrics_document)
        if args.format == "json"
        else render_trace_text(records, metrics_document)
    )
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    """Run the reproduction and export every figure's data as CSV."""
    from repro.analysis.export import export_all

    bundle = _run_bundle(args)
    paths = export_all(bundle.study, args.out)
    for path in paths:
        print(path)
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    """Run the §6.1 controlled experiment."""
    from repro.experiment.controlled import run_controlled_experiment

    bundle = _run_bundle(args)
    report = run_controlled_experiment(bundle.world, bundle.study)
    print(f"sacrificial domain      : {report.sacrificial_domain}")
    print(f"victim domains          : {len(report.delegated_domains)}")
    print(f"restricted-TLD victims  : {len(report.restricted_tld_domains)}")
    print(f"queries observed        : {report.queries_observed}")
    print(f"restricted-TLD queries  : {report.restricted_queries_observed}")
    print(f"scoped answer           : {report.scoped_answer}")
    print(f"outside-scope status    : {report.outside_answer_status}")
    print(f"hijack demonstrated     : {report.hijack_demonstrated}")
    print(f"log records purged      : {report.logs_purged}")
    return 0


def cmd_faults_sweep(args: argparse.Namespace) -> int:
    """Sweep detection accuracy across uniform degradation rates."""
    from repro.experiment.degradation import render_sweep, run_degradation_sweep

    try:
        rates = [float(token) for token in args.rates.split(",") if token.strip()]
    except ValueError:
        print(f"error: --rates must be comma-separated numbers, got "
              f"{args.rates!r}", file=sys.stderr)
        return 2
    if not rates:
        print("error: --rates is empty", file=sys.stderr)
        return 2
    print(
        f"Sweeping fault rates {rates} (seed={args.seed}, scale={args.scale})...",
        file=sys.stderr,
    )
    report = run_degradation_sweep(
        rates,
        seed=args.seed,
        scale=args.scale,
        every=args.every,
        checkpoint_dir=args.checkpoint_dir,
    )
    print(render_sweep(report))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the static-analysis gate (code + scenario + project engines)."""
    from repro.lint.baseline import Baseline
    from repro.lint.reporters import render_json, render_text
    from repro.lint.runner import run_lint

    if args.graph == "json":
        from repro.lint.callgraph import CallGraph
        from repro.lint.config import load_config
        from repro.lint.project import ProjectGraph

        config = load_config(args.root)
        call_graph = CallGraph.build(ProjectGraph.build(config))
        print(json.dumps(call_graph.to_dict(), indent=2, sort_keys=True))
        return 0

    if args.graph == "cfg":
        import ast as _ast
        from pathlib import Path as _Path

        from repro.lint.cfg import function_cfgs
        from repro.lint.config import load_config
        from repro.lint.runner import _iter_lintable, _relativize

        config = load_config(args.root)
        dump: dict[str, dict[str, object]] = {}
        for file_path in _iter_lintable(
            [_Path(p) for p in args.paths], config
        ):
            if file_path.suffix != ".py":
                continue
            rel = _relativize(file_path, config.root)
            try:
                tree = _ast.parse(file_path.read_text(encoding="utf-8"))
            except (OSError, UnicodeDecodeError, SyntaxError):
                continue
            graphs = {g.name: g.to_dict() for g in function_cfgs(tree)}
            if graphs:
                dump[rel] = graphs
        print(json.dumps(dump, indent=2, sort_keys=True))
        return 0

    if args.fix or args.fix_diff:
        from repro.lint.fixes import apply_fixes, plan_fixes

        try:
            fixes = plan_fixes(
                args.paths,
                root=args.root,
                use_baseline=not args.no_baseline,
            )
        except (FileNotFoundError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        changed = [fix for fix in fixes if fix.changed]
        if args.fix_diff:
            for fix in changed:
                print(fix.unified_diff(), end="")
            print(
                f"{len(changed)} file(s) would change "
                f"({sum(len(f.applied) for f in changed)} fix(es))",
                file=sys.stderr,
            )
            return 0
        apply_fixes(changed)
        for fix in changed:
            print(f"fixed {fix.path}: {len(fix.applied)} finding(s)")
        for fix in fixes:
            for diagnostic, reason in fix.skipped:
                print(
                    f"skipped {diagnostic.rule_id} at {fix.path}:"
                    f"{diagnostic.line}: {reason}",
                    file=sys.stderr,
                )
        print(f"fixed {len(changed)} file(s)", file=sys.stderr)
        # Fall through to a fresh lint run so the exit code reflects
        # what remains after the rewrite.

    try:
        result = run_lint(
            args.paths,
            root=args.root,
            use_baseline=not args.no_baseline,
            select=args.select.split(",") if args.select else (),
            ignore=args.ignore.split(",") if args.ignore else (),
            jobs=args.jobs,
        )
    except (FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.prune_baseline:
        from repro.lint.config import load_config

        config = load_config(args.root)
        stale = {entry.fingerprint for entry in result.stale_baseline_entries}
        if stale:
            current = Baseline.load(config.baseline_path())
            kept = Baseline(
                entries=tuple(
                    entry for entry in current.entries
                    if entry.fingerprint not in stale
                )
            )
            kept.save(config.baseline_path())
        print(
            f"Pruned {len(stale)} stale entr(y/ies) from "
            f"{config.baseline_path()}",
            file=sys.stderr,
        )
        remaining = [d for d in result.errors if d.rule_id != "DET012"]
        return 1 if remaining else 0
    if args.write_baseline:
        from repro.lint.config import load_config

        config = load_config(args.root)
        merged = Baseline.load(config.baseline_path()).merged_with(
            Baseline.from_diagnostics(result.errors)
        )
        merged.save(config.baseline_path())
        print(
            f"Recorded {len(result.errors)} finding(s) in "
            f"{config.baseline_path()}; replace the placeholder reasons "
            "with real justifications",
            file=sys.stderr,
        )
        return 0
    print(render_json(result) if args.format == "json" else render_text(result))
    return result.exit_code


def cmd_scenario(args: argparse.Namespace) -> int:
    """Dump the resolved scenario as a reusable JSON file."""
    from repro.ecosystem.scenario_io import save_scenario

    path = save_scenario(_resolve_config(args), args.out)
    print(path)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="riskybiz",
        description="Risky BIZness (IMC 2021) reproduction tool chain",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    report = subparsers.add_parser(
        "report", help="regenerate every table and figure"
    )
    _add_world_args(report)
    report.set_defaults(func=cmd_report)

    simulate = subparsers.add_parser(
        "simulate", help="run the world and write zone/WHOIS archives"
    )
    _add_world_args(simulate)
    simulate.add_argument("--out", required=True, help="output directory")
    simulate.add_argument(
        "--every", type=int, default=30,
        help="snapshot sampling interval in days (default: 30)",
    )
    simulate.add_argument(
        "--world-json", metavar="FILE",
        help="also write a static world dump (object lifecycles, "
             "delegation intervals, renames) for `riskybiz lint`",
    )
    simulate.set_defaults(func=cmd_simulate)

    detect = subparsers.add_parser(
        "detect", help="run the detection methodology on a dataset/archive"
    )
    detect.add_argument(
        "--archive", help="zone archive directory (zone-file ingestion)"
    )
    detect.add_argument(
        "--dataset", metavar="FILE",
        help="SQLite dataset written by `riskybiz simulate` "
             "(alternative to --archive)",
    )
    detect.add_argument(
        "--backend", choices=("memory", "sqlite"), default="memory",
        help="delegation store backend for --archive ingestion "
             "(default: memory)",
    )
    detect.add_argument("--whois", help="WHOIS JSON-lines file")
    detect.add_argument(
        "--mine-patterns", action="store_true",
        help="also run the substring pattern miner",
    )
    detect.add_argument(
        "--gap-bridge", type=int, default=0, metavar="DAYS",
        help="keep delegations open across snapshot gaps of up to DAYS "
             "(default: 0, strict day-level diffing)",
    )
    detect.add_argument(
        "--strict", action="store_true",
        help="fail on degraded input instead of skipping and counting it",
    )
    detect.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="run the per-nameserver stages over N deterministic shards "
             "(default: 1, unsharded)",
    )
    detect.add_argument(
        "--checkpoint", metavar="PATH",
        help="checkpoint pipeline stages to PATH and resume from it "
             "(a file when unsharded, a directory with --shards > 1)",
    )
    detect.add_argument(
        "--cache-dir", metavar="DIR",
        help="cache the pipeline result content-addressed under DIR "
             "(keyed by the dataset's scenario digest + options)",
    )
    detect.add_argument(
        "--run-dir", metavar="DIR",
        help="execute under the supervised runner, journaling every "
             "stage/shard completion (and the result) under DIR",
    )
    detect.add_argument(
        "--resume", metavar="RUN_ID",
        help="resume the journaled run RUN_ID in --run-dir, re-executing "
             "only work that did not durably complete",
    )
    detect.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="run shards across N supervised worker processes with "
             "heartbeats and crash retry (default: 0, inline; needs "
             "--dataset)",
    )
    detect.add_argument(
        "--trace", action="store_true",
        help="write a span trace (trace.jsonl) and metrics snapshot "
             "(metrics.json) into --run-dir; content stays bit-identical "
             "across resumes, timings live in telemetry-only fields",
    )
    detect.add_argument(
        "--profile", action="store_true",
        help="also record per-stage wall time and tracemalloc peaks "
             "into the metrics snapshot (needs --run-dir; adds overhead)",
    )
    detect.add_argument(
        "--incremental", action="store_true",
        help="fold the dataset's recorded day deltas into a standing "
             "engine journaled in --run-dir instead of re-running the "
             "batch pipeline (result is bit-identical)",
    )
    detect.add_argument(
        "--since-watermark", action="store_true",
        help="with --incremental: auto-resume the standing run at its "
             "durable watermark (run ID read from the journal) and "
             "commit the dataset-side consumer watermark per folded day",
    )
    detect.set_defaults(func=cmd_detect)

    advance = subparsers.add_parser(
        "advance",
        help="fold new dataset days into a standing incremental "
             "detection run (daily update; batch-identical result)",
    )
    advance.add_argument(
        "--dataset", required=True, metavar="FILE",
        help="SQLite dataset written by `riskybiz simulate` (its "
             "recorded delta stream drives the fold)",
    )
    advance.add_argument("--whois", help="WHOIS JSON-lines file")
    advance.add_argument(
        "--run-dir", required=True, metavar="DIR",
        help="the standing run's directory (journal + engine checkpoint); "
             "created on first use, resumed automatically after",
    )
    advance.add_argument(
        "--until", type=int, metavar="DAY",
        help="fold only batches recorded up to DAY (default: drain the "
             "whole stream)",
    )
    advance.add_argument(
        "--engine-backend", choices=("memory", "sqlite"), default="memory",
        help="delegation store backend for the engine's private replay "
             "store (default: memory)",
    )
    advance.add_argument(
        "--mine-patterns", action="store_true",
        help="also maintain the substring pattern miner's standing counts",
    )
    advance.set_defaults(func=cmd_advance)

    experiment = subparsers.add_parser(
        "experiment", help="run the controlled hijack experiment (§6.1)"
    )
    _add_world_args(experiment)
    experiment.set_defaults(func=cmd_experiment)

    export = subparsers.add_parser(
        "export", help="export every figure's data series as CSV"
    )
    _add_world_args(export)
    export.add_argument("--out", required=True, help="output directory")
    export.set_defaults(func=cmd_export)

    sweep = subparsers.add_parser(
        "faults-sweep",
        help="measure detection precision/recall under increasing data faults",
    )
    sweep.add_argument("--seed", type=int, default=2021, help="scenario seed")
    sweep.add_argument(
        "--scale", type=float, default=0.1,
        help="world scale for the sweep (default: 0.1)",
    )
    sweep.add_argument(
        "--rates", default="0,0.05,0.1,0.2",
        help="comma-separated uniform fault rates (default: 0,0.05,0.1,0.2)",
    )
    sweep.add_argument(
        "--every", type=int, default=7,
        help="snapshot sampling interval in days (default: 7)",
    )
    sweep.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="checkpoint per-rate results to DIR and resume from them",
    )
    sweep.set_defaults(func=cmd_faults_sweep)

    scenario = subparsers.add_parser(
        "scenario", help="write the scenario a run would use as JSON"
    )
    _add_world_args(scenario)
    scenario.add_argument("--out", required=True, help="output JSON file")
    scenario.set_defaults(func=cmd_scenario)

    lint = subparsers.add_parser(
        "lint", help="run determinism and scenario static analysis"
    )
    lint.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    lint.add_argument(
        "--root", default=".",
        help="project root holding pyproject.toml and the baseline "
             "(default: current directory)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    lint.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run exclusively",
    )
    lint.add_argument(
        "--ignore", metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    lint.add_argument(
        "--no-baseline", action="store_true",
        help="report baselined findings too",
    )
    lint.add_argument(
        "--write-baseline", action="store_true",
        help="record current errors into the baseline file instead of "
             "failing on them",
    )
    lint.add_argument(
        "--fix", action="store_true",
        help="apply the mechanical fixes (DET004/DET006/DET007), then "
             "re-lint; baselined findings are never rewritten",
    )
    lint.add_argument(
        "--fix-diff", action="store_true",
        help="print the unified diff --fix would apply, without writing",
    )
    lint.add_argument(
        "--prune-baseline", action="store_true",
        help="drop baseline entries flagged stale by DET012",
    )
    lint.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="lint files across N supervised worker processes "
             "(default: 1, inline)",
    )
    lint.add_argument(
        "--graph", choices=("json", "cfg"),
        help="dump a graph instead of linting: 'json' is the project "
             "import/call graph, 'cfg' the per-function control-flow "
             "graphs (with exception edges) of the target files",
    )
    lint.set_defaults(func=cmd_lint)

    verify = subparsers.add_parser(
        "verify-data",
        help="recompute recorded digests over datasets, caches, and runs",
    )
    verify.add_argument(
        "--dataset", metavar="FILE",
        help="SQLite dataset to verify against its manifest",
    )
    verify.add_argument(
        "--cache-dir", metavar="DIR",
        help="artifact cache directory to verify entry-by-entry",
    )
    verify.add_argument(
        "--run-dir", metavar="DIR",
        help="supervised run directory to verify (journal, checkpoints, "
             "result)",
    )
    verify.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    verify.set_defaults(func=cmd_verify_data)

    chaos = subparsers.add_parser(
        "chaos-smoke",
        help="seeded kill-and-resume trial: crash, resume, compare bits",
    )
    chaos.add_argument("--seed", type=int, default=2021, help="scenario seed")
    chaos.add_argument(
        "--scale", type=float, default=0.1,
        help="world scale for the trial (default: 0.1)",
    )
    chaos.add_argument(
        "--backend", choices=("memory", "sqlite"), default="sqlite",
        help="store backend the trial runs against (default: sqlite)",
    )
    chaos.add_argument(
        "--shards", type=int, default=4,
        help="detection shards for the supervised runs (default: 4)",
    )
    chaos.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed for the kill-schedule RNG streams (default: 0)",
    )
    chaos.add_argument(
        "--kills", type=int, default=5,
        help="kill budget for the trial (default: 5)",
    )
    chaos.add_argument(
        "--out", required=True, metavar="DIR",
        help="working directory for the trial's runs and datasets",
    )
    chaos.add_argument(
        "--trace", action="store_true",
        help="trace both runs and require their canonical trace content "
             "to converge as well",
    )
    chaos.set_defaults(func=cmd_chaos_smoke)

    trace = subparsers.add_parser(
        "trace",
        help="inspect the trace/metrics a supervised --trace run wrote",
    )
    trace.add_argument(
        "--run-dir", required=True, metavar="DIR",
        help="supervised run directory holding trace.jsonl/metrics.json",
    )
    trace.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    trace.add_argument(
        "--validate", action="store_true",
        help="schema-validate trace.jsonl and metrics.json instead of "
             "rendering them; non-zero exit on any issue",
    )
    trace.set_defaults(func=cmd_trace)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
