"""Reproduction of "Risky BIZness: Risks Derived from Registrar Name
Management" (Akiwate, Savage, Voelker, Claffy — IMC 2021).

The package builds a synthetic DNS registration ecosystem (EPP
registries, registrars with their documented renaming idioms, registrant
and hijacker behaviour), runs the paper's detection methodology over the
resulting longitudinal zone data, and regenerates every table and figure
of the evaluation.

Quickstart::

    from repro import reproduce
    from repro.analysis import report

    bundle = reproduce(scale=0.25)
    print(report.render_full_report(bundle.pipeline, bundle.study))

Subpackages
-----------
``dnscore``
    Domain names, public-suffix logic, records, zones.
``epp``
    EPP repositories with RFC 5731/5732 constraints; registries.
``registrar``
    Registrar agents, renaming idioms, the rename-then-delete machinery.
``ecosystem``
    The simulated world: population, lifecycle, hijackers, remediation.
``zonedb``
    The DZDB-style longitudinal zone database.
``whois``
    WHOIS history (the DomainTools substitute).
``resolver``
    Iterative DNS resolution with pluggable server behaviours.
``detection``
    The paper's §3 methodology (the core contribution).
``analysis``
    Every table and figure of §4–§7.
``experiment``
    The §6.1 controlled hijack experiment.
"""

from repro.api import ReproBundle, reproduce

__version__ = "1.0.0"

__all__ = ["ReproBundle", "reproduce", "__version__"]
