"""Public-suffix modeling and registered-domain extraction.

The detection methodology repeatedly needs the *registered domain* (the
label directly below a public suffix, a.k.a. "SLD+TLD") of a nameserver
name: the original-nameserver matching step of the paper compares the
registered domain of a candidate sacrificial nameserver against the
registered domain of the nameserver it replaced.

A full Mozilla PSL is tens of thousands of rules; offline we embed the
subset relevant to the simulated ecosystem (all gTLD/ngTLD/ccTLD zones the
world model can produce) plus a handful of well-known multi-label suffixes
so the extraction logic is exercised on rules deeper than one label, and
wildcard/exception rules so the matcher implements the real PSL algorithm.
"""

from __future__ import annotations

from typing import Iterable

from repro.dnscore.errors import NameError_
from repro.dnscore.names import Name

#: Single-label suffixes known to the default list. Covers every TLD the
#: simulated registries operate plus common real-world TLDs that appear in
#: renaming idioms (e.g. ``.arpa`` for ``empty.as112.arpa``, ``.be`` for
#: ``notaplaceto.be``).
DEFAULT_SUFFIXES: tuple[str, ...] = (
    "com", "net", "org", "info", "biz", "edu", "gov", "us", "nu", "se",
    "io", "co", "me", "tv", "cc", "ws", "mobi", "name", "pro", "asia",
    "xyz", "top", "site", "online", "club", "shop", "app", "dev", "arpa",
    "be", "nl", "ca", "eu", "ch", "de", "uk", "au", "jp", "cn", "ru",
    "fr", "it", "es", "br", "in", "mx", "kr", "tw", "pl",
)

#: Multi-label suffix rules (PSL format, without leading dot). ``*`` rules
#: make every child a public suffix; ``!`` rules are exceptions.
DEFAULT_MULTI_RULES: tuple[str, ...] = (
    "co.uk", "org.uk", "ac.uk", "gov.uk",
    "com.au", "net.au", "org.au",
    "co.jp", "ne.jp", "or.jp",
    "com.cn", "net.cn", "org.cn",
    "com.br", "net.br",
    "in.us", "k12.ca.us",
    "*.ck", "!www.ck",
)


class PublicSuffixList:
    """A public-suffix rule set with the standard matching algorithm.

    Rules follow the PSL semantics: the longest matching rule wins;
    exception rules (``!``) beat wildcard rules; an unlisted TLD is treated
    as a public suffix of one label (the PSL's implicit ``*`` default).

    >>> psl = default_psl()
    >>> psl.registered_domain("ns1.foo.example.com")
    'example.com'
    >>> psl.registered_domain("a.b.co.uk")
    'b.co.uk'
    """

    def __init__(self, rules: Iterable[str] | None = None) -> None:
        self._exact: set[tuple[str, ...]] = set()
        self._wildcard: set[tuple[str, ...]] = set()
        self._exception: set[tuple[str, ...]] = set()
        if rules is None:
            rules = list(DEFAULT_SUFFIXES) + list(DEFAULT_MULTI_RULES)
        for rule in rules:
            self.add_rule(rule)

    def add_rule(self, rule: str) -> None:
        """Add one PSL rule (``foo.bar``, ``*.bar``, or ``!baz.bar``)."""
        rule = rule.strip().lower().rstrip(".")
        if not rule:
            raise NameError_("empty PSL rule")
        if rule.startswith("!"):
            labels = tuple(reversed(rule[1:].split(".")))
            self._exception.add(labels)
        elif rule.startswith("*."):
            labels = tuple(reversed(rule[2:].split(".")))
            self._wildcard.add(labels)
        else:
            labels = tuple(reversed(rule.split(".")))
            self._exact.add(labels)

    def suffix_length(self, name: str | Name) -> int:
        """Number of trailing labels of ``name`` forming its public suffix."""
        labels = tuple(reversed(Name(name).labels))
        best = 1  # implicit "*" default rule
        for i in range(1, len(labels) + 1):
            prefix = labels[:i]
            if prefix in self._exception:
                # Exception rule: the suffix is the rule minus its leftmost
                # label, i.e. one label shorter than the exception.
                return i - 1
            if prefix in self._exact and i > best:
                best = i
            if i >= 2 and prefix[:-1] in self._wildcard and i > best:
                best = i
        return best

    def public_suffix(self, name: str | Name) -> str:
        """The public suffix of ``name`` as text."""
        n = Name(name)
        k = self.suffix_length(n)
        return ".".join(n.labels[-k:])

    def is_public_suffix(self, name: str | Name) -> bool:
        """True if the whole of ``name`` is a public suffix."""
        n = Name(name)
        return self.suffix_length(n) == len(n.labels)

    def registered_domain(self, name: str | Name) -> str | None:
        """The registrable domain of ``name`` (suffix plus one label).

        Returns ``None`` when ``name`` *is* a public suffix and therefore
        has no registrable part (e.g. ``com`` itself).
        """
        n = Name(name)
        k = self.suffix_length(n)
        if len(n.labels) <= k:
            return None
        return ".".join(n.labels[-(k + 1):])

    def sld(self, name: str | Name) -> str | None:
        """The single label directly below the public suffix.

        This is the unit the paper's renaming idioms mangle: for
        ``ns1.foo.com`` the SLD is ``foo``; GoDaddy's PLEASEDROPTHISHOST
        idiom keeps it, Enom's idioms append random characters to it.
        """
        reg = self.registered_domain(name)
        if reg is None:
            return None
        return reg.split(".", 1)[0]

    def subdomain_part(self, name: str | Name) -> str | None:
        """Everything left of the registered domain, or None.

        >>> default_psl().subdomain_part("ns1.foo.com")
        'ns1'
        """
        n = Name(name)
        reg = self.registered_domain(n)
        if reg is None:
            return None
        reg_labels = reg.count(".") + 1
        extra = len(n.labels) - reg_labels
        if extra == 0:
            return None
        return ".".join(n.labels[:extra])


_DEFAULT: PublicSuffixList | None = None


def default_psl() -> PublicSuffixList:
    """The process-wide default public-suffix list (lazily built)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = PublicSuffixList()
    return _DEFAULT
