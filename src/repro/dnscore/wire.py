"""RFC 1035 wire format: DNS message encoding and decoding.

Implements the on-the-wire message format — header, question and
resource-record sections, and domain-name compression pointers — for the
record types the library models. The resolver uses it to serialize the
queries and responses it simulates, and the test suite round-trips
arbitrary messages through it.

Only the classic subset is implemented (no EDNS0): 12-byte header,
QR/OPCODE/AA/TC/RD/RA flags, RCODE, and IN-class records of type NS, A,
AAAA, CNAME, SOA, and TXT.
"""

from __future__ import annotations

import ipaddress
import struct
from dataclasses import dataclass, field
from enum import IntEnum

from repro.dnscore.errors import DnsError
from repro.dnscore.names import Name
from repro.dnscore.records import ResourceRecord, RRType

_HEADER = struct.Struct("!HHHHHH")
MAX_MESSAGE_SIZE = 65535

_TYPE_CODES: dict[RRType, int] = {
    RRType.A: 1,
    RRType.NS: 2,
    RRType.CNAME: 5,
    RRType.SOA: 6,
    RRType.AAAA: 28,
    RRType.TXT: 16,
}
_CODE_TYPES = {code: rtype for rtype, code in _TYPE_CODES.items()}
CLASS_IN = 1


class Rcode(IntEnum):
    """Response codes (RFC 1035 §4.1.1)."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5


@dataclass(frozen=True, slots=True)
class Question:
    """One entry of the question section."""

    qname: str
    qtype: RRType

    def __post_init__(self) -> None:
        object.__setattr__(self, "qname", Name(self.qname).text)


@dataclass
class Message:
    """A DNS message in object form."""

    message_id: int = 0
    is_response: bool = False
    authoritative: bool = False
    truncated: bool = False
    recursion_desired: bool = False
    recursion_available: bool = False
    rcode: Rcode = Rcode.NOERROR
    questions: list[Question] = field(default_factory=list)
    answers: list[ResourceRecord] = field(default_factory=list)
    authorities: list[ResourceRecord] = field(default_factory=list)
    additionals: list[ResourceRecord] = field(default_factory=list)

    @classmethod
    def query(
        cls, qname: str, qtype: RRType, *, message_id: int = 0, rd: bool = True
    ) -> "Message":
        """A standard recursive query for one name/type."""
        return cls(
            message_id=message_id,
            recursion_desired=rd,
            questions=[Question(qname, qtype)],
        )

    def respond(
        self,
        answers: list[ResourceRecord],
        *,
        rcode: Rcode = Rcode.NOERROR,
        authoritative: bool = True,
    ) -> "Message":
        """Build the response message for this query."""
        return Message(
            message_id=self.message_id,
            is_response=True,
            authoritative=authoritative,
            recursion_desired=self.recursion_desired,
            rcode=rcode,
            questions=list(self.questions),
            answers=answers,
        )


class _Writer:
    """Wire encoder with RFC 1035 §4.1.4 name compression."""

    def __init__(self) -> None:
        self.buffer = bytearray()
        self._offsets: dict[tuple[str, ...], int] = {}

    def write_name(self, name: str) -> None:
        labels = Name(name).labels
        index = 0
        while index < len(labels):
            suffix = labels[index:]
            offset = self._offsets.get(suffix)
            if offset is not None:
                self.buffer += struct.pack("!H", 0xC000 | offset)
                return
            if len(self.buffer) < 0x3FFF:
                self._offsets[suffix] = len(self.buffer)
            label = labels[index].encode("ascii")
            self.buffer.append(len(label))
            self.buffer += label
            index += 1
        self.buffer.append(0)

    def write_record(self, record: ResourceRecord) -> None:
        self.write_name(record.name)
        self.buffer += struct.pack(
            "!HHI", _TYPE_CODES[record.rtype], CLASS_IN, record.ttl
        )
        length_at = len(self.buffer)
        self.buffer += b"\x00\x00"  # placeholder for RDLENGTH
        start = len(self.buffer)
        self._write_rdata(record)
        rdlength = len(self.buffer) - start
        struct.pack_into("!H", self.buffer, length_at, rdlength)

    def _write_rdata(self, record: ResourceRecord) -> None:
        if record.rtype in (RRType.NS, RRType.CNAME):
            self.write_name(record.rdata)
        elif record.rtype is RRType.A:
            self.buffer += ipaddress.IPv4Address(record.rdata).packed
        elif record.rtype is RRType.AAAA:
            self.buffer += ipaddress.IPv6Address(record.rdata).packed
        elif record.rtype is RRType.SOA:
            mname, rname, *numbers = record.rdata.split()
            self.write_name(mname.rstrip("."))
            self.write_name(rname.rstrip("."))
            self.buffer += struct.pack("!IIIII", *(int(n) for n in numbers))
        elif record.rtype is RRType.TXT:
            data = record.rdata.encode("ascii")
            for start in range(0, len(data), 255):
                chunk = data[start:start + 255]
                self.buffer.append(len(chunk))
                self.buffer += chunk
        else:  # pragma: no cover - all supported types handled above
            raise DnsError(f"cannot encode rdata for {record.rtype}")


class _Reader:
    """Wire decoder with compression-pointer chasing."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.position = 0

    def read(self, count: int) -> bytes:
        if self.position + count > len(self.data):
            raise DnsError("truncated DNS message")
        chunk = self.data[self.position:self.position + count]
        self.position += count
        return chunk

    def read_name(self) -> str:
        labels, position = self._name_at(self.position, set())
        self.position = position
        return ".".join(labels) if labels else ""

    def _name_at(self, position: int, seen: set[int]) -> tuple[list[str], int]:
        labels: list[str] = []
        while True:
            if position >= len(self.data):
                raise DnsError("name runs past end of message")
            length = self.data[position]
            if length & 0xC0 == 0xC0:
                if position + 1 >= len(self.data):
                    raise DnsError("truncated compression pointer")
                pointer = ((length & 0x3F) << 8) | self.data[position + 1]
                if pointer in seen:
                    raise DnsError("compression pointer loop")
                seen.add(pointer)
                pointed, _ = self._name_at(pointer, seen)
                return labels + pointed, position + 2
            position += 1
            if length == 0:
                return labels, position
            if position + length > len(self.data):
                raise DnsError("label runs past end of message")
            labels.append(
                self.data[position:position + length].decode("ascii").lower()
            )
            position += length

    def read_record(self) -> ResourceRecord:
        name = self.read_name()
        type_code, klass, ttl = struct.unpack("!HHI", self.read(8))
        (rdlength,) = struct.unpack("!H", self.read(2))
        if klass != CLASS_IN:
            raise DnsError(f"unsupported class {klass}")
        rtype = _CODE_TYPES.get(type_code)
        if rtype is None:
            raise DnsError(f"unsupported type code {type_code}")
        end = self.position + rdlength
        rdata = self._read_rdata(rtype, end)
        if self.position != end:
            raise DnsError("RDATA length mismatch")
        return ResourceRecord(name, rtype, rdata, ttl=ttl)

    def _read_rdata(self, rtype: RRType, end: int) -> str:
        if rtype in (RRType.NS, RRType.CNAME):
            return self.read_name()
        if rtype is RRType.A:
            return str(ipaddress.IPv4Address(self.read(4)))
        if rtype is RRType.AAAA:
            return str(ipaddress.IPv6Address(self.read(16)))
        if rtype is RRType.SOA:
            mname = self.read_name()
            rname = self.read_name()
            numbers = struct.unpack("!IIIII", self.read(20))
            return f"{mname}. {rname}. " + " ".join(str(n) for n in numbers)
        if rtype is RRType.TXT:
            parts = []
            while self.position < end:
                length = self.read(1)[0]
                parts.append(self.read(length).decode("ascii"))
            return "".join(parts)
        raise DnsError(f"cannot decode rdata for {rtype}")  # pragma: no cover


def encode_message(message: Message) -> bytes:
    """Serialize a :class:`Message` to wire format."""
    flags = 0
    if message.is_response:
        flags |= 0x8000
    if message.authoritative:
        flags |= 0x0400
    if message.truncated:
        flags |= 0x0200
    if message.recursion_desired:
        flags |= 0x0100
    if message.recursion_available:
        flags |= 0x0080
    flags |= int(message.rcode) & 0x000F
    writer = _Writer()
    writer.buffer += _HEADER.pack(
        message.message_id,
        flags,
        len(message.questions),
        len(message.answers),
        len(message.authorities),
        len(message.additionals),
    )
    for question in message.questions:
        writer.write_name(question.qname)
        writer.buffer += struct.pack("!HH", _TYPE_CODES[question.qtype], CLASS_IN)
    for section in (message.answers, message.authorities, message.additionals):
        for record in section:
            writer.write_record(record)
    if len(writer.buffer) > MAX_MESSAGE_SIZE:
        raise DnsError("message exceeds 64 KiB")
    return bytes(writer.buffer)


def decode_message(data: bytes) -> Message:
    """Parse wire format back into a :class:`Message`."""
    reader = _Reader(data)
    (
        message_id, flags, qdcount, ancount, nscount, arcount
    ) = _HEADER.unpack(reader.read(12))
    message = Message(
        message_id=message_id,
        is_response=bool(flags & 0x8000),
        authoritative=bool(flags & 0x0400),
        truncated=bool(flags & 0x0200),
        recursion_desired=bool(flags & 0x0100),
        recursion_available=bool(flags & 0x0080),
        rcode=Rcode(flags & 0x000F),
    )
    for _ in range(qdcount):
        qname = reader.read_name()
        type_code, klass = struct.unpack("!HH", reader.read(4))
        if klass != CLASS_IN:
            raise DnsError(f"unsupported class {klass}")
        rtype = _CODE_TYPES.get(type_code)
        if rtype is None:
            raise DnsError(f"unsupported type code {type_code}")
        message.questions.append(Question(qname, rtype))
    for _ in range(ancount):
        message.answers.append(reader.read_record())
    for _ in range(nscount):
        message.authorities.append(reader.read_record())
    for _ in range(arcount):
        message.additionals.append(reader.read_record())
    return message
