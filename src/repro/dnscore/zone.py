"""TLD zone containers: delegations, glue, and master-file round-trips.

A :class:`Zone` models what a registry publishes for one TLD: NS record
sets delegating each registered domain, plus in-bailiwick glue addresses.
This is exactly the view the paper's data source (daily TLD zone file
snapshots) exposes, so the zone database consumes these objects directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.dnscore.errors import ZoneError
from repro.dnscore.names import Name
from repro.dnscore.records import (
    DEFAULT_TTL,
    ResourceRecord,
    RRType,
    a_record,
    ns_record,
    soa_record,
)


@dataclass(frozen=True, slots=True)
class Delegation:
    """The delegation of one domain: its NS target set within a zone."""

    domain: str
    nameservers: frozenset[str]

    def __post_init__(self) -> None:
        object.__setattr__(self, "domain", Name(self.domain).text)
        object.__setattr__(
            self, "nameservers", frozenset(Name(ns).text for ns in self.nameservers)
        )


class Zone:
    """A mutable TLD zone: delegations plus glue addresses.

    Only direct children of the origin may be delegated (registries do not
    publish deeper cuts in TLD zone files). Glue may be recorded for any
    in-bailiwick host name.
    """

    def __init__(self, origin: str, *, serial: int = 1) -> None:
        self._origin = Name(origin)
        self.serial = serial
        self._delegations: dict[str, set[str]] = {}
        self._glue: dict[str, set[str]] = {}

    @property
    def origin(self) -> str:
        """The zone origin (the TLD), canonical text form."""
        return self._origin.text

    # -- delegations -----------------------------------------------------

    def set_delegation(self, domain: str, nameservers: Iterable[str]) -> None:
        """Install or replace the NS set for ``domain``.

        Raises :class:`ZoneError` if the domain is not a direct child of
        the origin or the NS set is empty.
        """
        name = Name(domain)
        if not name.is_strict_subdomain_of(self._origin):
            raise ZoneError(f"{name.text!r} is not under zone {self.origin!r}")
        if name.parent() != self._origin:
            raise ZoneError(
                f"{name.text!r} is not a direct child of {self.origin!r}; "
                "TLD zones delegate only at the first level"
            )
        ns_set = {Name(ns).text for ns in nameservers}
        if not ns_set:
            raise ZoneError(f"empty nameserver set for {name.text!r}")
        self._delegations[name.text] = ns_set

    def remove_delegation(self, domain: str) -> None:
        """Drop a domain from the zone; idempotent no-op if absent."""
        self._delegations.pop(Name(domain).text, None)

    def nameservers_of(self, domain: str) -> frozenset[str]:
        """The NS set for ``domain``; empty if not delegated."""
        return frozenset(self._delegations.get(Name(domain).text, ()))

    def delegations(self) -> Iterator[Delegation]:
        """All delegations, in arbitrary order."""
        for domain, ns_set in self._delegations.items():
            yield Delegation(domain, frozenset(ns_set))

    def domains(self) -> frozenset[str]:
        """Every delegated domain name."""
        return frozenset(self._delegations)

    def __contains__(self, domain: str) -> bool:
        return Name(domain).text in self._delegations

    def __len__(self) -> int:
        return len(self._delegations)

    # -- glue ------------------------------------------------------------

    def set_glue(self, host: str, addresses: Iterable[str]) -> None:
        """Install glue A records for an in-bailiwick host name."""
        name = Name(host)
        if not name.is_strict_subdomain_of(self._origin):
            raise ZoneError(
                f"glue for {name.text!r} is out of bailiwick for {self.origin!r}"
            )
        addrs = set(addresses)
        if not addrs:
            raise ZoneError(f"empty glue address set for {name.text!r}")
        self._glue[name.text] = addrs

    def remove_glue(self, host: str) -> None:
        """Drop glue for a host; idempotent no-op if absent."""
        self._glue.pop(Name(host).text, None)

    def glue_of(self, host: str) -> frozenset[str]:
        """Glue addresses for ``host``; empty if none."""
        return frozenset(self._glue.get(Name(host).text, ()))

    def glue_hosts(self) -> frozenset[str]:
        """Every host that has glue in this zone."""
        return frozenset(self._glue)

    # -- records / serialization ------------------------------------------

    def records(self) -> Iterator[ResourceRecord]:
        """Stream the zone as resource records (SOA, NS, then glue A)."""
        yield soa_record(
            self.origin,
            f"a.nic.{self.origin}",
            f"hostmaster.nic.{self.origin}",
            self.serial,
        )
        for domain in sorted(self._delegations):
            for ns in sorted(self._delegations[domain]):
                yield ns_record(domain, ns, DEFAULT_TTL)
        for host in sorted(self._glue):
            for addr in sorted(self._glue[host]):
                yield a_record(host, addr, DEFAULT_TTL)

    def to_text(self) -> str:
        """Serialize to a master-file-like text form."""
        lines = [f"$ORIGIN {self.origin}."]
        lines.extend(record.to_line() for record in self.records())
        return "\n".join(lines) + "\n"

    @classmethod
    def from_text(cls, text: str) -> "Zone":
        """Parse a zone previously produced by :meth:`to_text`."""
        origin: str | None = None
        serial = 1
        delegations: dict[str, set[str]] = {}
        glue: dict[str, set[str]] = {}
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith(";"):
                continue
            if line.startswith("$ORIGIN"):
                origin = line.split()[1].rstrip(".")
                continue
            record = ResourceRecord.from_line(line)
            if record.rtype is RRType.SOA:
                serial = int(record.rdata.split()[2])
            elif record.rtype is RRType.NS:
                delegations.setdefault(record.name, set()).add(record.rdata)
            elif record.rtype is RRType.A:
                glue.setdefault(record.name, set()).add(record.rdata)
        if origin is None:
            raise ZoneError("zone text missing $ORIGIN line")
        zone = cls(origin, serial=serial)
        for domain, ns_set in delegations.items():
            zone.set_delegation(domain, ns_set)
        for host, addrs in glue.items():
            zone.set_glue(host, addrs)
        return zone

    def copy(self) -> "Zone":
        """An independent deep copy of this zone."""
        clone = Zone(self.origin, serial=self.serial)
        clone._delegations = {d: set(ns) for d, ns in self._delegations.items()}
        clone._glue = {h: set(a) for h, a in self._glue.items()}
        return clone

    def __repr__(self) -> str:
        return (
            f"Zone(origin={self.origin!r}, domains={len(self._delegations)}, "
            f"glue={len(self._glue)})"
        )
