"""Exception hierarchy for the DNS core subpackage."""


class DnsError(Exception):
    """Base class for every error raised by :mod:`repro.dnscore`."""


class NameError_(DnsError):
    """A domain name failed syntactic validation.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`NameError`.
    """


class ZoneError(DnsError):
    """A zone operation violated zone consistency rules."""
