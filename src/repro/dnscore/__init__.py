"""DNS foundations: domain names, public-suffix logic, records, and zones.

This subpackage provides the low-level vocabulary used by every other part
of the library: validated domain names (:class:`~repro.dnscore.names.Name`),
registered-domain extraction against a public-suffix model
(:class:`~repro.dnscore.psl.PublicSuffixList`), DNS resource records
(:mod:`repro.dnscore.records`), and zone containers with master-file
round-tripping (:mod:`repro.dnscore.zone`).
"""

from repro.dnscore.errors import DnsError, NameError_, ZoneError
from repro.dnscore.names import Name
from repro.dnscore.psl import PublicSuffixList, default_psl
from repro.dnscore.records import RRType, ResourceRecord
from repro.dnscore.zone import Delegation, Zone

__all__ = [
    "DnsError",
    "NameError_",
    "ZoneError",
    "Name",
    "PublicSuffixList",
    "default_psl",
    "RRType",
    "ResourceRecord",
    "Delegation",
    "Zone",
]
