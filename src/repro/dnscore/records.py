"""DNS resource records.

Only the record types the study needs are modeled: delegations (NS), glue
addresses (A/AAAA), and zone apex bookkeeping (SOA). Records are immutable
value objects that serialize to and parse from a master-file-like
presentation format, which the zone archive uses for round-tripping.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from enum import Enum

from repro.dnscore.errors import DnsError
from repro.dnscore.names import Name


class RRType(str, Enum):
    """Resource record types used by the simulation."""

    NS = "NS"
    A = "A"
    AAAA = "AAAA"
    SOA = "SOA"
    CNAME = "CNAME"
    TXT = "TXT"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


DEFAULT_TTL = 86400


@dataclass(frozen=True, slots=True)
class ResourceRecord:
    """One DNS resource record in presentation form.

    ``name`` is the owner name; ``rdata`` is the type-specific payload as
    canonical text (a target name for NS/CNAME, an address for A/AAAA, the
    full RDATA string for SOA/TXT).
    """

    name: str
    rtype: RRType
    rdata: str
    ttl: int = DEFAULT_TTL

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", Name(self.name).text)
        if self.ttl < 0:
            raise DnsError(f"negative TTL: {self.ttl}")
        rdata = self.rdata.strip()
        if self.rtype in (RRType.NS, RRType.CNAME):
            rdata = Name(rdata).text
        elif self.rtype is RRType.A:
            addr = ipaddress.ip_address(rdata)
            if addr.version != 4:
                raise DnsError(f"A record with non-IPv4 rdata: {rdata!r}")
            rdata = str(addr)
        elif self.rtype is RRType.AAAA:
            addr = ipaddress.ip_address(rdata)
            if addr.version != 6:
                raise DnsError(f"AAAA record with non-IPv6 rdata: {rdata!r}")
            rdata = str(addr)
        object.__setattr__(self, "rdata", rdata)

    def to_line(self) -> str:
        """Master-file presentation: ``name ttl IN type rdata``."""
        return f"{self.name}. {self.ttl} IN {self.rtype.value} {self.rdata}"

    @classmethod
    def from_line(cls, line: str) -> "ResourceRecord":
        """Parse a record from the presentation produced by :meth:`to_line`."""
        parts = line.split(None, 4)
        if len(parts) != 5:
            raise DnsError(f"malformed record line: {line!r}")
        name, ttl_text, klass, rtype_text, rdata = parts
        if klass.upper() != "IN":
            raise DnsError(f"unsupported class {klass!r} in line: {line!r}")
        try:
            ttl = int(ttl_text)
        except ValueError as exc:
            raise DnsError(f"bad TTL in line: {line!r}") from exc
        try:
            rtype = RRType(rtype_text.upper())
        except ValueError as exc:
            raise DnsError(f"unsupported type {rtype_text!r}") from exc
        if rtype in (RRType.NS, RRType.CNAME):
            rdata = rdata.rstrip(".")
        return cls(name=name.rstrip("."), rtype=rtype, rdata=rdata, ttl=ttl)


@dataclass(frozen=True, slots=True)
class RRSet:
    """All records sharing an owner name and type."""

    name: str
    rtype: RRType
    records: tuple[ResourceRecord, ...] = field(default_factory=tuple)

    def rdatas(self) -> tuple[str, ...]:
        """The payloads of the set, in insertion order."""
        return tuple(r.rdata for r in self.records)

    def __len__(self) -> int:
        return len(self.records)


def ns_record(owner: str, target: str, ttl: int = DEFAULT_TTL) -> ResourceRecord:
    """Convenience constructor for an NS record."""
    return ResourceRecord(owner, RRType.NS, target, ttl)


def a_record(owner: str, address: str, ttl: int = DEFAULT_TTL) -> ResourceRecord:
    """Convenience constructor for an A record."""
    return ResourceRecord(owner, RRType.A, address, ttl)


def soa_record(zone: str, mname: str, rname: str, serial: int) -> ResourceRecord:
    """Convenience constructor for a zone apex SOA record."""
    rdata = f"{Name(mname).text}. {Name(rname).text}. {serial} 7200 3600 1209600 3600"
    return ResourceRecord(zone, RRType.SOA, rdata)
