"""Validated, normalized DNS domain names.

The whole library passes domain names around as plain strings for
convenience, but every name that enters a registry, zone, or the detection
pipeline is normalized through :class:`Name`. Normalization follows RFC
1034/1035 presentation rules: case-insensitive matching (we canonicalize to
lowercase), dot-separated labels, no empty labels, and the usual length
limits (63 octets per label, 253 octets for the full name without the
trailing root dot).

Hostnames used as nameservers historically contain underscores and other
letter-digit-hyphen (LDH) violations in the wild; zone files tolerate them.
We therefore validate *structure* strictly (label/name lengths, hyphen
placement) but allow underscores when ``strict`` is off, mirroring how zone
file pipelines such as DZDB ingest real data.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Iterable

from repro.dnscore.errors import NameError_

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 253

_LDH_LABEL = re.compile(r"^[a-z0-9]([a-z0-9-]*[a-z0-9])?$")
_LAX_LABEL = re.compile(r"^[a-z0-9_]([a-z0-9_-]*[a-z0-9_])?$")


class Name:
    """An immutable, normalized absolute domain name.

    Instances compare and hash by their canonical lowercase text form, so
    they can be freely mixed as dict keys alongside plain strings produced
    by :meth:`text`.

    >>> Name("NS1.Example.COM").text
    'ns1.example.com'
    >>> Name("ns1.example.com").parent().text
    'example.com'
    """

    __slots__ = ("_labels", "_text")

    def __init__(self, name: str | "Name", *, strict: bool = False) -> None:
        if isinstance(name, Name):
            self._labels = name._labels
            self._text = name._text
            return
        text = name.strip().rstrip(".").lower()
        if not text:
            raise NameError_("empty domain name")
        if len(text) > MAX_NAME_LENGTH:
            raise NameError_(f"name exceeds {MAX_NAME_LENGTH} octets: {text[:64]}...")
        labels = tuple(text.split("."))
        pattern = _LDH_LABEL if strict else _LAX_LABEL
        for label in labels:
            if not label:
                raise NameError_(f"empty label in name: {text!r}")
            if len(label) > MAX_LABEL_LENGTH:
                raise NameError_(f"label exceeds {MAX_LABEL_LENGTH} octets: {label!r}")
            if not pattern.match(label):
                raise NameError_(f"invalid label {label!r} in name {text!r}")
        self._labels = labels
        self._text = text

    @property
    def text(self) -> str:
        """Canonical lowercase presentation form, without trailing dot."""
        return self._text

    @property
    def labels(self) -> tuple[str, ...]:
        """Labels from leftmost (most specific) to rightmost (TLD)."""
        return self._labels

    @property
    def tld(self) -> str:
        """The rightmost label."""
        return self._labels[-1]

    def parent(self) -> "Name":
        """The name with the leftmost label removed.

        Raises :class:`NameError_` if this name is a single label (a TLD),
        which has no in-namespace parent.
        """
        if len(self._labels) == 1:
            raise NameError_(f"TLD {self._text!r} has no parent")
        return Name(".".join(self._labels[1:]))

    def is_subdomain_of(self, other: str | "Name") -> bool:
        """True if this name is equal to or strictly below ``other``."""
        other_labels = Name(other)._labels
        n = len(other_labels)
        return len(self._labels) >= n and self._labels[-n:] == other_labels

    def is_strict_subdomain_of(self, other: str | "Name") -> bool:
        """True if this name is strictly below ``other`` (not equal)."""
        return self != Name(other) and self.is_subdomain_of(other)

    def relativize(self, origin: str | "Name") -> str:
        """Presentation form relative to ``origin``, or ``@`` if equal.

        >>> Name("www.example.com").relativize("example.com")
        'www'
        """
        origin_name = Name(origin)
        if self == origin_name:
            return "@"
        if not self.is_subdomain_of(origin_name):
            raise NameError_(f"{self._text!r} is not under {origin_name.text!r}")
        keep = len(self._labels) - len(origin_name._labels)
        return ".".join(self._labels[:keep])

    def with_tld(self, tld: str) -> "Name":
        """A copy of this name with the rightmost label replaced."""
        return Name(".".join(self._labels[:-1] + (tld.lower().strip("."),)))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Name):
            return self._text == other._text
        if isinstance(other, str):
            return self._text == other.strip().rstrip(".").lower()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._text)

    def __lt__(self, other: "Name | str") -> bool:
        return self.sort_key() < Name(other).sort_key()

    def sort_key(self) -> tuple[str, ...]:
        """DNSSEC-style canonical ordering key (labels reversed)."""
        return tuple(reversed(self._labels))

    def __str__(self) -> str:
        return self._text

    def __repr__(self) -> str:
        return f"Name({self._text!r})"

    def __len__(self) -> int:
        return len(self._labels)


@lru_cache(maxsize=65536)
def normalize(name: str) -> str:
    """Normalize a raw name string to canonical text form.

    A cached convenience for hot paths in the zone database that handle
    millions of names; equivalent to ``Name(name).text``.
    """
    return Name(name).text


def is_valid(name: str, *, strict: bool = False) -> bool:
    """True if ``name`` parses as a domain name."""
    try:
        Name(name, strict=strict)
    except NameError_:
        return False
    return True


def common_suffix_depth(a: str | Name, b: str | Name) -> int:
    """Number of trailing labels shared by two names.

    >>> common_suffix_depth("ns1.foo.com", "ns2.foo.com")
    2
    """
    la, lb = Name(a).labels, Name(b).labels
    depth = 0
    for x, y in zip(reversed(la), reversed(lb)):
        if x != y:
            break
        depth += 1
    return depth


def sorted_names(names: Iterable[str | Name]) -> list[Name]:
    """Sort names in canonical (reversed-label) order."""
    return sorted((Name(n) for n in names), key=Name.sort_key)
