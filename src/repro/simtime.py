"""Day-granularity simulation time.

The study's data source is *daily* zone-file snapshots, so the whole
library operates on integer day indices. Day 0 is :data:`EPOCH`
(2011-04-01, the first day of the paper's measurement window). Helpers
convert between day indices, :class:`datetime.date`, and calendar months,
and provide the month bucketing used by the longitudinal figures.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Iterator

#: Day 0 of the simulation: start of the paper's measurement window.
EPOCH = _dt.date(2011, 4, 1)

#: End of the paper's primary measurement window (Figures 3-7, Tables 1-4).
STUDY_END = _dt.date(2020, 9, 30)

#: Notification outreach start (Section 7).
NOTIFICATION_DATE = _dt.date(2020, 9, 15)

#: End of the remediation measurement (Table 5).
REMEDIATION_END = _dt.date(2021, 2, 15)

#: End of the extended window (Table 6, "as of September 2021").
EXTENDED_END = _dt.date(2021, 9, 15)


def to_day(date: _dt.date) -> int:
    """Day index of a calendar date (may be negative before EPOCH)."""
    return (date - EPOCH).days


def to_date(day: int) -> _dt.date:
    """Calendar date of a day index."""
    return EPOCH + _dt.timedelta(days=day)


def month_of(day: int) -> str:
    """Month bucket of a day index as ``YYYY-MM``."""
    date = to_date(day)
    return f"{date.year:04d}-{date.month:02d}"


def month_index(day: int) -> int:
    """Months elapsed since the EPOCH month (0 for April 2011)."""
    date = to_date(day)
    return (date.year - EPOCH.year) * 12 + (date.month - EPOCH.month)


def month_label(index: int) -> str:
    """Inverse of :func:`month_index`: ``YYYY-MM`` label for a month index."""
    total = EPOCH.year * 12 + (EPOCH.month - 1) + index
    year, month0 = divmod(total, 12)
    return f"{year:04d}-{month0 + 1:02d}"


def months_between(start_day: int, end_day: int) -> Iterator[str]:
    """Yield every month label from start_day's month through end_day's."""
    for idx in range(month_index(start_day), month_index(end_day) + 1):
        yield month_label(idx)


DAYS_PER_YEAR = 365


@dataclass(frozen=True, slots=True)
class Interval:
    """A half-open day interval ``[start, end)``.

    ``end`` may be ``None`` to mean "still open at the end of the data".
    Interval arithmetic here backs all first-seen/last-seen reasoning in
    the zone database and the duration analyses.
    """

    start: int
    end: int | None = None

    def __post_init__(self) -> None:
        if self.end is not None and self.end < self.start:
            raise ValueError(f"interval end {self.end} before start {self.start}")

    def contains(self, day: int) -> bool:
        """True if ``day`` falls inside the interval."""
        if day < self.start:
            return False
        return self.end is None or day < self.end

    def closed(self, horizon: int) -> "Interval":
        """This interval with an open end clamped to ``horizon``."""
        if self.end is not None:
            return self
        return Interval(self.start, max(self.start, horizon))

    def duration(self, horizon: int | None = None) -> int:
        """Length in days; open intervals require a ``horizon``."""
        if self.end is not None:
            return self.end - self.start
        if horizon is None:
            raise ValueError("open interval needs a horizon to measure duration")
        return max(0, horizon - self.start)

    def overlaps(self, other: "Interval") -> bool:
        """True if the two intervals share at least one day."""
        if other.end is not None and other.end <= self.start:
            return False
        if self.end is not None and self.end <= other.start:
            return False
        return True

    def intersect(self, other: "Interval") -> "Interval | None":
        """The overlap of two intervals, or None if disjoint."""
        if not self.overlaps(other):
            return None
        start = max(self.start, other.start)
        ends = [e for e in (self.end, other.end) if e is not None]
        end = min(ends) if ends else None
        return Interval(start, end)


def merge_intervals(intervals: list[Interval]) -> list[Interval]:
    """Coalesce overlapping or adjacent intervals into a minimal list."""
    if not intervals:
        return []
    ordered = sorted(intervals, key=lambda iv: iv.start)
    merged = [ordered[0]]
    for iv in ordered[1:]:
        last = merged[-1]
        if last.end is None:
            break  # an open interval absorbs everything after it
        if iv.start <= last.end:
            if iv.end is None:
                merged[-1] = Interval(last.start, None)
            else:
                merged[-1] = Interval(last.start, max(last.end, iv.end))
        else:
            merged.append(iv)
    return merged


def total_days(intervals: list[Interval], horizon: int) -> int:
    """Total covered days across intervals, clamping open ends at horizon."""
    return sum(iv.closed(horizon).duration() for iv in merge_intervals(intervals))
