"""Data-set characterization statistics.

The paper characterizes its corpus before analyzing it ("1250 zones …
530.4M domains and 20.8M nameservers"). This module computes the same
style of overview from a :class:`~repro.zonedb.database.ZoneDatabase`:
per-TLD domain counts, nameserver reuse, delegation churn, and
longitudinal coverage — the sanity numbers a measurement paper reports
in its data-set section.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.dnscore.names import Name
from repro.zonedb.database import ZoneDatabase


@dataclass(frozen=True)
class DatasetStats:
    """The corpus overview."""

    covered_tlds: tuple[str, ...]
    total_domains: int
    total_nameservers: int
    observation_days: int
    domains_per_tld: dict[str, int] = field(default_factory=dict)
    delegation_records: int = 0
    median_domains_per_ns: float = 0.0
    max_domains_per_ns: int = 0
    multi_ns_domain_fraction: float = 0.0

    def rows(self) -> list[tuple[str, object]]:
        """Render-ready (label, value) rows."""
        rows: list[tuple[str, object]] = [
            ("zones covered", len(self.covered_tlds)),
            ("observation window (days)", self.observation_days),
            ("distinct domains", self.total_domains),
            ("distinct nameservers", self.total_nameservers),
            ("delegation interval records", self.delegation_records),
            ("median domains per nameserver", self.median_domains_per_ns),
            ("max domains per nameserver", self.max_domains_per_ns),
            ("domains with >1 nameserver (ever)",
             f"{self.multi_ns_domain_fraction:.1%}"),
        ]
        for tld in sorted(self.domains_per_tld, key=self.domains_per_tld.get,
                          reverse=True):
            rows.append((f"  .{tld} domains", self.domains_per_tld[tld]))
        return rows


def dataset_stats(zonedb: ZoneDatabase) -> DatasetStats:
    """Compute the overview for one database."""
    per_tld: Counter[str] = Counter()
    delegation_records = 0
    multi_ns = 0
    total_domains = 0
    for domain in zonedb.all_domains():
        total_domains += 1
        per_tld[Name(domain).tld] += 1
        records = zonedb.domain_records(domain)
        delegation_records += len(records)
        if len({record.ns for record in records}) > 1:
            multi_ns += 1
    ns_loads = sorted(
        len({record.domain for record in zonedb.ns_records(ns)})
        for ns in zonedb.all_nameservers()
    )
    median = float(ns_loads[len(ns_loads) // 2]) if ns_loads else 0.0
    return DatasetStats(
        covered_tlds=tuple(sorted(zonedb.covered_tlds)),
        total_domains=total_domains,
        total_nameservers=zonedb.nameserver_count(),
        observation_days=zonedb.horizon,
        domains_per_tld=dict(per_tld),
        delegation_records=delegation_records,
        median_domains_per_ns=median,
        max_domains_per_ns=ns_loads[-1] if ns_loads else 0,
        multi_ns_domain_fraction=(multi_ns / total_domains) if total_domains else 0.0,
    )
