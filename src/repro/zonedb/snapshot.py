"""Point-in-time zone snapshots.

A :class:`ZoneSnapshot` is what one day's zone file for one TLD reduces
to: the delegation map and the set of glue-carrying hosts. Snapshots are
the ingestion unit for :class:`~repro.zonedb.database.ZoneDatabase` when
operating in file-diff mode, and the output unit of the archive reader.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dnscore.names import Name
from repro.dnscore.zone import Zone


@dataclass(frozen=True)
class ZoneSnapshot:
    """One TLD's zone contents on one simulation day."""

    day: int
    tld: str
    delegations: dict[str, frozenset[str]] = field(default_factory=dict)
    glue: dict[str, frozenset[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "tld", Name(self.tld).text)

    @classmethod
    def from_zone(cls, day: int, zone: Zone) -> "ZoneSnapshot":
        """Snapshot a :class:`~repro.dnscore.zone.Zone` object."""
        delegations = {
            delegation.domain: delegation.nameservers
            for delegation in zone.delegations()
        }
        glue = {host: zone.glue_of(host) for host in zone.glue_hosts()}
        return cls(day=day, tld=zone.origin, delegations=delegations, glue=glue)

    def to_zone(self, *, serial: int | None = None) -> Zone:
        """Materialize back into a :class:`~repro.dnscore.zone.Zone`."""
        zone = Zone(self.tld, serial=serial if serial is not None else self.day + 1)
        for domain, ns_set in self.delegations.items():
            zone.set_delegation(domain, ns_set)
        for host, addresses in self.glue.items():
            if addresses:
                zone.set_glue(host, addresses)
        return zone

    def domain_count(self) -> int:
        """Number of delegated domains in the snapshot."""
        return len(self.delegations)

    def nameserver_set(self) -> frozenset[str]:
        """Every distinct NS target referenced by the snapshot."""
        names: set[str] = set()
        for ns_set in self.delegations.values():
            names |= ns_set
        return frozenset(names)
