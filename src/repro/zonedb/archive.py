"""On-disk zone archive: directories of daily master-file snapshots.

Mirrors how raw zone file collections are laid out (one file per TLD per
day) so the ingestion pipeline can be exercised end-to-end from text
files, exactly as DZDB ingests CZDS drops:

    archive_root/
        com/
            0000120.zone      # day index, zero padded
        biz/
            0000120.zone
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterator

from repro.dnscore.errors import DnsError
from repro.dnscore.names import Name
from repro.store.base import DelegationStore
from repro.zonedb.database import IngestPolicy, ZoneDatabase
from repro.zonedb.snapshot import ZoneSnapshot

_DAY_WIDTH = 7


def _canonical_or_raw(text: str) -> str:
    """Canonicalize a name, passing invalid ones through untouched.

    Archive parsing must not crash on a corrupt record: invalid names are
    preserved verbatim so ingestion can skip and *count* them (or raise,
    under a strict policy) instead of the parser dying mid-file.
    """
    try:
        return Name(text).text
    except DnsError:
        return text.strip().rstrip(".")


def _parse_snapshot(day: int, tld: str, text: str) -> ZoneSnapshot:
    """Parse one zone file's text into a snapshot, tolerating corruption."""
    delegations: dict[str, set[str]] = {}
    glue: dict[str, set[str]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith(";") or line.startswith("$ORIGIN"):
            continue
        parts = line.split(None, 4)
        if len(parts) != 5 or parts[2].upper() != "IN":
            continue
        owner, _ttl, _klass, rtype, rdata = parts
        owner = _canonical_or_raw(owner)
        if rtype.upper() == "NS" and owner != tld:
            delegations.setdefault(owner, set()).add(_canonical_or_raw(rdata))
        elif rtype.upper() == "A":
            glue.setdefault(owner, set()).add(rdata.strip())
    return ZoneSnapshot(
        day=day,
        tld=tld,
        delegations={d: frozenset(ns) for d, ns in delegations.items()},
        glue={h: frozenset(a) for h, a in glue.items()},
    )


def snapshot_path(root: str | Path, tld: str, day: int) -> Path:
    """The archive path for one TLD/day snapshot."""
    return Path(root) / tld / f"{day:0{_DAY_WIDTH}d}.zone"


def write_archive(root: str | Path, snapshots: list[ZoneSnapshot]) -> list[Path]:
    """Write snapshots as master-file text; returns the paths written."""
    paths = []
    for snapshot in snapshots:
        path = snapshot_path(root, snapshot.tld, snapshot.day)
        path.parent.mkdir(parents=True, exist_ok=True)
        zone = snapshot.to_zone()
        path.write_text(zone.to_text(), encoding="ascii")
        paths.append(path)
    return paths


def iter_archive(root: str | Path) -> Iterator[ZoneSnapshot]:
    """Stream snapshots from an archive in (day, tld) order."""
    root_path = Path(root)
    entries: list[tuple[int, str, Path]] = []
    if not root_path.exists():
        return
    for tld_dir in sorted(root_path.iterdir()):
        if not tld_dir.is_dir():
            continue
        for zone_file in sorted(tld_dir.glob("*.zone")):
            day = int(zone_file.stem)
            entries.append((day, tld_dir.name, zone_file))
    entries.sort()
    for day, tld, path in entries:
        yield _parse_snapshot(day, tld, path.read_text(encoding="ascii"))


def read_archive(
    root: str | Path,
    *,
    ingest_policy: IngestPolicy | None = None,
    store: DelegationStore | None = None,
) -> ZoneDatabase:
    """Build a :class:`ZoneDatabase` by ingesting a whole archive.

    Pass an :class:`IngestPolicy` to bridge snapshot-day gaps or to fail
    fast on degraded input; pending gap-bridge decisions are finalized
    once the archive is exhausted. Pass a ``store`` to ingest into a
    specific backend (e.g. an on-disk SQLite dataset) instead of the
    default in-memory one.
    """
    database = ZoneDatabase(ingest_policy=ingest_policy, store=store)
    for snapshot in iter_archive(root):
        database.ingest_snapshot(snapshot)
    database.finalize_pending()
    return database


def archive_size_bytes(root: str | Path) -> int:
    """Total bytes of zone text in an archive (for reporting)."""
    total = 0
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in filenames:
            if filename.endswith(".zone"):
                total += (Path(dirpath) / filename).stat().st_size
    return total
