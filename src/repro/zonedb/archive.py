"""On-disk zone archive: directories of daily master-file snapshots.

Mirrors how raw zone file collections are laid out (one file per TLD per
day) so the ingestion pipeline can be exercised end-to-end from text
files, exactly as DZDB ingests CZDS drops:

    archive_root/
        com/
            0000120.zone      # day index, zero padded
        biz/
            0000120.zone
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterator

from repro.dnscore.zone import Zone
from repro.zonedb.database import ZoneDatabase
from repro.zonedb.snapshot import ZoneSnapshot

_DAY_WIDTH = 7


def snapshot_path(root: str | Path, tld: str, day: int) -> Path:
    """The archive path for one TLD/day snapshot."""
    return Path(root) / tld / f"{day:0{_DAY_WIDTH}d}.zone"


def write_archive(root: str | Path, snapshots: list[ZoneSnapshot]) -> list[Path]:
    """Write snapshots as master-file text; returns the paths written."""
    paths = []
    for snapshot in snapshots:
        path = snapshot_path(root, snapshot.tld, snapshot.day)
        path.parent.mkdir(parents=True, exist_ok=True)
        zone = snapshot.to_zone()
        path.write_text(zone.to_text(), encoding="ascii")
        paths.append(path)
    return paths


def iter_archive(root: str | Path) -> Iterator[ZoneSnapshot]:
    """Stream snapshots from an archive in (day, tld) order."""
    root_path = Path(root)
    entries: list[tuple[int, str, Path]] = []
    if not root_path.exists():
        return
    for tld_dir in sorted(root_path.iterdir()):
        if not tld_dir.is_dir():
            continue
        for zone_file in sorted(tld_dir.glob("*.zone")):
            day = int(zone_file.stem)
            entries.append((day, tld_dir.name, zone_file))
    entries.sort()
    for day, _tld, path in entries:
        zone = Zone.from_text(path.read_text(encoding="ascii"))
        yield ZoneSnapshot.from_zone(day, zone)


def read_archive(root: str | Path) -> ZoneDatabase:
    """Build a :class:`ZoneDatabase` by ingesting a whole archive."""
    database = ZoneDatabase()
    for snapshot in iter_archive(root):
        database.ingest_snapshot(snapshot)
    return database


def archive_size_bytes(root: str | Path) -> int:
    """Total bytes of zone text in an archive (for reporting)."""
    total = 0
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in filenames:
            if filename.endswith(".zone"):
                total += (Path(dirpath) / filename).stat().st_size
    return total
