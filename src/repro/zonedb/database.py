"""The longitudinal zone database: interval histories of delegations.

DZDB reduces daily zone files to first-seen/last-seen intervals per
(domain, nameserver) pair plus glue presence. :class:`ZoneDatabase`
maintains exactly that, with two write paths:

* :meth:`ingest_snapshot` — diff a full daily snapshot against the
  previous state (how DZDB processes real zone files);
* the change-level API (:meth:`set_delegation`, :meth:`remove_delegation`,
  :meth:`set_glue`, :meth:`remove_glue`) — driven directly by the
  simulated registries' audit streams, equivalent to snapshot diffing but
  without materializing thousands of full snapshots.

All intervals are half-open ``[start, end)`` in day indices; an interval
with ``end is None`` is still open at the database horizon.

Storage is delegated to a pluggable :class:`~repro.store.base.DelegationStore`
backend (in-memory by default, SQLite for on-disk datasets); this class
owns all *semantics* — name canonicalization, snapshot diffing, ingest
policies, and DZDB-style gap bridging — so backends stay interchangeable.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Iterable, Iterator

from repro.dnscore.errors import NameError_
from repro.dnscore.names import Name
from repro.simtime import Interval
from repro.store.base import (
    DOMAIN,
    GLUE,
    DelegationRecord,
    DelegationStore,
    dispatch_delta,
)
from repro.store.changelog import (
    DELEGATION_ADD,
    DELEGATION_REMOVE,
    DOMAIN_APPEAR,
    DOMAIN_EXPIRE,
    GLUE_ADD,
    GLUE_REMOVE,
    TLD_COVER,
    ChangeLog,
    DeltaEvent,
)
from repro.store.memory import MemoryDelegationStore
from repro.zonedb.snapshot import ZoneSnapshot

__all__ = [
    "DelegationRecord",
    "FinalizeReport",
    "IngestError",
    "IngestPolicy",
    "IngestReport",
    "ZoneDatabase",
]


class IngestError(Exception):
    """Raised in strict mode when a snapshot cannot be ingested cleanly."""


@dataclass(frozen=True)
class IngestPolicy:
    """How :meth:`ZoneDatabase.ingest_snapshot` reacts to degraded input.

    ``gap_bridge_days`` is the DZDB-style bridging window: a delegation
    absent from snapshots for at most that many days keeps its interval
    open (missing zone-file days do not close and re-open histories).
    The default window of 0 reproduces strict day-level diffing exactly.
    In ``strict`` mode corrupt records and out-of-order snapshots raise
    :class:`IngestError` instead of being skipped and counted.
    """

    gap_bridge_days: int = 0
    strict: bool = False


@dataclass
class IngestReport:
    """What one :meth:`ZoneDatabase.ingest_snapshot` call actually did."""

    day: int
    tld: str
    #: False when the whole snapshot was rejected (see ``reason``).
    ingested: bool = True
    reason: str | None = None
    #: True when the same (tld, day) was already ingested.
    duplicate: bool = False
    #: Delegated domains carried by the snapshot.
    delegations: int = 0
    #: Records skipped because they could not be parsed.
    records_skipped: int = 0
    #: Mangled names detected among the skipped records.
    corrupt_records: int = 0
    #: Delegations whose absence gap was bridged (interval kept open).
    gaps_bridged: int = 0
    #: Delegations closed retroactively after exceeding the gap window.
    closed_after_gap: int = 0

    @property
    def corruption_detected(self) -> bool:
        """True if any record in the snapshot was mangled."""
        return self.corrupt_records > 0

    @property
    def clean(self) -> bool:
        """True if the snapshot ingested fully, with nothing degraded."""
        return (
            self.ingested
            and not self.duplicate
            and self.records_skipped == 0
            and self.gaps_bridged == 0
            and self.closed_after_gap == 0
        )


@dataclass
class FinalizeReport:
    """What one :meth:`ZoneDatabase.finalize_pending` call actually did.

    The IngestReport-style summary of the horizon sweep: how many
    pending gap-bridge verdicts were closed, which domains they were,
    and how many synthesized bridging deltas landed in the delta stream
    (incremental consumers fold these exactly like ingest-time deltas).
    """

    #: Delegations closed at the day they were first observed absent.
    closed: int = 0
    #: Delta events the synthesized closes emitted.
    deltas_emitted: int = 0
    #: The closed domains, in the (sorted) order they were processed.
    domains: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True if nothing was pending (the archive ended cleanly)."""
        return self.closed == 0


class ZoneDatabase:
    """Interval histories of delegations and glue across TLD zones.

    A façade: every interval lives in :attr:`store`, a
    :class:`~repro.store.base.DelegationStore` backend. The façade keeps
    only ingest bookkeeping (policy, reports, per-TLD last-ingest days,
    pending gap-bridge verdicts) that has meaning mid-ingest.

    Every mutation flows through one write path (:meth:`_emit`) as a
    typed :class:`~repro.store.changelog.DeltaEvent`: the store applies
    and records it, and an attached :class:`~repro.store.changelog.ChangeLog`
    mirrors it durably. Events are grouped under *batch days* — the day
    the mutation was performed, which can exceed its effective day when
    gap bridging rewrites history retroactively.
    """

    def __init__(
        self,
        covered_tlds: Iterable[str] = (),
        *,
        ingest_policy: IngestPolicy | None = None,
        store: DelegationStore | None = None,
        changelog: ChangeLog | None = None,
    ) -> None:
        self.store: DelegationStore = store if store is not None else MemoryDelegationStore()
        self.covered_tlds: set[str] = {Name(t).text for t in covered_tlds}
        self.horizon: int = 0
        self.ingest_policy = ingest_policy or IngestPolicy()
        self.ingest_reports: list[IngestReport] = []
        self._last_ingest_day: dict[str, int] = {}
        #: Domains absent from recent snapshots, awaiting the bridge
        #: window's verdict: domain -> first day observed absent.
        self._pending_close: dict[str, int] = {}
        #: Mirrors every emitted delta when attached.
        self.changelog: ChangeLog | None = changelog
        #: Explicit batch-day context (set during ingest/finalize so
        #: retroactive rewrites batch under the day that caused them).
        self._batch_day: int | None = None
        #: Batch days never decrease, even across unordered multi-TLD
        #: archives (sequence order is what replay preserves).
        self._batch_floor: int = 0
        #: Running count of emitted deltas (cheap finalize accounting).
        self._deltas_emitted: int = 0
        self._load_meta()

    # -- the delta write path -----------------------------------------------

    def attach_changelog(self, changelog: ChangeLog) -> None:
        """Mirror every subsequently emitted delta into ``changelog``."""
        self.changelog = changelog

    def _emit(self, event: DeltaEvent) -> None:
        """Apply one mutation and record it as a delta.

        The *only* mutation path: the store applies-and-records the
        event under the current batch day, and the attached change log
        (if any) mirrors it durably.
        """
        batch_day = self._batch_day if self._batch_day is not None else self.horizon
        batch_day = max(batch_day, self._batch_floor)
        self._batch_floor = batch_day
        self.store.apply_delta(event, batch_day)
        self._deltas_emitted += 1
        if self.changelog is not None:
            self.changelog.record(batch_day, event)

    def apply_delta(self, event: DeltaEvent) -> None:
        """Replay one recorded delta into this database (no re-emission).

        The incremental engine grows its own store by replaying a
        recorded delta stream; events mutate through the exact same
        primitives that produced them, so replay is bit-faithful.
        """
        self.horizon = max(self.horizon, event.day)
        if event.kind == TLD_COVER:
            self.covered_tlds.add(event.name)
            return
        dispatch_delta(self.store, event)

    def apply_deltas(self, events: Iterable[DeltaEvent]) -> int:
        """Replay a sequence of deltas; returns how many were applied."""
        count = 0
        for event in events:
            self.apply_delta(event)
            count += 1
        return count

    # -- write path ---------------------------------------------------------

    def cover(self, tld: str) -> None:
        """Declare that this database receives data for ``tld``."""
        tld_text = Name(tld).text
        if tld_text in self.covered_tlds:
            return
        self.covered_tlds.add(tld_text)
        self._emit(DeltaEvent(kind=TLD_COVER, day=self.horizon, name=tld_text))

    def covers(self, name: str) -> bool:
        """True if the TLD of ``name`` is inside the data set."""
        return Name(name).tld in self.covered_tlds

    def advance(self, day: int) -> None:
        """Move the observation horizon forward (no going back)."""
        if day < self.horizon:
            raise ValueError(f"horizon cannot move backwards: {day} < {self.horizon}")
        self.horizon = day

    def set_delegation(self, day: int, domain: str, nameservers: Iterable[str]) -> None:
        """Record that ``domain``'s NS set is ``nameservers`` from ``day`` on."""
        self.advance(max(self.horizon, day))
        domain_text = Name(domain).text
        new_set = frozenset(Name(ns).text for ns in nameservers)
        if not new_set:
            self.remove_delegation(day, domain_text)
            return
        old_set = self.store.current_nameservers(domain_text)
        if new_set == old_set:
            return
        for ns in sorted(old_set - new_set):
            self._emit(
                DeltaEvent(kind=DELEGATION_REMOVE, day=day, name=domain_text, ns=ns)
            )
        for ns in sorted(new_set - old_set):
            self._emit(
                DeltaEvent(kind=DELEGATION_ADD, day=day, name=domain_text, ns=ns)
            )
        if not self.store.presence_open(DOMAIN, domain_text):
            self._emit(DeltaEvent(kind=DOMAIN_APPEAR, day=day, name=domain_text))

    def remove_delegation(self, day: int, domain: str) -> None:
        """Record that ``domain`` left the zone on ``day``."""
        self.advance(max(self.horizon, day))
        domain_text = Name(domain).text
        for ns in sorted(self.store.current_nameservers(domain_text)):
            self._emit(
                DeltaEvent(kind=DELEGATION_REMOVE, day=day, name=domain_text, ns=ns)
            )
        if self.store.presence_open(DOMAIN, domain_text):
            self._emit(DeltaEvent(kind=DOMAIN_EXPIRE, day=day, name=domain_text))

    def set_glue(self, day: int, host: str) -> None:
        """Record that ``host`` has glue from ``day`` on."""
        self.advance(max(self.horizon, day))
        host_text = Name(host).text
        if not self.store.presence_open(GLUE, host_text):
            self._emit(DeltaEvent(kind=GLUE_ADD, day=day, name=host_text))

    def remove_glue(self, day: int, host: str) -> None:
        """Record that ``host`` lost its glue on ``day``."""
        self.advance(max(self.horizon, day))
        host_text = Name(host).text
        if self.store.presence_open(GLUE, host_text):
            self._emit(DeltaEvent(kind=GLUE_REMOVE, day=day, name=host_text))

    def ingest_snapshot(self, snapshot: ZoneSnapshot) -> IngestReport:
        """Diff one daily snapshot against current state (DZDB mode).

        Domains in the snapshot's TLD that are currently known but absent
        from the snapshot are closed; changed or new delegations are
        opened. Glue presence is diffed the same way.

        Degraded input is handled per :attr:`ingest_policy`: out-of-order
        snapshots are skipped (raised in strict mode), duplicates are
        re-diffed idempotently, corrupt records are skipped and counted,
        and — with a non-zero ``gap_bridge_days`` — a delegation absent
        for at most the window keeps its interval open instead of being
        closed and re-opened. The returned :class:`IngestReport` (also
        appended to :attr:`ingest_reports`) says exactly what happened.
        """
        policy = self.ingest_policy
        report = IngestReport(day=snapshot.day, tld=snapshot.tld)
        # Everything this ingest does — including retroactive gap-bridge
        # closes whose effective day is in the past — batches under the
        # snapshot day, so delta consumers see one batch per ingest.
        self._batch_day = max(snapshot.day, self._batch_floor)
        try:
            return self._ingest_snapshot_batched(snapshot, policy, report)
        finally:
            self._batch_day = None

    def _ingest_snapshot_batched(
        self, snapshot: ZoneSnapshot, policy: IngestPolicy, report: IngestReport
    ) -> IngestReport:
        self.cover(snapshot.tld)
        day = snapshot.day
        suffix = "." + snapshot.tld
        last = self._last_ingest_day.get(snapshot.tld)
        if last is not None:
            if day < last:
                if policy.strict:
                    raise IngestError(
                        f"out-of-order snapshot for {snapshot.tld!r}: "
                        f"day {day} after day {last}"
                    )
                report.ingested = False
                report.reason = "out-of-order"
                self.ingest_reports.append(report)
                return report
            if day == last:
                report.duplicate = True
        self._last_ingest_day[snapshot.tld] = day
        report.delegations = len(snapshot.delegations)
        bridge = policy.gap_bridge_days
        if bridge:
            # Close pending absences whose window lapsed without the
            # domain coming back (resurrected domains are handled below).
            for domain, absent_since in list(self._pending_close.items()):
                if not domain.endswith(suffix):
                    continue
                if domain in snapshot.delegations:
                    continue
                if day - absent_since > bridge:
                    self.remove_delegation(absent_since, domain)
                    del self._pending_close[domain]
                    report.closed_after_gap += 1
        for domain in self.store.current_domains(suffix):
            if domain not in snapshot.delegations:
                if bridge:
                    self._pending_close.setdefault(domain, day)
                else:
                    self.remove_delegation(day, domain)
        for domain, ns_set in snapshot.delegations.items():
            if bridge:
                absent_since = self._pending_close.pop(domain, None)
                if absent_since is not None:
                    if day - absent_since > bridge:
                        self.remove_delegation(absent_since, domain)
                        report.closed_after_gap += 1
                    else:
                        report.gaps_bridged += 1
            try:
                self.set_delegation(day, domain, ns_set)
            except NameError_:
                self._ingest_degraded_delegation(day, domain, ns_set, report)
        glue_now = {host for host, addrs in snapshot.glue.items() if addrs}
        for host in list(self.store.presence_keys(GLUE)):
            if host.endswith(suffix) and host not in glue_now:
                if self.store.presence_contains(GLUE, host, day):
                    self.remove_glue(day, host)
        for host in sorted(glue_now):
            try:
                self.set_glue(day, host)
            except NameError_:
                if policy.strict:
                    raise IngestError(
                        f"corrupt glue record {host!r} on day {day}"
                    ) from None
                report.corrupt_records += 1
                report.records_skipped += 1
        self.ingest_reports.append(report)
        return report

    def _ingest_degraded_delegation(
        self, day: int, domain: str, ns_set: Iterable[str], report: IngestReport
    ) -> None:
        """Salvage a delegation whose record set failed name validation.

        Zone-file corruption hits individual records (lines), so a bad NS
        target drops only that (domain, ns) pair; a mangled owner name
        makes the whole delegation unparseable — and the true domain, if
        previously known, shows up as absent through the normal diff.
        """
        if self.ingest_policy.strict:
            raise IngestError(
                f"corrupt delegation record for {domain!r} on day {day}"
            ) from None
        ns_list = list(ns_set)
        try:
            Name(domain)
        except NameError_:
            report.corrupt_records += 1
            report.records_skipped += max(1, len(ns_list))
            return
        valid = []
        for ns in ns_list:
            try:
                Name(ns)
            except NameError_:
                report.corrupt_records += 1
                report.records_skipped += 1
            else:
                valid.append(ns)
        if valid:
            self.set_delegation(day, domain, valid)

    def finalize_pending(self) -> FinalizeReport:
        """Close every delegation still awaiting its gap-bridge verdict.

        Call once after the last snapshot of an archive: domains that
        disappeared near the end of the data and never came back are
        closed at the day they were first observed absent (exactly what
        a bridging DZDB does at its horizon). The synthesized bridging
        closes are emitted as deltas batched under the horizon day, so
        incremental consumers see them like any other rewrite. Returns
        a :class:`FinalizeReport` summary.
        """
        report = FinalizeReport()
        emitted_before = self._deltas_emitted
        self._batch_day = max(self.horizon, self._batch_floor)
        try:
            for domain, absent_since in sorted(self._pending_close.items()):
                self.remove_delegation(absent_since, domain)
                report.closed += 1
                report.domains.append(domain)
            self._pending_close.clear()
        finally:
            self._batch_day = None
        report.deltas_emitted = self._deltas_emitted - emitted_before
        return report

    # -- metadata persistence ------------------------------------------------

    _META_KEY = "zonedb"

    def _load_meta(self) -> None:
        """Adopt persisted façade state from a pre-existing store."""
        raw = self.store.get_meta(self._META_KEY)
        if raw is None:
            return
        meta = json.loads(raw)
        self.covered_tlds.update(meta.get("covered_tlds", ()))
        self.horizon = max(self.horizon, int(meta.get("horizon", 0)))
        self._last_ingest_day.update(meta.get("last_ingest_day", {}))
        for entry in meta.get("ingest_reports", ()):
            self.ingest_reports.append(IngestReport(**entry))

    def flush(self) -> None:
        """Persist façade state into the store and make writes durable."""
        meta = {
            "covered_tlds": sorted(self.covered_tlds),
            "horizon": self.horizon,
            "last_ingest_day": dict(sorted(self._last_ingest_day.items())),
            "ingest_reports": [asdict(report) for report in self.ingest_reports],
        }
        self.store.set_meta(self._META_KEY, json.dumps(meta, sort_keys=True))
        self.store.flush()

    def close(self) -> None:
        """Flush and release the underlying store."""
        self.flush()
        self.store.close()

    # -- delta queries / watermarks -------------------------------------------

    _WATERMARK_PREFIX = "watermark:"

    def deltas_since(self, day: int | None) -> list[tuple[int, DeltaEvent]]:
        """Recorded (batch_day, event) pairs with ``batch_day > day``."""
        return self.store.deltas_since(day)

    def watermark(self, consumer: str) -> int | None:
        """The last batch day ``consumer`` committed against this store."""
        raw = self.store.get_meta(self._WATERMARK_PREFIX + consumer)
        return None if raw is None else int(raw)

    def commit_watermark(self, consumer: str, day: int) -> None:
        """Durably record that ``consumer`` processed through ``day``."""
        current = self.watermark(consumer)
        if current is not None and day < current:
            raise ValueError(
                f"watermark for {consumer!r} cannot move backwards: "
                f"{day} < {current}"
            )
        self.store.set_meta(self._WATERMARK_PREFIX + consumer, str(day))
        self.store.flush()

    # -- queries: nameservers -----------------------------------------------

    def all_nameservers(self) -> Iterator[str]:
        """Every NS name ever referenced by any delegation."""
        return iter(self.store.all_nameservers())

    def nameserver_count(self) -> int:
        """Number of distinct NS names ever seen."""
        return self.store.nameserver_count()

    def ns_records(self, ns: str) -> list[DelegationRecord]:
        """All (domain, ns) interval records for ``ns``."""
        return self.store.ns_records(Name(ns).text)

    def first_seen(self, ns: str) -> int | None:
        """The day ``ns`` was first referenced by any domain."""
        records = self.store.ns_records(Name(ns).text)
        if not records:
            return None
        return min(record.start for record in records)

    def domains_of_ns(self, ns: str, day: int | None = None) -> frozenset[str]:
        """Domains delegating to ``ns`` (ever, or on a specific day)."""
        records = self.store.ns_records(Name(ns).text)
        if day is None:
            return frozenset(record.domain for record in records)
        return frozenset(
            record.domain for record in records if record.active_on(day)
        )

    def ns_tlds(self, ns: str) -> frozenset[str]:
        """TLDs of the domains that ever delegated to ``ns``."""
        records = self.store.ns_records(Name(ns).text)
        return frozenset(Name(record.domain).tld for record in records)

    # -- queries: domains ----------------------------------------------------

    def all_domains(self) -> Iterator[str]:
        """Every domain ever delegated in the data set."""
        return iter(self.store.all_domains())

    def domain_count(self) -> int:
        """Number of distinct domains ever seen."""
        return self.store.domain_count()

    def domain_records(self, domain: str) -> list[DelegationRecord]:
        """All (domain, ns) interval records for ``domain``."""
        return self.store.domain_records(Name(domain).text)

    def nameservers_of(self, domain: str, day: int) -> frozenset[str]:
        """The NS set of ``domain`` on ``day``."""
        records = self.store.domain_records(Name(domain).text)
        return frozenset(record.ns for record in records if record.active_on(day))

    def nameservers_removed_on(self, domain: str, day: int) -> frozenset[str]:
        """NS targets whose interval for ``domain`` closed exactly on ``day``.

        These are the nameservers "last seen the day before" ``day`` — the
        join used by the original-nameserver matching step.
        """
        records = self.store.domain_records(Name(domain).text)
        return frozenset(record.ns for record in records if record.end == day)

    def domain_present(self, domain: str, day: int) -> bool:
        """True if ``domain`` was delegated in its zone on ``day``."""
        return self.store.presence_contains(DOMAIN, Name(domain).text, day)

    def domain_presence_intervals(self, domain: str) -> list[Interval]:
        """When ``domain`` was present in its zone, as intervals."""
        return self.store.presence_intervals(DOMAIN, Name(domain).text)

    def domain_ever_seen(self, domain: str) -> bool:
        """True if ``domain`` ever appeared in the data set."""
        return bool(self.store.domain_records(Name(domain).text))

    def tld_partitions(self) -> list[str]:
        """Sorted TLDs of ever-seen domains (dataset partition keys)."""
        return self.store.partitions()

    def domains_in_tld(self, tld: str) -> list[str]:
        """Ever-seen domains in one TLD partition."""
        return self.store.domains_in_tld(Name(tld).text)

    # -- queries: glue --------------------------------------------------------

    def glue_present(self, host: str, day: int) -> bool:
        """True if ``host`` had glue on ``day``."""
        return self.store.presence_contains(GLUE, Name(host).text, day)

    def glue_intervals(self, host: str) -> list[Interval]:
        """Glue presence intervals for ``host``."""
        return self.store.presence_intervals(GLUE, Name(host).text)

    # -- snapshot reconstruction ----------------------------------------------

    def snapshot_at(self, day: int, tld: str) -> ZoneSnapshot:
        """Reconstruct one TLD's snapshot for ``day`` from the intervals."""
        tld_text = Name(tld).text
        delegations: dict[str, frozenset[str]] = {}
        for domain in self.store.domains_in_tld(tld_text):
            active = frozenset(
                r.ns for r in self.store.domain_records(domain) if r.active_on(day)
            )
            if active:
                delegations[domain] = active
        # The database tracks glue *presence*, not addresses (DZDB-style),
        # so reconstructed snapshots carry a documentation placeholder.
        suffix = "." + tld_text
        glue = {
            host: frozenset({"192.0.2.0"})
            for host in self.store.presence_keys(GLUE)
            if host.endswith(suffix)
            and self.store.presence_contains(GLUE, host, day)
        }
        return ZoneSnapshot(day=day, tld=tld_text, delegations=delegations, glue=glue)

    def __repr__(self) -> str:
        return (
            f"ZoneDatabase(tlds={sorted(self.covered_tlds)}, "
            f"domains={self.domain_count()}, ns={self.nameserver_count()}, "
            f"horizon={self.horizon}, backend={self.store.backend_name!r})"
        )
