"""The longitudinal zone database: interval histories of delegations.

DZDB reduces daily zone files to first-seen/last-seen intervals per
(domain, nameserver) pair plus glue presence. :class:`ZoneDatabase`
maintains exactly that, with two write paths:

* :meth:`ingest_snapshot` — diff a full daily snapshot against the
  previous state (how DZDB processes real zone files);
* the change-level API (:meth:`set_delegation`, :meth:`remove_delegation`,
  :meth:`set_glue`, :meth:`remove_glue`) — driven directly by the
  simulated registries' audit streams, equivalent to snapshot diffing but
  without materializing thousands of full snapshots.

All intervals are half-open ``[start, end)`` in day indices; an interval
with ``end is None`` is still open at the database horizon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.dnscore.errors import NameError_
from repro.dnscore.names import Name
from repro.simtime import Interval
from repro.zonedb.snapshot import ZoneSnapshot


class IngestError(Exception):
    """Raised in strict mode when a snapshot cannot be ingested cleanly."""


@dataclass(frozen=True)
class IngestPolicy:
    """How :meth:`ZoneDatabase.ingest_snapshot` reacts to degraded input.

    ``gap_bridge_days`` is the DZDB-style bridging window: a delegation
    absent from snapshots for at most that many days keeps its interval
    open (missing zone-file days do not close and re-open histories).
    The default window of 0 reproduces strict day-level diffing exactly.
    In ``strict`` mode corrupt records and out-of-order snapshots raise
    :class:`IngestError` instead of being skipped and counted.
    """

    gap_bridge_days: int = 0
    strict: bool = False


@dataclass
class IngestReport:
    """What one :meth:`ZoneDatabase.ingest_snapshot` call actually did."""

    day: int
    tld: str
    #: False when the whole snapshot was rejected (see ``reason``).
    ingested: bool = True
    reason: str | None = None
    #: True when the same (tld, day) was already ingested.
    duplicate: bool = False
    #: Delegated domains carried by the snapshot.
    delegations: int = 0
    #: Records skipped because they could not be parsed.
    records_skipped: int = 0
    #: Mangled names detected among the skipped records.
    corrupt_records: int = 0
    #: Delegations whose absence gap was bridged (interval kept open).
    gaps_bridged: int = 0
    #: Delegations closed retroactively after exceeding the gap window.
    closed_after_gap: int = 0

    @property
    def corruption_detected(self) -> bool:
        """True if any record in the snapshot was mangled."""
        return self.corrupt_records > 0

    @property
    def clean(self) -> bool:
        """True if the snapshot ingested fully, with nothing degraded."""
        return (
            self.ingested
            and not self.duplicate
            and self.records_skipped == 0
            and self.gaps_bridged == 0
            and self.closed_after_gap == 0
        )


class DelegationRecord:
    """One (domain, nameserver) co-occurrence interval.

    Shared by the per-domain and per-nameserver indexes so closing the
    interval updates both views.
    """

    __slots__ = ("domain", "ns", "start", "end")

    def __init__(self, domain: str, ns: str, start: int, end: int | None = None):
        self.domain = domain
        self.ns = ns
        self.start = start
        self.end = end

    @property
    def interval(self) -> Interval:
        """The record's interval view."""
        return Interval(self.start, self.end)

    def active_on(self, day: int) -> bool:
        """True if the pair was in the zone on ``day``."""
        return self.start <= day and (self.end is None or day < self.end)

    def __repr__(self) -> str:
        return (
            f"DelegationRecord({self.domain!r} -> {self.ns!r}, "
            f"[{self.start}, {self.end}))"
        )


class _PresenceHistory:
    """Open/close interval tracking for a set of keys (e.g. glue hosts)."""

    __slots__ = ("_closed", "_open")

    def __init__(self) -> None:
        self._closed: dict[str, list[Interval]] = {}
        self._open: dict[str, int] = {}

    def open(self, key: str, day: int) -> None:
        if key not in self._open:
            self._open[key] = day

    def close(self, key: str, day: int) -> None:
        start = self._open.pop(key, None)
        if start is not None:
            if day > start:
                self._closed.setdefault(key, []).append(Interval(start, day))
            # zero-length presence (opened and closed the same day) vanishes

    def is_present(self, key: str, day: int) -> bool:
        start = self._open.get(key)
        if start is not None and start <= day:
            return True
        return any(iv.contains(day) for iv in self._closed.get(key, ()))

    def intervals(self, key: str) -> list[Interval]:
        result = list(self._closed.get(key, ()))
        start = self._open.get(key)
        if start is not None:
            result.append(Interval(start, None))
        return result

    def keys(self) -> Iterator[str]:
        seen = set(self._closed) | set(self._open)
        return iter(sorted(seen))


class ZoneDatabase:
    """Interval histories of delegations and glue across TLD zones."""

    def __init__(
        self,
        covered_tlds: Iterable[str] = (),
        *,
        ingest_policy: IngestPolicy | None = None,
    ) -> None:
        self.covered_tlds: set[str] = {Name(t).text for t in covered_tlds}
        self.horizon: int = 0
        self.ingest_policy = ingest_policy or IngestPolicy()
        self.ingest_reports: list[IngestReport] = []
        self._domain_recs: dict[str, list[DelegationRecord]] = {}
        self._ns_recs: dict[str, list[DelegationRecord]] = {}
        self._open: dict[tuple[str, str], DelegationRecord] = {}
        self._current: dict[str, frozenset[str]] = {}
        self._glue = _PresenceHistory()
        self._domain_presence = _PresenceHistory()
        self._last_ingest_day: dict[str, int] = {}
        #: Domains absent from recent snapshots, awaiting the bridge
        #: window's verdict: domain -> first day observed absent.
        self._pending_close: dict[str, int] = {}

    # -- write path ---------------------------------------------------------

    def cover(self, tld: str) -> None:
        """Declare that this database receives data for ``tld``."""
        self.covered_tlds.add(Name(tld).text)

    def covers(self, name: str) -> bool:
        """True if the TLD of ``name`` is inside the data set."""
        return Name(name).tld in self.covered_tlds

    def advance(self, day: int) -> None:
        """Move the observation horizon forward (no going back)."""
        if day < self.horizon:
            raise ValueError(f"horizon cannot move backwards: {day} < {self.horizon}")
        self.horizon = day

    def set_delegation(self, day: int, domain: str, nameservers: Iterable[str]) -> None:
        """Record that ``domain``'s NS set is ``nameservers`` from ``day`` on."""
        self.advance(max(self.horizon, day))
        domain_text = Name(domain).text
        new_set = frozenset(Name(ns).text for ns in nameservers)
        if not new_set:
            self.remove_delegation(day, domain_text)
            return
        old_set = self._current.get(domain_text, frozenset())
        if new_set == old_set:
            return
        for ns in sorted(old_set - new_set):
            self._close_pair(domain_text, ns, day)
        for ns in sorted(new_set - old_set):
            self._open_pair(domain_text, ns, day)
        self._current[domain_text] = new_set
        self._domain_presence.open(domain_text, day)

    def remove_delegation(self, day: int, domain: str) -> None:
        """Record that ``domain`` left the zone on ``day``."""
        self.advance(max(self.horizon, day))
        domain_text = Name(domain).text
        old_set = self._current.pop(domain_text, frozenset())
        for ns in old_set:
            self._close_pair(domain_text, ns, day)
        self._domain_presence.close(domain_text, day)

    def set_glue(self, day: int, host: str) -> None:
        """Record that ``host`` has glue from ``day`` on."""
        self.advance(max(self.horizon, day))
        self._glue.open(Name(host).text, day)

    def remove_glue(self, day: int, host: str) -> None:
        """Record that ``host`` lost its glue on ``day``."""
        self.advance(max(self.horizon, day))
        self._glue.close(Name(host).text, day)

    def ingest_snapshot(self, snapshot: ZoneSnapshot) -> IngestReport:
        """Diff one daily snapshot against current state (DZDB mode).

        Domains in the snapshot's TLD that are currently known but absent
        from the snapshot are closed; changed or new delegations are
        opened. Glue presence is diffed the same way.

        Degraded input is handled per :attr:`ingest_policy`: out-of-order
        snapshots are skipped (raised in strict mode), duplicates are
        re-diffed idempotently, corrupt records are skipped and counted,
        and — with a non-zero ``gap_bridge_days`` — a delegation absent
        for at most the window keeps its interval open instead of being
        closed and re-opened. The returned :class:`IngestReport` (also
        appended to :attr:`ingest_reports`) says exactly what happened.
        """
        policy = self.ingest_policy
        report = IngestReport(day=snapshot.day, tld=snapshot.tld)
        self.cover(snapshot.tld)
        day = snapshot.day
        suffix = "." + snapshot.tld
        last = self._last_ingest_day.get(snapshot.tld)
        if last is not None:
            if day < last:
                if policy.strict:
                    raise IngestError(
                        f"out-of-order snapshot for {snapshot.tld!r}: "
                        f"day {day} after day {last}"
                    )
                report.ingested = False
                report.reason = "out-of-order"
                self.ingest_reports.append(report)
                return report
            if day == last:
                report.duplicate = True
        self._last_ingest_day[snapshot.tld] = day
        report.delegations = len(snapshot.delegations)
        bridge = policy.gap_bridge_days
        if bridge:
            # Close pending absences whose window lapsed without the
            # domain coming back (resurrected domains are handled below).
            for domain, absent_since in list(self._pending_close.items()):
                if not domain.endswith(suffix):
                    continue
                if domain in snapshot.delegations:
                    continue
                if day - absent_since > bridge:
                    self.remove_delegation(absent_since, domain)
                    del self._pending_close[domain]
                    report.closed_after_gap += 1
        known = [
            domain for domain in self._current
            if domain.endswith(suffix)
        ]
        for domain in known:
            if domain not in snapshot.delegations:
                if bridge:
                    self._pending_close.setdefault(domain, day)
                else:
                    self.remove_delegation(day, domain)
        for domain, ns_set in snapshot.delegations.items():
            if bridge:
                absent_since = self._pending_close.pop(domain, None)
                if absent_since is not None:
                    if day - absent_since > bridge:
                        self.remove_delegation(absent_since, domain)
                        report.closed_after_gap += 1
                    else:
                        report.gaps_bridged += 1
            try:
                self.set_delegation(day, domain, ns_set)
            except NameError_:
                self._ingest_degraded_delegation(day, domain, ns_set, report)
        glue_now = {host for host, addrs in snapshot.glue.items() if addrs}
        for host in list(self._glue.keys()):
            if host.endswith(suffix) and host not in glue_now:
                if self._glue.is_present(host, day):
                    self.remove_glue(day, host)
        for host in sorted(glue_now):
            try:
                self.set_glue(day, host)
            except NameError_:
                if policy.strict:
                    raise IngestError(
                        f"corrupt glue record {host!r} on day {day}"
                    ) from None
                report.corrupt_records += 1
                report.records_skipped += 1
        self.ingest_reports.append(report)
        return report

    def _ingest_degraded_delegation(
        self, day: int, domain: str, ns_set: Iterable[str], report: IngestReport
    ) -> None:
        """Salvage a delegation whose record set failed name validation.

        Zone-file corruption hits individual records (lines), so a bad NS
        target drops only that (domain, ns) pair; a mangled owner name
        makes the whole delegation unparseable — and the true domain, if
        previously known, shows up as absent through the normal diff.
        """
        if self.ingest_policy.strict:
            raise IngestError(
                f"corrupt delegation record for {domain!r} on day {day}"
            ) from None
        ns_list = list(ns_set)
        try:
            Name(domain)
        except NameError_:
            report.corrupt_records += 1
            report.records_skipped += max(1, len(ns_list))
            return
        valid = []
        for ns in ns_list:
            try:
                Name(ns)
            except NameError_:
                report.corrupt_records += 1
                report.records_skipped += 1
            else:
                valid.append(ns)
        if valid:
            self.set_delegation(day, domain, valid)

    def finalize_pending(self) -> int:
        """Close every delegation still awaiting its gap-bridge verdict.

        Call once after the last snapshot of an archive: domains that
        disappeared near the end of the data and never came back are
        closed at the day they were first observed absent (exactly what
        a bridging DZDB does at its horizon). Returns the number of
        domains closed.
        """
        count = 0
        for domain, absent_since in sorted(self._pending_close.items()):
            self.remove_delegation(absent_since, domain)
            count += 1
        self._pending_close.clear()
        return count

    def _open_pair(self, domain: str, ns: str, day: int) -> None:
        record = DelegationRecord(domain, ns, day)
        self._open[(domain, ns)] = record
        self._domain_recs.setdefault(domain, []).append(record)
        self._ns_recs.setdefault(ns, []).append(record)

    def _close_pair(self, domain: str, ns: str, day: int) -> None:
        record = self._open.pop((domain, ns), None)
        if record is None:
            return
        if day <= record.start:
            # Added and removed within one day: invisible to daily zone
            # snapshots, so it must not exist in the interval history.
            self._domain_recs[domain].remove(record)
            if not self._domain_recs[domain]:
                del self._domain_recs[domain]
            self._ns_recs[ns].remove(record)
            if not self._ns_recs[ns]:
                del self._ns_recs[ns]
            return
        record.end = day

    # -- queries: nameservers -----------------------------------------------

    def all_nameservers(self) -> Iterator[str]:
        """Every NS name ever referenced by any delegation."""
        return iter(self._ns_recs)

    def nameserver_count(self) -> int:
        """Number of distinct NS names ever seen."""
        return len(self._ns_recs)

    def ns_records(self, ns: str) -> list[DelegationRecord]:
        """All (domain, ns) interval records for ``ns``."""
        return list(self._ns_recs.get(Name(ns).text, ()))

    def first_seen(self, ns: str) -> int | None:
        """The day ``ns`` was first referenced by any domain."""
        records = self._ns_recs.get(Name(ns).text)
        if not records:
            return None
        return min(record.start for record in records)

    def domains_of_ns(self, ns: str, day: int | None = None) -> frozenset[str]:
        """Domains delegating to ``ns`` (ever, or on a specific day)."""
        records = self._ns_recs.get(Name(ns).text, ())
        if day is None:
            return frozenset(record.domain for record in records)
        return frozenset(
            record.domain for record in records if record.active_on(day)
        )

    def ns_tlds(self, ns: str) -> frozenset[str]:
        """TLDs of the domains that ever delegated to ``ns``."""
        records = self._ns_recs.get(Name(ns).text, ())
        return frozenset(Name(record.domain).tld for record in records)

    # -- queries: domains ----------------------------------------------------

    def all_domains(self) -> Iterator[str]:
        """Every domain ever delegated in the data set."""
        return iter(self._domain_recs)

    def domain_count(self) -> int:
        """Number of distinct domains ever seen."""
        return len(self._domain_recs)

    def domain_records(self, domain: str) -> list[DelegationRecord]:
        """All (domain, ns) interval records for ``domain``."""
        return list(self._domain_recs.get(Name(domain).text, ()))

    def nameservers_of(self, domain: str, day: int) -> frozenset[str]:
        """The NS set of ``domain`` on ``day``."""
        records = self._domain_recs.get(Name(domain).text, ())
        return frozenset(record.ns for record in records if record.active_on(day))

    def nameservers_removed_on(self, domain: str, day: int) -> frozenset[str]:
        """NS targets whose interval for ``domain`` closed exactly on ``day``.

        These are the nameservers "last seen the day before" ``day`` — the
        join used by the original-nameserver matching step.
        """
        records = self._domain_recs.get(Name(domain).text, ())
        return frozenset(record.ns for record in records if record.end == day)

    def domain_present(self, domain: str, day: int) -> bool:
        """True if ``domain`` was delegated in its zone on ``day``."""
        return self._domain_presence.is_present(Name(domain).text, day)

    def domain_presence_intervals(self, domain: str) -> list[Interval]:
        """When ``domain`` was present in its zone, as intervals."""
        return self._domain_presence.intervals(Name(domain).text)

    def domain_ever_seen(self, domain: str) -> bool:
        """True if ``domain`` ever appeared in the data set."""
        return Name(domain).text in self._domain_recs

    # -- queries: glue --------------------------------------------------------

    def glue_present(self, host: str, day: int) -> bool:
        """True if ``host`` had glue on ``day``."""
        return self._glue.is_present(Name(host).text, day)

    def glue_intervals(self, host: str) -> list[Interval]:
        """Glue presence intervals for ``host``."""
        return self._glue.intervals(Name(host).text)

    # -- snapshot reconstruction ----------------------------------------------

    def snapshot_at(self, day: int, tld: str) -> ZoneSnapshot:
        """Reconstruct one TLD's snapshot for ``day`` from the intervals."""
        tld_text = Name(tld).text
        suffix = "." + tld_text
        delegations: dict[str, frozenset[str]] = {}
        for domain, records in self._domain_recs.items():
            if not domain.endswith(suffix):
                continue
            active = frozenset(r.ns for r in records if r.active_on(day))
            if active:
                delegations[domain] = active
        # The database tracks glue *presence*, not addresses (DZDB-style),
        # so reconstructed snapshots carry a documentation placeholder.
        glue = {
            host: frozenset({"192.0.2.0"})
            for host in self._glue.keys()
            if host.endswith(suffix) and self._glue.is_present(host, day)
        }
        return ZoneSnapshot(day=day, tld=tld_text, delegations=delegations, glue=glue)

    def __repr__(self) -> str:
        return (
            f"ZoneDatabase(tlds={sorted(self.covered_tlds)}, "
            f"domains={len(self._domain_recs)}, ns={len(self._ns_recs)}, "
            f"horizon={self.horizon})"
        )
