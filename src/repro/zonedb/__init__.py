"""A DZDB-style longitudinal zone database.

The paper's primary data set is CAIDA-DZDB: nine years of daily TLD zone
file snapshots reduced to first-seen/last-seen interval histories of
delegations and glue. :class:`~repro.zonedb.database.ZoneDatabase`
reproduces that view. It can be populated either from full daily
:class:`~repro.zonedb.snapshot.ZoneSnapshot` objects (diffed on ingest,
exactly as DZDB processes zone files) or through the change-level API the
simulated world drives directly.
"""

from repro.zonedb.database import (
    DelegationRecord,
    IngestError,
    IngestPolicy,
    IngestReport,
    ZoneDatabase,
)
from repro.zonedb.snapshot import ZoneSnapshot
from repro.zonedb.archive import read_archive, write_archive

__all__ = [
    "DelegationRecord",
    "IngestError",
    "IngestPolicy",
    "IngestReport",
    "ZoneDatabase",
    "ZoneSnapshot",
    "read_archive",
    "write_archive",
]
