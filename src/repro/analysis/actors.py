"""Table 4: bulk hijackers by controlling nameserver domain.

Who registered the sacrificial domains is usually hidden behind privacy
proxies, but the NS records the hijacker installs are public: grouping
hijacked sacrificial domains by the registered domain of their
controlling nameservers separates the bulk actors (the paper's
mpower.nl, protectdelegation.*, yandex.net, phonesear.ch, dnspanel.com).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.study import StudyAnalysis
from repro.dnscore.psl import PublicSuffixList, default_psl


@dataclass(frozen=True, slots=True)
class HijackerRow:
    """One row of Table 4."""

    controlling_domain: str
    nameserver_count: int
    domain_count: int


def hijacker_rows(
    study: StudyAnalysis,
    *,
    top: int | None = 5,
    psl: PublicSuffixList | None = None,
) -> list[HijackerRow]:
    """Group hijacked sacrificial NS and domains by controlling NS domain.

    For each hijacked group, the controlling nameservers are whatever the
    hijacker delegated the sacrificial domain to (observable in the
    sacrificial domain's TLD zone on the registration day).
    """
    psl = psl or default_psl()
    ns_by_actor: dict[str, set[str]] = {}
    domains_by_actor: dict[str, set[str]] = {}
    for group in study.groups.values():
        if not (group.hijackable and group.hijacked):
            continue
        first = group.first_hijack_day
        if first is None or first >= study.config.study_end:
            continue
        controlling = study.zonedb.nameservers_of(group.registered_domain, first)
        actors = set()
        for ns in controlling:
            registered = psl.registered_domain(ns)
            if registered is not None:
                actors.add(registered)
        if not actors:
            continue
        hijacked_domains: set[str] = set()
        for view in group.nameservers:
            for record in view.records:
                if any(
                    record.interval.overlaps(h) for h in group.hijack_intervals()
                ):
                    hijacked_domains.add(record.domain)
        for actor in sorted(actors):
            ns_by_actor.setdefault(actor, set()).update(
                view.name for view in group.nameservers
            )
            domains_by_actor.setdefault(actor, set()).update(hijacked_domains)
    rows = [
        HijackerRow(
            controlling_domain=actor,
            nameserver_count=len(ns_by_actor[actor]),
            domain_count=len(domains_by_actor.get(actor, ())),
        )
        for actor in ns_by_actor
    ]
    rows.sort(key=lambda row: -row.domain_count)
    if top is not None:
        rows = rows[:top]
    return rows
