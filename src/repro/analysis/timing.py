"""Figure 6: time-to-exploit CDFs.

For every hijacked sacrificial nameserver, the days from its creation to
the registration of its domain; and for every hijacked *domain*, the
same delay of the nameserver through which it was first hijacked. The
paper's findings: 50% of vulnerable domains are hijacked within ~5 days
and >70% within a month, while the nameserver CDF lags the domain CDF
(hijackers grab the domain-rich nameservers fastest).
"""

from __future__ import annotations

from bisect import bisect_right

from repro.analysis.study import StudyAnalysis


def cdf_fraction_at(samples: list[int], x: int) -> float:
    """Empirical CDF value at ``x`` (samples must be sorted)."""
    if not samples:
        return 0.0
    return bisect_right(samples, x) / len(samples)


def percentile(samples: list[int], q: float) -> int:
    """The q-quantile (0..1) of sorted integer samples."""
    if not samples:
        return 0
    index = min(len(samples) - 1, max(0, int(q * len(samples))))
    return samples[index]


def nameserver_delays(study: StudyAnalysis) -> list[int]:
    """Creation-to-registration delays for hijacked NS (sorted)."""
    delays = []
    for view in study.hijacked_nameservers():
        group = study.group_of(view)
        if group is None or group.first_hijack_day is None:
            continue
        delays.append(max(0, group.first_hijack_day - view.created_day))
    delays.sort()
    return delays


def domain_delays(study: StudyAnalysis) -> list[int]:
    """Per hijacked domain: the exploited nameserver's delay (sorted).

    Weighted by domain, this is the upper CDF of Figure 6: nameservers
    with many domains contribute their (typically short) delay once per
    domain.
    """
    delays = []
    for exposure in study.exposures.values():
        first = exposure.first_hijacked
        if first is None or first >= study.config.study_end:
            continue
        best: int | None = None
        for view, interval in exposure.delegations:
            group = study.group_of(view)
            if group is None or group.first_hijack_day is None:
                continue
            if not any(
                interval.overlaps(h) for h in group.hijack_intervals()
            ):
                continue
            delay = max(0, group.first_hijack_day - view.created_day)
            if best is None or delay < best:
                best = delay
        if best is not None:
            delays.append(best)
    delays.sort()
    return delays


def timing_summary(study: StudyAnalysis) -> dict[str, float]:
    """The figure's headline statistics."""
    ns = nameserver_delays(study)
    dom = domain_delays(study)
    return {
        "ns_within_7_days": cdf_fraction_at(ns, 7),
        "ns_within_30_days": cdf_fraction_at(ns, 30),
        "ns_median_days": float(percentile(ns, 0.5)),
        "domains_within_5_days": cdf_fraction_at(dom, 5),
        "domains_within_7_days": cdf_fraction_at(dom, 7),
        "domains_within_30_days": cdf_fraction_at(dom, 30),
        "domains_median_days": float(percentile(dom, 0.5)),
    }
