"""Figure 3: newly hijackable domains per month.

A domain becomes newly hijackable the first time its delegation starts
pointing at a hijackable sacrificial nameserver. The paper's series runs
April 2011 – September 2020 and trends downward.
"""

from __future__ import annotations

from repro import simtime
from repro.analysis.study import StudyAnalysis


def new_hijackable_per_month(study: StudyAnalysis) -> dict[str, int]:
    """Month label → number of domains first exposed that month."""
    start = study.config.study_start
    end = study.config.study_end
    series = {label: 0 for label in simtime.months_between(start, end - 1)}
    for exposure in study.exposures.values():
        day = exposure.first_exposed
        if start <= day < end:
            series[simtime.month_of(day)] += 1
    return series


def trend_slope(series: dict[str, int]) -> float:
    """Least-squares slope of a monthly series (domains/month²).

    Used to assert Figure 3's downward trend without eyeballing.
    """
    values = list(series.values())
    n = len(values)
    if n < 2:
        return 0.0
    mean_x = (n - 1) / 2
    mean_y = sum(values) / n
    cov = sum((i - mean_x) * (v - mean_y) for i, v in enumerate(values))
    var = sum((i - mean_x) ** 2 for i in range(n))
    return cov / var if var else 0.0


def halves_ratio(series: dict[str, int]) -> float:
    """Second-half total over first-half total (< 1 means declining)."""
    values = list(series.values())
    mid = len(values) // 2
    first = sum(values[:mid])
    second = sum(values[mid:])
    return second / first if first else float("inf")
