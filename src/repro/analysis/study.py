"""Shared analysis core: joins detection output with zone/WHOIS history.

Builds, once, everything the per-artifact analyses need:

* **nameserver views** — each sacrificial nameserver with its delegation
  records and affected domains;
* **groups** — sacrificial nameservers sharing a registered domain (the
  unit a hijacker registers), with their post-creation registration
  epochs from WHOIS (the hijacks);
* **domain exposures** — per affected domain, the intervals during which
  it delegated to hijackable sacrificial nameservers, and the subset of
  those intervals during which the nameserver domain was registered by a
  hijacker (i.e. the domain was actually hijacked).

Only observable data (pipeline result, zone database, WHOIS archive) is
consumed. The Namecheap accident is excluded the way the paper excludes
it: by the original nameserver domain the renames were matched to.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.detection.pipeline import PipelineResult, SacrificialNameserver
from repro.simtime import Interval, STUDY_END, merge_intervals, to_day, total_days
from repro.whois.archive import WhoisArchive, WhoisRecord
from repro.zonedb.database import DelegationRecord, ZoneDatabase


@dataclass(frozen=True)
class StudyConfig:
    """Analysis window and exclusions."""

    study_start: int = 0
    study_end: int = field(default_factory=lambda: to_day(STUDY_END))
    #: Renames matched to these original domains are excluded (§4: the
    #: accidental Namecheap deletion is not part of the analyses).
    excluded_original_domains: frozenset[str] = frozenset({"registrar-servers.com"})


@dataclass
class NameserverView:
    """One sacrificial nameserver joined with its delegation history."""

    info: SacrificialNameserver
    records: list[DelegationRecord]

    @property
    def name(self) -> str:
        """The sacrificial nameserver name."""
        return self.info.name

    @property
    def created_day(self) -> int:
        """The day the rename made it appear in the zone."""
        return self.info.created_day

    def domains(self) -> set[str]:
        """Distinct domains that ever delegated to this nameserver."""
        return {record.domain for record in self.records}

    def domains_on(self, day: int) -> set[str]:
        """Domains delegating to this nameserver on ``day``."""
        return {r.domain for r in self.records if r.active_on(day)}

    def delegated_days(self, horizon: int) -> int:
        """Total domain-days of delegation, clipped at ``horizon``.

        This is the paper's "hijack value" (§5.3): one domain delegated
        30 days plus another delegated 50 days gives 80.
        """
        return sum(
            r.interval.closed(horizon).duration()
            for r in self.records
            if r.start < horizon
        )


@dataclass
class GroupView:
    """Sacrificial nameservers sharing one registered domain."""

    registered_domain: str
    nameservers: list[NameserverView] = field(default_factory=list)
    #: Registration epochs starting on/after the group's creation — i.e.
    #: hijack registrations of the sacrificial domain.
    hijack_epochs: list[WhoisRecord] = field(default_factory=list)

    @property
    def created_day(self) -> int:
        """Earliest creation across the group's nameservers."""
        return min(ns.created_day for ns in self.nameservers)

    @property
    def hijackable(self) -> bool:
        """True if the group is registerable by third parties."""
        return any(
            ns.info.hijackable and not ns.info.collision for ns in self.nameservers
        )

    @property
    def hijacked(self) -> bool:
        """True if anyone registered the sacrificial domain."""
        return bool(self.hijack_epochs)

    @property
    def first_hijack_day(self) -> int | None:
        """The first registration day, if hijacked."""
        if not self.hijack_epochs:
            return None
        return min(epoch.created for epoch in self.hijack_epochs)

    def hijack_intervals(self) -> list[Interval]:
        """Days the sacrificial domain was registered by a hijacker."""
        return merge_intervals(
            [Interval(e.created, e.deleted) for e in self.hijack_epochs]
        )

    def registered_on(self, day: int) -> bool:
        """Was the sacrificial domain under hijacker control on ``day``?"""
        return any(iv.contains(day) for iv in self.hijack_intervals())


@dataclass
class DomainExposure:
    """One affected domain's exposure and hijack history."""

    domain: str
    #: (nameserver view, delegation interval) pairs to hijackable NS.
    delegations: list[tuple[NameserverView, Interval]] = field(default_factory=list)
    exposure_intervals: list[Interval] = field(default_factory=list)
    hijack_intervals: list[Interval] = field(default_factory=list)

    @property
    def first_exposed(self) -> int:
        """First day the domain delegated to a hijackable sacrificial NS."""
        return min(iv.start for iv in self.exposure_intervals)

    @property
    def hijacked(self) -> bool:
        """True if any exposure overlapped a hijack registration."""
        return bool(self.hijack_intervals)

    @property
    def first_hijacked(self) -> int | None:
        """First day the domain was actually hijacked."""
        if not self.hijack_intervals:
            return None
        return min(iv.start for iv in self.hijack_intervals)

    def exposure_days(self, horizon: int) -> int:
        """Total days at risk, clipped at ``horizon``."""
        return total_days(self.exposure_intervals, horizon)

    def hijacked_days(self, horizon: int) -> int:
        """Total days actually hijacked, clipped at ``horizon``."""
        return total_days(self.hijack_intervals, horizon)


class StudyAnalysis:
    """The shared join used by every table/figure module."""

    def __init__(
        self,
        pipeline_result: PipelineResult,
        zonedb: ZoneDatabase,
        whois: WhoisArchive,
        config: StudyConfig | None = None,
    ) -> None:
        self.zonedb = zonedb
        self.whois = whois
        self.config = config or StudyConfig()
        self.excluded: list[SacrificialNameserver] = []
        self.nameservers: dict[str, NameserverView] = {}
        self.groups: dict[str, GroupView] = {}
        self._build_views(pipeline_result)
        self.exposures: dict[str, DomainExposure] = {}
        self._build_exposures()

    # -- construction -----------------------------------------------------

    def _is_excluded(self, info: SacrificialNameserver) -> bool:
        return (
            info.original_domain is not None
            and info.original_domain in self.config.excluded_original_domains
        )

    def _build_views(self, pipeline_result: PipelineResult) -> None:
        for info in pipeline_result.sacrificial:
            if self._is_excluded(info):
                self.excluded.append(info)
                continue
            records = self.zonedb.ns_records(info.name)
            view = NameserverView(info=info, records=records)
            self.nameservers[info.name] = view
            registered = info.registered_domain
            if registered is None:
                continue
            group = self.groups.get(registered)
            if group is None:
                group = GroupView(registered_domain=registered)
                self.groups[registered] = group
            group.nameservers.append(view)
        for group in self.groups.values():
            creation = group.created_day
            for epoch in self.whois.history(group.registered_domain):
                if epoch.created >= creation:
                    group.hijack_epochs.append(epoch)

    def _build_exposures(self) -> None:
        for group in self.groups.values():
            if not group.hijackable:
                continue
            hijack_intervals = group.hijack_intervals()
            for view in group.nameservers:
                if not view.info.hijackable or view.info.collision:
                    continue
                for record in view.records:
                    exposure = self.exposures.get(record.domain)
                    if exposure is None:
                        exposure = DomainExposure(domain=record.domain)
                        self.exposures[record.domain] = exposure
                    interval = record.interval
                    exposure.delegations.append((view, interval))
                    exposure.exposure_intervals.append(interval)
                    for hijack in hijack_intervals:
                        overlap = interval.intersect(hijack)
                        if overlap is not None:
                            exposure.hijack_intervals.append(overlap)
        for exposure in self.exposures.values():
            exposure.exposure_intervals = merge_intervals(exposure.exposure_intervals)
            exposure.hijack_intervals = merge_intervals(exposure.hijack_intervals)

    # -- basic selections ---------------------------------------------------

    def study_nameservers(self) -> list[NameserverView]:
        """Sacrificial NS created inside the study window."""
        end = self.config.study_end
        return [
            view for view in self.nameservers.values()
            if self.config.study_start <= view.created_day < end
        ]

    def hijackable_nameservers(self) -> list[NameserverView]:
        """Hijackable (random-idiom, non-collision) NS in the window."""
        return [
            view for view in self.study_nameservers()
            if view.info.hijackable and not view.info.collision
        ]

    def hijacked_nameservers(self) -> list[NameserverView]:
        """The hijackable NS whose registered domain was registered."""
        result = []
        for view in self.hijackable_nameservers():
            registered = view.info.registered_domain
            group = self.groups.get(registered) if registered else None
            if group is None or not group.hijacked:
                continue
            first = group.first_hijack_day
            if first is not None and first < self.config.study_end:
                result.append(view)
        return result

    def group_of(self, view: NameserverView) -> GroupView | None:
        """The group a nameserver view belongs to."""
        registered = view.info.registered_domain
        return self.groups.get(registered) if registered else None

    def hijackable_domains(self) -> set[str]:
        """Domains ever exposed within the study window."""
        return {
            domain for domain, exposure in self.exposures.items()
            if exposure.first_exposed < self.config.study_end
        }

    def hijacked_domains(self) -> set[str]:
        """Exposed domains that were hijacked within the study window."""
        return {
            domain for domain, exposure in self.exposures.items()
            if exposure.hijacked
            and (exposure.first_hijacked or 0) < self.config.study_end
        }
