"""Figure 5: hijack value versus number of delegated domains.

Each point is one hijackable sacrificial nameserver: x = its hijack
value (total domain-days of delegation, log scale in the paper),
y = number of domains delegated (capped at 1,000 in the paper's plot),
colored by whether it was hijacked. The paper's finding: hijacked points
concentrate in the high-value, high-delegation region.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.study import StudyAnalysis

DOMAIN_CAP = 1000


@dataclass(frozen=True, slots=True)
class ValuePoint:
    """One scatter point."""

    nameserver: str
    hijack_value_days: int
    domain_count: int
    hijacked: bool

    def capped_domains(self, cap: int = DOMAIN_CAP) -> int:
        """The paper caps the y axis at 1,000 delegations."""
        return min(self.domain_count, cap)


def value_points(study: StudyAnalysis) -> list[ValuePoint]:
    """All hijackable nameservers as scatter points."""
    horizon = study.config.study_end
    hijacked_names = {view.name for view in study.hijacked_nameservers()}
    points = []
    for view in study.hijackable_nameservers():
        points.append(
            ValuePoint(
                nameserver=view.name,
                hijack_value_days=view.delegated_days(horizon),
                domain_count=len(view.domains()),
                hijacked=view.name in hijacked_names,
            )
        )
    points.sort(key=lambda p: (-p.hijack_value_days, p.nameserver))
    return points


def selectivity_summary(points: list[ValuePoint]) -> dict[str, float]:
    """Quantifies "hijackers take the most valuable nameservers".

    Returns the hijacked fraction within the top decile of hijack value
    versus the hijacked fraction overall, plus mean values per class.
    """
    if not points:
        return {
            "overall_hijacked_fraction": 0.0,
            "top_decile_hijacked_fraction": 0.0,
            "mean_value_hijacked": 0.0,
            "mean_value_not_hijacked": 0.0,
        }
    overall = sum(p.hijacked for p in points) / len(points)
    decile = max(1, len(points) // 10)
    top = points[:decile]  # already sorted by value desc
    top_fraction = sum(p.hijacked for p in top) / len(top)
    hijacked = [p.hijack_value_days for p in points if p.hijacked]
    not_hijacked = [p.hijack_value_days for p in points if not p.hijacked]
    return {
        "overall_hijacked_fraction": overall,
        "top_decile_hijacked_fraction": top_fraction,
        "mean_value_hijacked": sum(hijacked) / len(hijacked) if hijacked else 0.0,
        "mean_value_not_hijacked": (
            sum(not_hijacked) / len(not_hijacked) if not_hijacked else 0.0
        ),
    }
