"""Dependency-concentration analysis (the §7.3 sink-domain warning).

The paper warns that sink domains *concentrate* dangling delegations:
"if one such domain is not renewed it could allow an attacker to control
tens of thousands of domains with a single registration" — and the
dummyns.com seizure proved it. This module quantifies that concentration
over the whole delegation graph: for every registered domain that
nameservers live under, how many *other* domains' resolution depends on
it at a given day, and how unequally that dependency is distributed.

The delegation graph is built with :mod:`networkx` so the analysis can
also answer structural questions (connected blast-radius components).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.dnscore.names import Name
from repro.dnscore.psl import PublicSuffixList, default_psl
from repro.zonedb.database import ZoneDatabase


@dataclass(frozen=True, slots=True)
class DependencyRow:
    """One provider-side registered domain and its dependents."""

    provider_domain: str
    dependent_domains: int
    nameserver_names: int


@dataclass(frozen=True)
class ConcentrationReport:
    """Concentration of resolution dependency at one reference day."""

    day: int
    rows: tuple[DependencyRow, ...]
    gini: float
    top10_share: float
    largest_component: int

    def top(self, count: int = 10) -> list[DependencyRow]:
        """The most-depended-upon provider domains."""
        return list(self.rows[:count])


def dependency_graph(
    zonedb: ZoneDatabase, *, day: int, psl: PublicSuffixList | None = None
) -> nx.DiGraph:
    """Bipartite-ish digraph: client domain → provider registered domain.

    Self-hosting edges (a domain depending on its own namespace) are
    excluded — they concentrate nothing.
    """
    psl = psl or default_psl()
    graph = nx.DiGraph()
    for domain in zonedb.all_domains():
        ns_set = zonedb.nameservers_of(domain, day)
        if not ns_set:
            continue
        for ns in ns_set:
            provider = psl.registered_domain(ns)
            if provider is None or provider == Name(domain).text:
                continue
            if not graph.has_edge(domain, provider):
                graph.add_edge(domain, provider, nameservers=set())
            graph.edges[domain, provider]["nameservers"].add(ns)
    return graph


def _gini(values: list[int]) -> float:
    """Gini coefficient of a non-negative sample (0 = equal, →1 = concentrated)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    n = len(ordered)
    total = sum(ordered)
    if total == 0:
        return 0.0
    cumulative = 0.0
    for index, value in enumerate(ordered, start=1):
        cumulative += index * value
    return (2.0 * cumulative) / (n * total) - (n + 1.0) / n


def concentration_report(
    zonedb: ZoneDatabase, *, day: int, psl: PublicSuffixList | None = None
) -> ConcentrationReport:
    """Measure dependency concentration across provider domains."""
    graph = dependency_graph(zonedb, day=day, psl=psl)
    providers: dict[str, tuple[set[str], set[str]]] = {}
    for client, provider, data in graph.edges(data=True):
        dependents, names = providers.setdefault(provider, (set(), set()))
        dependents.add(client)
        names.update(data["nameservers"])
    rows = sorted(
        (
            DependencyRow(
                provider_domain=provider,
                dependent_domains=len(dependents),
                nameserver_names=len(names),
            )
            for provider, (dependents, names) in providers.items()
        ),
        key=lambda row: -row.dependent_domains,
    )
    counts = [row.dependent_domains for row in rows]
    total = sum(counts)
    top10 = sum(counts[:10]) / total if total else 0.0
    undirected = graph.to_undirected()
    largest = max(
        (len(component) for component in nx.connected_components(undirected)),
        default=0,
    )
    return ConcentrationReport(
        day=day,
        rows=tuple(rows),
        gini=_gini(counts),
        top10_share=top10,
        largest_component=largest,
    )


def single_registration_blast_radius(
    zonedb: ZoneDatabase, provider_domain: str, *, day: int
) -> int:
    """How many domains one registration of ``provider_domain`` would control.

    This is the §7.3 failure mode: every domain whose delegation on
    ``day`` includes a nameserver under ``provider_domain``.
    """
    provider = Name(provider_domain).text
    victims: set[str] = set()
    for ns in zonedb.all_nameservers():
        if not Name(ns).is_strict_subdomain_of(provider):
            continue
        victims |= zonedb.domains_of_ns(ns, day)
    return len(victims)
