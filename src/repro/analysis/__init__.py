"""Analyses reproducing the paper's evaluation (§4–§7).

:mod:`repro.analysis.study` prepares the shared view (sacrificial
groups, exposure intervals, hijack epochs); the artifact modules then
derive each table and figure:

========  =============================================  ====================
Artifact  Content                                        Module
========  =============================================  ====================
Table 1   non-hijackable (sink) idioms per registrar     tables
Table 2   hijackable idioms per registrar                tables
Table 3   hijackable vs hijacked totals                  tables
Table 4   top hijackers by controlling nameserver        actors
Table 5   remediation deltas vs organic baseline         remediation
Table 6   post-remediation idiom adoption                remediation
Fig. 3    new hijackable domains per month               exposure
Fig. 4    new hijacked domains per month                 hijacks
Fig. 5    hijack value vs number of delegated domains    desirability
Fig. 6    time-to-exploit CDFs                           timing
Fig. 7    hijackable/hijacked duration CDFs              duration
========  =============================================  ====================
"""

from repro.analysis.study import (
    GroupView,
    NameserverView,
    StudyAnalysis,
    StudyConfig,
)

__all__ = ["GroupView", "NameserverView", "StudyAnalysis", "StudyConfig"]
