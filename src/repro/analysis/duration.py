"""Figure 7: durations hijackable versus hijacked.

Three CDFs over affected domains:

* *hijackable, never hijacked* — total days at risk (the paper's green);
* *hijackable, hijacked at least once* — total days at risk (red);
* *hijacked* — total days actually under hijacker control (blue), with
  steps at one and two years from hijackers not renewing registrations.

The paper's findings: hijacked domains skew toward longer at-risk
durations (selection), and the hijacked-days CDF shows the 1y/2y cliffs.
"""

from __future__ import annotations

from repro.analysis.study import StudyAnalysis
from repro.analysis.timing import cdf_fraction_at
from repro.simtime import DAYS_PER_YEAR


def hijackable_durations(study: StudyAnalysis) -> tuple[list[int], list[int]]:
    """(never-hijacked, hijacked) at-risk day totals, each sorted."""
    never: list[int] = []
    hijacked: list[int] = []
    horizon = study.config.study_end
    for exposure in study.exposures.values():
        if exposure.first_exposed >= horizon:
            continue
        days = exposure.exposure_days(horizon)
        if days <= 0:
            continue
        if exposure.hijacked:
            hijacked.append(days)
        else:
            never.append(days)
    never.sort()
    hijacked.sort()
    return never, hijacked


def hijacked_durations(study: StudyAnalysis) -> list[int]:
    """Days actually hijacked, per hijacked domain (sorted)."""
    horizon = study.config.study_end
    durations = [
        exposure.hijacked_days(horizon)
        for exposure in study.exposures.values()
        if exposure.hijacked and (exposure.first_hijacked or horizon) < horizon
    ]
    durations = [d for d in durations if d > 0]
    durations.sort()
    return durations


def duration_summary(study: StudyAnalysis) -> dict[str, float]:
    """The figure's headline statistics.

    ``*_week_fraction``: fraction at risk for at most 7 days (paper: 15%
    of never-hijacked, much less for hijacked). ``year_step``/
    ``two_year_step``: mass of hijacked durations near the renewal
    anniversaries (paper: ~10% hijacked for one year, ~5% for two).
    """
    never, hijacked = hijackable_durations(study)
    durations = hijacked_durations(study)
    year = DAYS_PER_YEAR
    near_one_year = sum(1 for d in durations if 0.9 * year <= d <= 1.15 * year)
    near_two_years = sum(1 for d in durations if 1.9 * year <= d <= 2.25 * year)
    total = len(durations) or 1
    return {
        "never_week_fraction": cdf_fraction_at(never, 7),
        "hijacked_week_fraction": cdf_fraction_at(hijacked, 7),
        "never_month_fraction": cdf_fraction_at(never, 30),
        "hijacked_month_fraction": cdf_fraction_at(hijacked, 30),
        "one_year_step_fraction": near_one_year / total,
        "two_year_step_fraction": near_two_years / total,
    }
