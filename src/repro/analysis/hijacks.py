"""Figure 4: newly hijacked domains per month.

A domain is newly hijacked the first time one of its delegated
sacrificial nameservers comes under hijacker control. Unlike Figure 3's
downward trend, the paper's series is bursty across the whole window.
"""

from __future__ import annotations

from repro import simtime
from repro.analysis.study import StudyAnalysis


def new_hijacked_per_month(study: StudyAnalysis) -> dict[str, int]:
    """Month label → number of domains first hijacked that month."""
    start = study.config.study_start
    end = study.config.study_end
    series = {label: 0 for label in simtime.months_between(start, end - 1)}
    for exposure in study.exposures.values():
        day = exposure.first_hijacked
        if day is not None and start <= day < end:
            series[simtime.month_of(day)] += 1
    return series


def burstiness(series: dict[str, int]) -> float:
    """Coefficient of variation of the monthly counts.

    The paper describes hijacking as bursty; a CV well above what the
    (declining but steady) exposure series shows captures that.
    """
    values = list(series.values())
    n = len(values)
    if not n:
        return 0.0
    mean = sum(values) / n
    if mean == 0:
        return 0.0
    variance = sum((v - mean) ** 2 for v in values) / n
    return variance ** 0.5 / mean


def active_months_fraction(series: dict[str, int]) -> float:
    """Fraction of months with at least one new hijack."""
    values = list(series.values())
    if not values:
        return 0.0
    return sum(1 for v in values if v > 0) / len(values)
