"""Tables 1–3: renaming idioms and the hijack summary.

Table 1 groups sink-domain (non-hijackable) idioms by registrar, Table 2
the hijackable random-name idioms, Table 3 totals hijackable vs hijacked
nameservers and domains. Row keys are (idiom, registrar) exactly as the
paper presents them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.study import StudyAnalysis
from repro.detection.idioms import IdiomClass, known_classifiers

#: Registrar identifier → the display name the paper uses.
REGISTRAR_DISPLAY: dict[str, str] = {
    "godaddy": "GoDaddy",
    "enom": "Enom",
    "internetbs": "Internet.bs",
    "netsol": "Network Solutions",
    "tldrs": "TLD Registrar Solutions",
    "gmo": "GMO Internet",
    "xinnet": "Xin Net Technology Corp.",
    "srsplus": "SRSPlus",
    "domainpeople": "DomainPeople",
    "fabulous": "Fabulous.com",
    "registercom": "Register.com",
    "markmonitor": "MarkMonitor",
    "namecheap": "Namecheap",
    "bulkreg": "Bulk Registration Inc.",
}


def display_registrar(ident: str | None) -> str:
    """Human-readable registrar name."""
    if ident is None:
        return "(unattributed)"
    return REGISTRAR_DISPLAY.get(ident, ident)


@dataclass(frozen=True, slots=True)
class IdiomRow:
    """One row of Table 1 or Table 2."""

    idiom: str
    registrar: str
    nameservers: int
    affected_domains: int


@dataclass(frozen=True, slots=True)
class HijackSummary:
    """Table 3."""

    hijackable_ns: int
    hijacked_ns: int
    hijackable_domains: int
    hijacked_domains: int

    @property
    def ns_fraction(self) -> float:
        """Fraction of hijackable nameservers that were hijacked."""
        return self.hijacked_ns / self.hijackable_ns if self.hijackable_ns else 0.0

    @property
    def domain_fraction(self) -> float:
        """Fraction of hijackable domains that were hijacked."""
        if not self.hijackable_domains:
            return 0.0
        return self.hijacked_domains / self.hijackable_domains


def _idiom_rows(study: StudyAnalysis, *, hijackable: bool) -> list[IdiomRow]:
    post_remediation_ids = {
        c.idiom_id for c in known_classifiers() if c.post_remediation
    }
    buckets: dict[tuple[str, str], tuple[set[str], set[str]]] = {}
    for view in study.study_nameservers():
        info = view.info
        if info.idiom_id in post_remediation_ids:
            continue  # Table 6 territory
        if info.hijackable != hijackable:
            continue
        key = (info.idiom_id, display_registrar(info.registrar))
        ns_set, domain_set = buckets.setdefault(key, (set(), set()))
        ns_set.add(info.name)
        domain_set.update(view.domains())
    rows = [
        IdiomRow(
            idiom=idiom, registrar=registrar,
            nameservers=len(ns_set), affected_domains=len(domain_set),
        )
        for (idiom, registrar), (ns_set, domain_set) in buckets.items()
    ]
    rows.sort(key=lambda row: -row.nameservers)
    return rows


def _totals(study: StudyAnalysis, *, hijackable: bool) -> tuple[int, int]:
    ns_total = 0
    domains: set[str] = set()
    post_remediation_ids = {
        c.idiom_id for c in known_classifiers() if c.post_remediation
    }
    for view in study.study_nameservers():
        if view.info.idiom_id in post_remediation_ids:
            continue
        if view.info.hijackable != hijackable:
            continue
        ns_total += 1
        domains |= view.domains()
    return ns_total, len(domains)


def table1(study: StudyAnalysis) -> tuple[list[IdiomRow], IdiomRow]:
    """Non-hijackable (sink-domain) idioms; returns (rows, total row)."""
    rows = _idiom_rows(study, hijackable=False)
    ns_total, domain_total = _totals(study, hijackable=False)
    total = IdiomRow("Total", "", ns_total, domain_total)
    return rows, total


def table2(study: StudyAnalysis) -> tuple[list[IdiomRow], IdiomRow]:
    """Hijackable (random-name) idioms; returns (rows, total row)."""
    rows = _idiom_rows(study, hijackable=True)
    ns_total, domain_total = _totals(study, hijackable=True)
    total = IdiomRow("Total", "", ns_total, domain_total)
    return rows, total


def table3(study: StudyAnalysis) -> HijackSummary:
    """Hijackable vs hijacked nameservers and domains (study window)."""
    return HijackSummary(
        hijackable_ns=len(study.hijackable_nameservers()),
        hijacked_ns=len(study.hijacked_nameservers()),
        hijackable_domains=len(study.hijackable_domains()),
        hijacked_domains=len(study.hijacked_domains()),
    )


def collision_count(study: StudyAnalysis, idiom_id: str = "PLEASEDROPTHISHOST") -> int:
    """Sacrificial NS that landed on already-registered domains (§4).

    The paper reports 3,704 such accidents for PLEASEDROPTHISHOST.
    """
    return sum(
        1 for view in study.nameservers.values()
        if view.info.idiom_id == idiom_id and view.info.collision
    )


def partial_exposure_summary(study: StudyAnalysis, day: int) -> tuple[int, int]:
    """§5.6: currently-hijackable domains with working alternate NS.

    Returns (partially hijackable count, of which using a hijacked NS).
    ``day`` is the "currently" reference day.
    """
    partial = 0
    partial_hijacked = 0
    for domain, exposure in study.exposures.items():
        active_views = [
            view for view, interval in exposure.delegations if interval.contains(day)
        ]
        if not active_views:
            continue
        all_ns = study.zonedb.nameservers_of(domain, day)
        sacrificial_now = {view.name for view in active_views}
        alternates = all_ns - sacrificial_now
        if not alternates:
            continue
        # At least one alternate is a working (non-sacrificial) server.
        if not any(alt in study.nameservers for alt in alternates):
            partial += 1
            if any(
                (group := study.group_of(view)) is not None
                and group.registered_on(day)
                for view in active_views
            ):
                partial_hijacked += 1
    return partial, partial_hijacked
