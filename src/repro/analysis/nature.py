"""§5.6: the nature of hijacked and hijackable domains.

Separates *fully* exposed domains (every nameserver sacrificial — the
domain lost all name service at the rename and is likely moribund) from
*partially* exposed ones (a working alternate nameserver remains, so the
owner probably has no idea they are hijackable), and surfaces the
sensitive-category examples the paper highlights: domains whose names
carry authority (brand-protection registrations, restricted-TLD names).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.study import StudyAnalysis
from repro.dnscore.names import Name

#: TLDs whose names carry institutional authority even without traffic.
AUTHORITY_TLDS = frozenset({"edu", "gov"})


@dataclass(frozen=True, slots=True)
class ExposureNature:
    """The §5.6 breakdown at one reference day."""

    day: int
    fully_exposed: int
    partially_exposed: int
    partially_exposed_hijacked: int
    authority_tld_exposed: int
    brand_registrar_exposed: int

    @property
    def total_exposed(self) -> int:
        """All currently hijackable domains."""
        return self.fully_exposed + self.partially_exposed


def classify_exposure(
    study: StudyAnalysis,
    day: int,
    *,
    brand_registrars: frozenset[str] = frozenset({"markmonitor"}),
) -> ExposureNature:
    """Classify every currently-exposed domain (full vs partial, §5.6).

    A domain is *partially* exposed when, alongside at least one
    sacrificial nameserver, its delegation still lists a nameserver that
    is not sacrificial — redundancy keeps the domain resolving, which is
    exactly why its owner is unlikely to notice the risk.
    """
    fully = 0
    partial = 0
    partial_hijacked = 0
    authority = 0
    brand = 0
    for domain, exposure in study.exposures.items():
        active_views = [
            view for view, interval in exposure.delegations
            if interval.contains(day)
        ]
        if not active_views:
            continue
        all_ns = study.zonedb.nameservers_of(domain, day)
        sacrificial_now = {view.name for view in active_views}
        alternates = {
            ns for ns in all_ns - sacrificial_now
            if ns not in study.nameservers
        }
        if alternates:
            partial += 1
            if any(
                (group := study.group_of(view)) is not None
                and group.registered_on(day)
                for view in active_views
            ):
                partial_hijacked += 1
        else:
            fully += 1
        if Name(domain).tld in AUTHORITY_TLDS:
            authority += 1
        registrar = study.whois.registrar_at(domain, day)
        if registrar in brand_registrars:
            brand += 1
    return ExposureNature(
        day=day,
        fully_exposed=fully,
        partially_exposed=partial,
        partially_exposed_hijacked=partial_hijacked,
        authority_tld_exposed=authority,
        brand_registrar_exposed=brand,
    )


def nature_rows(nature: ExposureNature) -> list[tuple[str, int]]:
    """Render-ready rows for the §5.6 statistics."""
    return [
        ("currently hijackable domains", nature.total_exposed),
        ("fully exposed (no working nameserver left)", nature.fully_exposed),
        ("partially exposed (working alternate NS)", nature.partially_exposed),
        ("partially exposed AND hijacked", nature.partially_exposed_hijacked),
        ("in authority TLDs (.edu/.gov)", nature.authority_tld_exposed),
        ("registered via brand-protection registrar", nature.brand_registrar_exposed),
    ]
