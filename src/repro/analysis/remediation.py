"""Tables 5 and 6: remediation outcomes (§7).

Table 5 compares the vulnerable/hijacked population at the notification
date with the population five months later, against the "organic" change
over the equivalent window one year earlier. Table 6 counts sacrificial
nameservers created under the post-remediation idioms and the domains
they protected.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

from repro import simtime
from repro.analysis.study import StudyAnalysis
from repro.analysis.tables import display_registrar
from repro.detection.idioms import known_classifiers


@dataclass(frozen=True, slots=True)
class PopulationSnapshot:
    """Vulnerable/hijacked counts on one day (one row of Table 5)."""

    day: int
    vulnerable_ns: int
    hijacked_ns: int
    vulnerable_domains: int
    hijacked_domains: int

    @property
    def label(self) -> str:
        """Month-year label like "Sep 2020"."""
        return simtime.to_date(self.day).strftime("%b %Y")


@dataclass(frozen=True, slots=True)
class RemediationDelta:
    """Table 5 plus the organic baseline comparison."""

    before: PopulationSnapshot
    after: PopulationSnapshot
    baseline_before: PopulationSnapshot
    baseline_after: PopulationSnapshot

    @property
    def ns_delta(self) -> int:
        """Change in vulnerable nameservers over the remediation window."""
        return self.after.vulnerable_ns - self.before.vulnerable_ns

    @property
    def domain_delta(self) -> int:
        """Change in vulnerable domains over the remediation window."""
        return self.after.vulnerable_domains - self.before.vulnerable_domains

    @property
    def baseline_ns_delta(self) -> int:
        """Organic change in vulnerable NS, one year earlier."""
        return self.baseline_after.vulnerable_ns - self.baseline_before.vulnerable_ns

    @property
    def baseline_domain_delta(self) -> int:
        """Organic change in vulnerable domains, one year earlier."""
        return (
            self.baseline_after.vulnerable_domains
            - self.baseline_before.vulnerable_domains
        )


def population_snapshot(study: StudyAnalysis, day: int) -> PopulationSnapshot:
    """Count the vulnerable and hijacked population on ``day``.

    A sacrificial nameserver is *vulnerable* on a day if it is hijackable
    and at least one domain still delegates to it; it is *hijacked* if
    additionally its domain is under hijacker registration that day. The
    same day-scoped logic applies to domains. (A nameserver "disappears"
    when it loses all delegated domains — footnote 13.)
    """
    vulnerable_ns = 0
    hijacked_ns = 0
    vulnerable_domains: set[str] = set()
    hijacked_domains: set[str] = set()
    for group in study.groups.values():
        if not group.hijackable:
            continue
        registered_now = group.registered_on(day)
        for view in group.nameservers:
            if not view.info.hijackable or view.info.collision:
                continue
            domains_now = view.domains_on(day)
            if not domains_now:
                continue
            vulnerable_ns += 1
            vulnerable_domains |= domains_now
            if registered_now:
                hijacked_ns += 1
                hijacked_domains |= domains_now
    return PopulationSnapshot(
        day=day,
        vulnerable_ns=vulnerable_ns,
        hijacked_ns=hijacked_ns,
        vulnerable_domains=len(vulnerable_domains),
        hijacked_domains=len(hijacked_domains),
    )


def table5(
    study: StudyAnalysis,
    *,
    notification_date: _dt.date = simtime.NOTIFICATION_DATE,
    end_date: _dt.date = simtime.REMEDIATION_END,
) -> RemediationDelta:
    """The remediation comparison with its one-year-earlier baseline."""
    before_day = simtime.to_day(notification_date)
    after_day = simtime.to_day(end_date)
    year = simtime.DAYS_PER_YEAR
    return RemediationDelta(
        before=population_snapshot(study, before_day),
        after=population_snapshot(study, after_day),
        baseline_before=population_snapshot(study, before_day - year),
        baseline_after=population_snapshot(study, after_day - year),
    )


@dataclass(frozen=True, slots=True)
class RemediationAttribution:
    """Who fixed the nameservers that left the vulnerable population.

    Mirrors the paper's §7.1 reasoning: a vulnerable nameserver that
    disappeared during the remediation window is attributed to a
    registrar *re-rename* when its delegated domains moved onto names of
    that registrar's post-remediation idiom; everything else is organic
    (expiry, ordinary delegation changes).
    """

    window_start: int
    window_end: int
    rerename_ns_by_registrar: dict[str, int]
    organic_ns: int

    @property
    def remediated_ns(self) -> int:
        """Vulnerable NS that disappeared during the window."""
        return sum(self.rerename_ns_by_registrar.values()) + self.organic_ns

    def rerename_fraction(self) -> float:
        """Share of disappearances driven by registrar re-renames."""
        if not self.remediated_ns:
            return 0.0
        return sum(self.rerename_ns_by_registrar.values()) / self.remediated_ns


def remediation_attribution(
    study: StudyAnalysis,
    *,
    notification_date: _dt.date = simtime.NOTIFICATION_DATE,
    end_date: _dt.date = simtime.REMEDIATION_END,
) -> RemediationAttribution:
    """Attribute the Table 5 nameserver improvement (§7.1).

    For every hijackable nameserver vulnerable at the notification but
    not at the window end, inspect where its then-delegated domains
    moved: delegations now pointing at a post-remediation idiom name are
    registrar re-renames (attributed via the idiom's confirmed
    registrar); the rest is organic churn.
    """
    start_day = simtime.to_day(notification_date)
    end_day = simtime.to_day(end_date)
    post = {
        classifier.idiom_id: classifier
        for classifier in known_classifiers()
        if classifier.post_remediation
    }
    by_registrar: dict[str, int] = {}
    organic = 0
    for group in study.groups.values():
        if not group.hijackable:
            continue
        for view in group.nameservers:
            if not view.info.hijackable or view.info.collision:
                continue
            before = view.domains_on(start_day)
            if not before or view.domains_on(end_day):
                continue  # not vulnerable then, or still vulnerable now
            # Inspect each departing delegation at the day it left: if the
            # domain's nameservers at that moment include a
            # post-remediation idiom name, the departure was a re-rename.
            rerenamed_to: str | None = None
            for record in view.records:
                if record.domain not in before:
                    continue
                if record.end is None or not start_day < record.end <= end_day:
                    continue
                for ns_then in study.zonedb.nameservers_of(record.domain, record.end):
                    for classifier in post.values():
                        if classifier.matches_name(ns_then):
                            rerenamed_to = classifier.registrar_hint
                            break
                    if rerenamed_to:
                        break
                if rerenamed_to:
                    break
            if rerenamed_to:
                by_registrar[rerenamed_to] = by_registrar.get(rerenamed_to, 0) + 1
            else:
                organic += 1
    return RemediationAttribution(
        window_start=start_day,
        window_end=end_day,
        rerename_ns_by_registrar=by_registrar,
        organic_ns=organic,
    )


@dataclass(frozen=True, slots=True)
class ProtectedRow:
    """One row of Table 6."""

    registrar: str
    idiom: str
    nameservers: int
    domains: int


def table6(study: StudyAnalysis) -> tuple[list[ProtectedRow], ProtectedRow]:
    """Post-remediation idiom adoption; returns (rows, total row).

    Counts every sacrificial nameserver created under a Table 6 idiom
    (including the re-renames registrars applied to previously hijackable
    names) and the domains delegated to them.
    """
    post = {c.idiom_id: c for c in known_classifiers() if c.post_remediation}
    buckets: dict[tuple[str, str], tuple[set[str], set[str]]] = {}
    for view in study.nameservers.values():
        classifier = post.get(view.info.idiom_id)
        if classifier is None:
            continue
        key = (display_registrar(view.info.registrar), view.info.idiom_id)
        ns_set, domain_set = buckets.setdefault(key, (set(), set()))
        ns_set.add(view.name)
        domain_set.update(view.domains())
    rows = [
        ProtectedRow(
            registrar=registrar, idiom=idiom,
            nameservers=len(ns_set), domains=len(domain_set),
        )
        for (registrar, idiom), (ns_set, domain_set) in buckets.items()
    ]
    rows.sort(key=lambda row: -row.nameservers)
    total_ns = sum(row.nameservers for row in rows)
    total_domains_set: set[str] = set()
    for _key, (_ns, domain_set) in buckets.items():
        total_domains_set |= domain_set
    total = ProtectedRow("Total", "", total_ns, len(total_domains_set))
    return rows, total
