"""Plain-text rendering of the paper's tables and figures.

Everything renders to monospace text: tables with aligned columns,
monthly series as bar charts, and CDFs as quantile tables — the same
rows/series the paper reports, printable from benchmarks and examples.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis import actors, desirability, duration, exposure, hijacks, timing
from repro.analysis.nature import classify_exposure, nature_rows
from repro.analysis.remediation import (
    RemediationDelta,
    remediation_attribution,
    table5,
    table6,
)
from repro.analysis.study import StudyAnalysis
from repro.analysis.tables import table1, table2, table3
from repro.detection.pipeline import PipelineResult

BAR_GLYPH = "#"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str = ""
) -> str:
    """Render rows as an aligned monospace table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(widths[i]) for i, v in enumerate(row)))
    return "\n".join(lines)


def format_monthly_series(
    series: dict[str, int], *, title: str = "", width: int = 40, every: int = 6
) -> str:
    """Render a monthly series as horizontal bars (one row per ``every``).

    Months are aggregated into buckets of ``every`` months so a decade
    fits on a screen; the peak bucket spans ``width`` glyphs.
    """
    labels = list(series)
    values = list(series.values())
    buckets: list[tuple[str, int]] = []
    for start in range(0, len(labels), every):
        chunk = values[start:start + every]
        buckets.append((labels[start], sum(chunk)))
    peak = max((v for _l, v in buckets), default=0) or 1
    lines = []
    if title:
        lines.append(title)
    for label, value in buckets:
        bar = BAR_GLYPH * max(0, round(width * value / peak))
        lines.append(f"{label}  {value:6d}  {bar}")
    return "\n".join(lines)


def format_cdf(
    samples: list[int], *, title: str = "", points: Sequence[int] = ()
) -> str:
    """Render a CDF as "P(x <= v)" rows at the given points."""
    if not points:
        points = (1, 3, 5, 7, 14, 30, 60, 90, 180, 365, 730)
    lines = []
    if title:
        lines.append(f"{title} (n={len(samples)})")
    for point in points:
        fraction = timing.cdf_fraction_at(samples, point)
        lines.append(f"  <= {point:5d} days: {fraction:6.1%}")
    return "\n".join(lines)


# -- per-artifact renderers ----------------------------------------------------


def render_funnel(result: PipelineResult) -> str:
    """The §3 methodology funnel."""
    return format_table(
        ["stage", "count"],
        result.funnel.rows(),
        title="Detection pipeline funnel (paper §3.2)",
    )


def render_coverage(result: PipelineResult) -> str:
    """Input-quality annotations for a run on degraded data."""
    coverage = result.coverage
    body = [
        ("snapshots ingested", coverage.snapshots_ingested),
        ("snapshots rejected (out of order)", coverage.snapshots_rejected),
        ("duplicate snapshots", coverage.duplicate_snapshots),
        ("corrupt records skipped", coverage.corrupt_records),
        ("delegation gaps bridged", coverage.gaps_bridged),
        ("delegations closed after lapsed gap", coverage.closed_after_gap),
        ("confidence", f"{coverage.confidence:.3f}"),
    ]
    return format_table(
        ["input-quality measure", "value"],
        body,
        title="Data coverage and confidence annotations",
    )


def render_table1(study: StudyAnalysis) -> str:
    """Table 1."""
    rows, total = table1(study)
    body = [
        (r.idiom, r.registrar, r.nameservers, r.affected_domains) for r in rows
    ]
    body.append((total.idiom, "", total.nameservers, total.affected_domains))
    return format_table(
        ["Renaming Idiom / Sink Domain", "Registrar", "# Sacrificial NS",
         "# Affected Domains"],
        body,
        title="Table 1: non-hijackable renaming idioms (registered sink domains)",
    )


def render_table2(study: StudyAnalysis) -> str:
    """Table 2."""
    rows, total = table2(study)
    body = [
        (r.idiom, r.registrar, r.nameservers, r.affected_domains) for r in rows
    ]
    body.append((total.idiom, "", total.nameservers, total.affected_domains))
    return format_table(
        ["Renaming Idiom", "Registrar", "# Sacrificial NS", "# Affected Domains"],
        body,
        title="Table 2: hijackable renaming idioms (random sacrificial names)",
    )


def render_table3(study: StudyAnalysis) -> str:
    """Table 3."""
    summary = table3(study)
    body = [
        ("Sacrificial NS", summary.hijackable_ns, summary.hijacked_ns,
         f"{summary.ns_fraction:.2%}"),
        ("Affected Domains", summary.hijackable_domains, summary.hijacked_domains,
         f"{summary.domain_fraction:.2%}"),
    ]
    return format_table(
        ["Overall", "Hijackable", "Hijacked", "(%)"],
        body,
        title="Table 3: hijackable and hijacked sacrificial nameservers/domains",
    )


def render_table4(study: StudyAnalysis) -> str:
    """Table 4."""
    rows = actors.hijacker_rows(study, top=5)
    body = [(r.controlling_domain, r.nameserver_count, r.domain_count) for r in rows]
    return format_table(
        ["Hijacker NS Domain", "NS", "Domains"],
        body,
        title="Table 4: top five hijackers by number of domains hijacked",
    )


def render_table5(study: StudyAnalysis) -> str:
    """Table 5."""
    delta: RemediationDelta = table5(study)
    body = [
        (delta.before.label, delta.before.vulnerable_ns,
         f"{delta.before.hijacked_ns} "
         f"({delta.before.hijacked_ns / max(1, delta.before.vulnerable_ns):.1%})",
         delta.before.vulnerable_domains,
         f"{delta.before.hijacked_domains} "
         f"({delta.before.hijacked_domains / max(1, delta.before.vulnerable_domains):.1%})"),
        (delta.after.label, delta.after.vulnerable_ns,
         f"{delta.after.hijacked_ns} "
         f"({delta.after.hijacked_ns / max(1, delta.after.vulnerable_ns):.1%})",
         delta.after.vulnerable_domains,
         f"{delta.after.hijacked_domains} "
         f"({delta.after.hijacked_domains / max(1, delta.after.vulnerable_domains):.1%})"),
        ("Delta", delta.ns_delta,
         delta.after.hijacked_ns - delta.before.hijacked_ns,
         delta.domain_delta,
         delta.after.hijacked_domains - delta.before.hijacked_domains),
        ("Organic baseline (1y earlier)", delta.baseline_ns_delta, "",
         delta.baseline_domain_delta, ""),
    ]
    table = format_table(
        ["", "Vuln. NS", "Hijacked NS", "Vuln. Domains", "Hijacked Domains"],
        body,
        title="Table 5: change in vulnerable/hijacked population after notification",
    )
    attribution = remediation_attribution(study)
    parts = ", ".join(
        f"{registrar}: {count}"
        for registrar, count in sorted(
            attribution.rerename_ns_by_registrar.items(),
            key=lambda item: -item[1],
        )
    )
    return (
        f"{table}\n"
        f"attribution of the {attribution.remediated_ns} NS disappearances: "
        f"re-renames {attribution.rerename_fraction():.0%} ({parts}); "
        f"organic {attribution.organic_ns}"
    )


def render_table6(study: StudyAnalysis) -> str:
    """Table 6."""
    rows, total = table6(study)
    body = [(r.registrar, r.idiom, r.nameservers, r.domains) for r in rows]
    body.append((total.registrar, "", total.nameservers, total.domains))
    return format_table(
        ["Registrar", "New Renaming Idiom", "NS", "Domains"],
        body,
        title="Table 6: domains protected by post-remediation renaming idioms",
    )


def render_figure3(study: StudyAnalysis) -> str:
    """Figure 3."""
    series = exposure.new_hijackable_per_month(study)
    chart = format_monthly_series(
        series, title="Figure 3: new hijackable domains per month"
    )
    slope = exposure.trend_slope(series)
    ratio = exposure.halves_ratio(series)
    return (
        f"{chart}\n"
        f"trend slope: {slope:+.2f} domains/month^2; "
        f"second-half/first-half ratio: {ratio:.2f}"
    )


def render_figure4(study: StudyAnalysis) -> str:
    """Figure 4."""
    series = hijacks.new_hijacked_per_month(study)
    chart = format_monthly_series(
        series, title="Figure 4: new hijacked domains per month"
    )
    cv = hijacks.burstiness(series)
    return f"{chart}\nburstiness (coefficient of variation): {cv:.2f}"


def render_figure5(study: StudyAnalysis) -> str:
    """Figure 5 (as the selectivity statistics behind the scatter)."""
    points = desirability.value_points(study)
    summary = desirability.selectivity_summary(points)
    body = [(key, f"{value:,.2f}") for key, value in summary.items()]
    return format_table(
        ["statistic", "value"],
        body,
        title=(
            "Figure 5: hijack value vs delegations "
            f"({len(points)} hijackable nameservers)"
        ),
    )


def render_figure6(study: StudyAnalysis) -> str:
    """Figure 6."""
    ns_cdf = format_cdf(
        timing.nameserver_delays(study),
        title="Figure 6 (lower CDF): time to exploit, sacrificial nameservers",
    )
    dom_cdf = format_cdf(
        timing.domain_delays(study),
        title="Figure 6 (upper CDF): time to exploit, vulnerable domains",
    )
    return ns_cdf + "\n" + dom_cdf


def render_figure7(study: StudyAnalysis) -> str:
    """Figure 7."""
    never, hijacked = duration.hijackable_durations(study)
    taken = duration.hijacked_durations(study)
    parts = [
        format_cdf(never, title="Figure 7 (green): days hijackable, never hijacked"),
        format_cdf(hijacked, title="Figure 7 (red): days hijackable, hijacked"),
        format_cdf(taken, title="Figure 7 (blue): days hijacked"),
    ]
    return "\n".join(parts)


def render_dataset(study: StudyAnalysis) -> str:
    """The §3.2-style corpus overview."""
    from repro.zonedb.stats import dataset_stats

    stats = dataset_stats(study.zonedb)
    return format_table(
        ["measure", "value"], stats.rows(),
        title="Data set overview (CAIDA-DZDB substitute)",
    )


def render_nature(study: StudyAnalysis) -> str:
    """The §5.6 exposure-nature breakdown at the study end."""
    nature = classify_exposure(study, study.config.study_end - 1)
    return format_table(
        ["measure", "count"], nature_rows(nature),
        title="Nature of currently-hijackable domains (§5.6)",
    )


def render_full_report(result: PipelineResult, study: StudyAnalysis) -> str:
    """Every table and figure, in paper order."""
    sections = [
        render_dataset(study),
        render_funnel(result),
    ]
    if result.coverage.degraded:
        sections.append(render_coverage(result))
    sections += [
        render_table1(study),
        render_table2(study),
        render_table3(study),
        render_figure3(study),
        render_figure4(study),
        render_figure5(study),
        render_figure6(study),
        render_figure7(study),
        render_nature(study),
        render_table4(study),
        render_table5(study),
        render_table6(study),
    ]
    return ("\n\n" + "=" * 72 + "\n\n").join(sections)
