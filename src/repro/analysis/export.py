"""CSV export of every figure's underlying data series.

The text report is self-contained, but downstream users replotting the
figures (matplotlib, gnuplot, R) need the raw series. ``export_all``
writes one tidy CSV per figure plus the idiom tables, mirroring how
measurement groups publish artifact data alongside a paper.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.analysis import desirability, duration, exposure, hijacks, timing
from repro.analysis.study import StudyAnalysis
from repro.analysis.tables import table1, table2


def _write(path: Path, header: list[str], rows: list[tuple]) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)
    return path


def export_figure3(study: StudyAnalysis, out_dir: Path) -> Path:
    """Monthly newly-hijackable-domain counts."""
    series = exposure.new_hijackable_per_month(study)
    return _write(
        out_dir / "figure3_new_hijackable_per_month.csv",
        ["month", "new_hijackable_domains"],
        list(series.items()),
    )


def export_figure4(study: StudyAnalysis, out_dir: Path) -> Path:
    """Monthly newly-hijacked-domain counts."""
    series = hijacks.new_hijacked_per_month(study)
    return _write(
        out_dir / "figure4_new_hijacked_per_month.csv",
        ["month", "new_hijacked_domains"],
        list(series.items()),
    )


def export_figure5(study: StudyAnalysis, out_dir: Path) -> Path:
    """The scatter points: value, delegation count, hijacked flag."""
    points = desirability.value_points(study)
    return _write(
        out_dir / "figure5_value_scatter.csv",
        ["nameserver", "hijack_value_days", "domain_count", "hijacked"],
        [
            (p.nameserver, p.hijack_value_days, p.domain_count, int(p.hijacked))
            for p in points
        ],
    )


def export_figure6(study: StudyAnalysis, out_dir: Path) -> Path:
    """Both time-to-exploit sample sets, tagged by population."""
    rows = [("nameserver", delay) for delay in timing.nameserver_delays(study)]
    rows += [("domain", delay) for delay in timing.domain_delays(study)]
    return _write(
        out_dir / "figure6_time_to_exploit.csv",
        ["population", "days_to_registration"],
        rows,
    )


def export_figure7(study: StudyAnalysis, out_dir: Path) -> Path:
    """All three duration sample sets, tagged by curve."""
    never, hijacked = duration.hijackable_durations(study)
    taken = duration.hijacked_durations(study)
    rows = [("hijackable_never_hijacked", days) for days in never]
    rows += [("hijackable_hijacked", days) for days in hijacked]
    rows += [("hijacked", days) for days in taken]
    return _write(
        out_dir / "figure7_durations.csv",
        ["curve", "days"],
        rows,
    )


def export_tables(study: StudyAnalysis, out_dir: Path) -> Path:
    """Tables 1 and 2 as one tidy CSV."""
    rows = []
    for hijackable, (table_rows, _total) in (
        (0, table1(study)), (1, table2(study)),
    ):
        for row in table_rows:
            rows.append(
                (row.idiom, row.registrar, hijackable,
                 row.nameservers, row.affected_domains)
            )
    return _write(
        out_dir / "tables_idioms.csv",
        ["idiom", "registrar", "hijackable", "nameservers", "affected_domains"],
        rows,
    )


def export_all(study: StudyAnalysis, out_dir: str | Path) -> list[Path]:
    """Write every export; returns the paths written."""
    out_path = Path(out_dir)
    return [
        export_figure3(study, out_path),
        export_figure4(study, out_path),
        export_figure5(study, out_path),
        export_figure6(study, out_path),
        export_figure7(study, out_path),
        export_tables(study, out_path),
    ]
