"""WHOIS history archive (the DomainTools substitute)."""

from repro.whois.archive import WhoisArchive, WhoisRecord

__all__ = ["WhoisArchive", "WhoisRecord"]
