"""Historical WHOIS records, as the methodology consumes them.

The paper uses DomainTools WHOIS history for exactly two joins: the
registrar sponsoring a nameserver's domain at the time it was renamed
(to attribute renaming idioms to registrars, §3.2.3), and registration
events for sacrificial nameserver domains (to identify hijacks and
hijackers, §5/§6). :class:`WhoisArchive` stores per-domain registration
epochs supporting both, including the privacy-era reality that registrant
identity is frequently proxy/GDPR-redacted while sponsoring registrar and
dates remain visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.dnscore.names import Name

#: The registrant string WHOIS shows when privacy/GDPR redaction applies.
REDACTED = "REDACTED FOR PRIVACY"


@dataclass
class WhoisRecord:
    """One registration epoch of a domain.

    ``deleted`` is ``None`` while the registration is live. ``registrant``
    may be :data:`REDACTED`.
    """

    domain: str
    registrar: str
    created: int
    expires: int
    deleted: int | None = None
    registrant: str = ""
    #: Sponsorship changes within this epoch: (day, gaining registrar).
    transfers: list[tuple[int, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.domain = Name(self.domain).text

    def active_on(self, day: int) -> bool:
        """True if this epoch covers ``day``."""
        return self.created <= day and (self.deleted is None or day < self.deleted)

    def registrar_on(self, day: int) -> str:
        """The sponsoring registrar on ``day``, honouring transfers."""
        current = self.registrar
        for transfer_day, gaining in self.transfers:
            if transfer_day <= day:
                current = gaining
            else:
                break
        return current


@dataclass
class WhoisArchive:
    """Append-only registration history per registered domain."""

    redact_registrants: bool = False
    _records: dict[str, list[WhoisRecord]] = field(default_factory=dict)

    def record_registration(
        self,
        domain: str,
        registrar: str,
        *,
        day: int,
        period_years: int = 1,
        registrant: str = "",
    ) -> WhoisRecord:
        """Open a new registration epoch."""
        if self.redact_registrants and registrant:
            registrant = REDACTED
        record = WhoisRecord(
            domain=domain,
            registrar=registrar,
            created=day,
            expires=day + 365 * period_years,
            registrant=registrant,
        )
        self._records.setdefault(record.domain, []).append(record)
        return record

    def record_renewal(self, domain: str, *, day: int, period_years: int = 1) -> None:
        """Extend the live epoch of ``domain``; no-op if none is live."""
        record = self.current(domain, day)
        if record is not None:
            record.expires += 365 * period_years

    def record_deletion(self, domain: str, *, day: int) -> None:
        """Close the live epoch of ``domain``; no-op if none is live."""
        record = self.current(domain, day)
        if record is not None:
            record.deleted = day

    def record_transfer(self, domain: str, gaining: str, *, day: int) -> None:
        """Record a sponsorship transfer within the live epoch."""
        record = self.current(domain, day)
        if record is not None:
            record.transfers.append((day, gaining))
            record.transfers.sort()

    # -- queries ---------------------------------------------------------

    def history(self, domain: str) -> list[WhoisRecord]:
        """All registration epochs for ``domain``, oldest first."""
        return list(self._records.get(Name(domain).text, ()))

    def current(self, domain: str, day: int) -> WhoisRecord | None:
        """The epoch covering ``day``, or None."""
        for record in reversed(self.history(domain)):
            if record.active_on(day):
                return record
        return None

    def registrar_at(self, domain: str, day: int) -> str | None:
        """The sponsoring registrar of ``domain`` on ``day``, if registered."""
        record = self.current(domain, day)
        return record.registrar_on(day) if record else None

    def last_registrar_before(self, domain: str, day: int) -> str | None:
        """The registrar of the most recent epoch starting before ``day``.

        Used for rename attribution when the zone data is coarser than
        daily (sampled snapshots quantize the rename day past the epoch's
        deletion): the renaming registrar is whoever last sponsored the
        nameserver's domain.
        """
        best: WhoisRecord | None = None
        for record in self.history(domain):
            if record.created < day:
                best = record
        return best.registrar_on(day - 1) if best else None

    def ever_registered(self, domain: str) -> bool:
        """True if the archive has any epoch for ``domain``."""
        return Name(domain).text in self._records

    def first_registration_after(self, domain: str, day: int) -> WhoisRecord | None:
        """The first epoch created on or after ``day``.

        This is the join used to decide whether (and when) a sacrificial
        nameserver domain was registered after its creation — i.e. whether
        its delegated domains were hijacked.
        """
        for record in self.history(domain):
            if record.created >= day:
                return record
        return None

    def domains(self) -> Iterator[str]:
        """Every domain with at least one epoch."""
        return iter(self._records)

    def __len__(self) -> int:
        return sum(len(records) for records in self._records.values())

    # -- serialization ------------------------------------------------------

    def to_json_lines(self) -> Iterator[str]:
        """Serialize as JSON lines (one registration epoch per line)."""
        import json

        for domain in sorted(self._records):
            for record in self._records[domain]:
                yield json.dumps(
                    {
                        "domain": record.domain,
                        "registrar": record.registrar,
                        "created": record.created,
                        "expires": record.expires,
                        "deleted": record.deleted,
                        "registrant": record.registrant,
                        "transfers": record.transfers,
                    },
                    sort_keys=True,
                )

    def dump(self, path) -> int:
        """Write the archive to a JSON-lines file; returns epoch count."""
        from pathlib import Path

        lines = list(self.to_json_lines())
        Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
        return len(lines)

    @classmethod
    def load(cls, path) -> "WhoisArchive":
        """Read an archive previously written by :meth:`dump`."""
        import json
        from pathlib import Path

        archive = cls()
        for line in Path(path).read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            data = json.loads(line)
            record = WhoisRecord(
                domain=data["domain"],
                registrar=data["registrar"],
                created=data["created"],
                expires=data["expires"],
                deleted=data["deleted"],
                registrant=data.get("registrant", ""),
                transfers=[tuple(t) for t in data.get("transfers", [])],
            )
            archive._records.setdefault(record.domain, []).append(record)
        return archive
