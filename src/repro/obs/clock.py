"""The telemetry clock: the one place raw duration clocks are read.

Everything in the reproduction that wants to *measure* time — stage
latencies, query timings, heartbeat liveness windows — goes through
these wrappers instead of calling ``time.monotonic`` /
``time.perf_counter`` directly. Lint rule ``DET009`` enforces the
funnel: outside :mod:`repro.obs`, a direct monotonic/perf-counter/
``tracemalloc`` read is an error, because scattered clock reads are how
wall-clock state quietly leaks into content that must stay bit-identical
across replays.

These are *duration* sources (monotonic, no epoch), not wall clocks:
``DET002`` (wall-clock reads) remains a separate, stricter rule. The
values they return are telemetry — they may appear in clearly-marked
telemetry-only fields (see :mod:`repro.obs.tracer`) and never in
journal, checkpoint, or result content.
"""

from __future__ import annotations

import time


def perf_counter() -> float:
    """High-resolution duration clock (seconds, arbitrary origin)."""
    return time.perf_counter()


def monotonic() -> float:
    """Monotonic liveness clock (seconds, arbitrary origin).

    Used by the supervisor for heartbeat timeouts and backoff deadlines;
    never for anything that lands in run content.
    """
    return time.monotonic()
