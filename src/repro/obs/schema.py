"""Schema validation for telemetry artifacts (trace.jsonl, metrics.json).

No external JSON-Schema dependency — like the lint scenario engine,
these are hand-rolled structural checks returning a list of issue
strings (empty = valid). CI's telemetry smoke job runs them over the
artifacts a supervised ``detect --trace --profile`` run emits.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.metrics import METRICS_FORMAT
from repro.obs.tracer import (
    TRACE_FORMAT,
    TraceCorruption,
    TraceRecord,
    read_trace,
)

_RECORD_TYPES = frozenset({"trace-start", "span-start", "span-end", "event"})


def validate_trace_records(records: list[TraceRecord]) -> list[str]:
    """Structural issues in an in-memory trace (empty list = valid)."""
    issues: list[str] = []
    if not records:
        return ["trace is empty (missing trace-start record)"]
    first = records[0]
    if first.type != "trace-start":
        issues.append(f"record 0 is {first.type!r}, expected trace-start")
    elif first.payload.get("format") != TRACE_FORMAT:
        issues.append(
            f"trace-start format is {first.payload.get('format')!r}, "
            f"expected {TRACE_FORMAT!r}"
        )
    run_id = first.run_id
    started: set[str] = set()
    for record in records:
        if record.type not in _RECORD_TYPES:
            issues.append(f"record {record.seq}: unknown type {record.type!r}")
            continue
        if record.run_id != run_id:
            issues.append(
                f"record {record.seq}: run_id {record.run_id!r} differs "
                f"from trace run_id {run_id!r}"
            )
        if record.type in ("span-start", "span-end"):
            span_id = record.payload.get("span_id")
            if not isinstance(span_id, str) or not span_id:
                issues.append(f"record {record.seq}: missing span_id")
                continue
            for key in ("name", "path"):
                if not isinstance(record.payload.get(key), str):
                    issues.append(f"record {record.seq}: missing {key}")
            if record.type == "span-start":
                started.add(span_id)
            elif span_id not in started:
                issues.append(
                    f"record {record.seq}: span-end for {span_id} "
                    "without a prior span-start"
                )
        if record.type == "event" and not isinstance(
            record.payload.get("name"), str
        ):
            issues.append(f"record {record.seq}: event without a name")
        for key, value in record.telemetry.items():
            if not isinstance(value, (int, float)):
                issues.append(
                    f"record {record.seq}: telemetry field {key!r} is not "
                    "numeric"
                )
    return issues


def validate_trace_file(path: str | Path) -> list[str]:
    """Validate a trace file on disk (checksums first, then structure)."""
    target = Path(path)
    if not target.exists():
        return [f"{target}: no such trace file"]
    try:
        records = read_trace(target)
    except TraceCorruption as exc:
        return [str(exc)]
    return validate_trace_records(records)


def validate_metrics_snapshot(document: Any) -> list[str]:
    """Structural issues in a metrics snapshot (empty list = valid)."""
    if not isinstance(document, dict):
        return ["metrics snapshot is not a JSON object"]
    issues: list[str] = []
    if document.get("format") != METRICS_FORMAT:
        issues.append(
            f"format is {document.get('format')!r}, expected "
            f"{METRICS_FORMAT!r}"
        )
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(document.get(section), dict):
            issues.append(f"missing or non-object section {section!r}")
    for section in ("counters", "gauges"):
        values = document.get(section)
        if isinstance(values, dict):
            for name, value in values.items():
                if not isinstance(value, (int, float)):
                    issues.append(f"{section}.{name} is not numeric")
    histograms = document.get("histograms")
    if isinstance(histograms, dict):
        for name, histogram in histograms.items():
            issues.extend(_validate_histogram(name, histogram))
    return issues


def _validate_histogram(name: str, histogram: Any) -> list[str]:
    if not isinstance(histogram, dict):
        return [f"histograms.{name} is not an object"]
    issues: list[str] = []
    boundaries = histogram.get("boundaries")
    counts = histogram.get("counts")
    if not isinstance(boundaries, list) or not boundaries:
        issues.append(f"histograms.{name}: missing boundaries")
    elif boundaries != sorted(boundaries):
        issues.append(f"histograms.{name}: boundaries not sorted")
    if not isinstance(counts, list):
        issues.append(f"histograms.{name}: missing counts")
    elif isinstance(boundaries, list) and len(counts) != len(boundaries) + 1:
        issues.append(
            f"histograms.{name}: {len(counts)} bucket count(s) for "
            f"{len(boundaries)} boundar(ies), expected "
            f"{len(boundaries) + 1}"
        )
    if isinstance(counts, list):
        total = histogram.get("count")
        if isinstance(total, int) and sum(
            c for c in counts if isinstance(c, int)
        ) != total:
            issues.append(
                f"histograms.{name}: bucket counts do not sum to count"
            )
    if not isinstance(histogram.get("sum"), (int, float)):
        issues.append(f"histograms.{name}: missing sum")
    return issues


def validate_metrics_file(path: str | Path) -> list[str]:
    """Validate a metrics.json file on disk."""
    target = Path(path)
    if not target.exists():
        return [f"{target}: no such metrics file"]
    try:
        document = json.loads(target.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        return [f"{target}: invalid JSON ({exc})"]
    return validate_metrics_snapshot(document)
