"""Runtime telemetry plane: tracing, metrics, and profiling hooks.

The observability subsystem added alongside the supervised runner:

* :mod:`repro.obs.clock` — the one sanctioned source of duration clocks
  (lint rule DET009 confines raw monotonic/perf-counter reads here);
* :mod:`repro.obs.tracer` — span-based tracer with deterministic span
  IDs and journal-style torn-tail recovery;
* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms;
* :mod:`repro.obs.runtime` — the process-global registry + active
  tracer, with no-op-safe ``span``/``trace_event`` helpers;
* :mod:`repro.obs.profiling` — opt-in per-stage duration and
  ``tracemalloc`` peak capture;
* :mod:`repro.obs.reporters` — text/JSON rendering for ``riskybiz
  trace`` and the bench progress sink;
* :mod:`repro.obs.schema` — structural validation of ``trace.jsonl``
  and ``metrics.json``.

Everything here depends only on the standard library, so any layer of
the reproduction (stores, resolver, runner) may import it without
cycles.
"""

from repro.obs.metrics import (
    COUNT_BUCKETS,
    DURATION_BUCKETS_S,
    METRICS_FORMAT,
    MetricsRegistry,
)
from repro.obs.tracer import (
    TRACE_FORMAT,
    TraceCorruption,
    TraceRecord,
    Tracer,
    canonical_spans,
    read_trace,
    span_id_for,
    trace_content_digest,
)

__all__ = [
    "COUNT_BUCKETS",
    "DURATION_BUCKETS_S",
    "METRICS_FORMAT",
    "MetricsRegistry",
    "TRACE_FORMAT",
    "TraceCorruption",
    "TraceRecord",
    "Tracer",
    "canonical_spans",
    "read_trace",
    "span_id_for",
    "trace_content_digest",
]
