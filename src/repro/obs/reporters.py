"""Reporters for telemetry: trace timelines, stage tables, metrics.

Mirrors the lint reporter split (:mod:`repro.lint.reporters`): a text
renderer for humans and a JSON renderer with stable key order for CI.
Also provides the small :class:`TextReporter` sink that ``store/bench``
routes its progress lines through instead of raw ``print`` calls.
"""

from __future__ import annotations

import json
import sys
from typing import Any, TextIO

from repro.obs.tracer import TraceRecord, canonical_spans, trace_content_digest

REPORT_FORMAT = "riskybiz-trace-report/1"


class TextReporter:
    """Line-oriented progress sink (defaults to stderr).

    Exists so ad-hoc ``print(..., file=sys.stderr)`` reporting funnels
    through one seam — tests capture it by passing their own stream.
    """

    def __init__(self, stream: TextIO | None = None) -> None:
        self._stream = stream if stream is not None else sys.stderr

    def line(self, text: str) -> None:
        print(text, file=self._stream)


def _duration_ms(record: TraceRecord) -> float | None:
    value = record.telemetry.get("duration_ms")
    return float(value) if isinstance(value, (int, float)) else None


def _stage_rows(records: list[TraceRecord]) -> list[dict[str, Any]]:
    """Per-span-name aggregate over completed spans (count, durations)."""
    by_name: dict[str, dict[str, Any]] = {}
    for record in records:
        if record.type != "span-end":
            continue
        name = str(record.payload.get("name", ""))
        row = by_name.setdefault(
            name, {"name": name, "completed": 0, "duration_ms": 0.0}
        )
        row["completed"] += 1
        duration = _duration_ms(record)
        if duration is not None:
            row["duration_ms"] = round(row["duration_ms"] + duration, 3)
    return [by_name[name] for name in sorted(by_name)]


def summarize_trace(
    records: list[TraceRecord],
    metrics_document: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """One JSON-able document describing a trace (and optional metrics)."""
    events = [
        dict(record.payload) for record in records if record.type == "event"
    ]
    summary: dict[str, Any] = {
        "format": REPORT_FORMAT,
        "run_id": records[0].run_id if records else None,
        "records": len(records),
        "spans": canonical_spans(records),
        "events": events,
        "stages": _stage_rows(records),
        "content_digest": trace_content_digest(records),
    }
    if metrics_document is not None:
        summary["metrics"] = metrics_document
    return summary


def render_trace_json(
    records: list[TraceRecord],
    metrics_document: dict[str, Any] | None = None,
) -> str:
    return json.dumps(
        summarize_trace(records, metrics_document), indent=2, sort_keys=True
    )


def render_trace_text(
    records: list[TraceRecord],
    metrics_document: dict[str, Any] | None = None,
) -> str:
    """Timeline, per-stage summary table, and metrics snapshot as text."""
    lines: list[str] = []
    run_id = records[0].run_id if records else "(empty trace)"
    lines.append(f"trace: {run_id} — {len(records)} record(s)")
    lines.append("")
    lines.append("timeline:")
    for record in records:
        if record.type == "trace-start":
            lines.append(f"  [{record.seq:>4}] trace-start")
        elif record.type == "span-start":
            lines.append(
                f"  [{record.seq:>4}] start {record.payload.get('path')}"
            )
        elif record.type == "span-end":
            duration = _duration_ms(record)
            suffix = f"  ({duration} ms)" if duration is not None else ""
            lines.append(
                f"  [{record.seq:>4}] end   "
                f"{record.payload.get('path')}{suffix}"
            )
        else:
            detail = {
                k: v
                for k, v in record.payload.items()
                if k not in ("name", "parent_id")
            }
            rendered = (
                " " + json.dumps(detail, sort_keys=True) if detail else ""
            )
            lines.append(
                f"  [{record.seq:>4}] event {record.payload.get('name')}"
                f"{rendered}"
            )
    lines.append("")
    lines.append("stages (completed spans):")
    rows = _stage_rows(records)
    if rows:
        width = max(len(row["name"]) for row in rows)
        for row in rows:
            lines.append(
                f"  {row['name']:<{width}}  x{row['completed']:<4} "
                f"{row['duration_ms']} ms"
            )
    else:
        lines.append("  (none)")
    lines.append("")
    lines.append(f"content digest: {trace_content_digest(records)}")
    if metrics_document is not None:
        lines.append("")
        lines.extend(render_metrics_text(metrics_document).split("\n"))
    return "\n".join(lines)


def render_metrics_text(document: dict[str, Any]) -> str:
    """A metrics snapshot as an aligned text block."""
    lines: list[str] = ["metrics:"]
    counters = document.get("counters") or {}
    gauges = document.get("gauges") or {}
    histograms = document.get("histograms") or {}
    for name in sorted(counters):
        lines.append(f"  counter   {name} = {counters[name]}")
    for name in sorted(gauges):
        lines.append(f"  gauge     {name} = {gauges[name]}")
    for name in sorted(histograms):
        histogram = histograms[name]
        lines.append(
            f"  histogram {name}: count={histogram.get('count')} "
            f"sum={histogram.get('sum')}"
        )
    if len(lines) == 1:
        lines.append("  (empty)")
    return "\n".join(lines)
