"""Span-based tracing with deterministic span IDs.

One trace file (``trace.jsonl``, next to the run journal) records what
one run *did* as spans and point events, append-only, one JSON record
per line::

    {"checksum": "<sha256 of the content body>", "seq": 3,
     "run_id": "run-…", "type": "span-end",
     "payload": {"span_id": "…", "path": "run/shard-0/candidates", …},
     "telemetry": {"duration_ms": 12.4}}

Determinism contract:

* **Span IDs are derived, not drawn**: a span's ID is a stable digest
  of the run ID plus the span's path (``run/shard-0/candidates``), so
  the same logical work gets the same ID in every session — an
  uninterrupted run and a kill-and-resume run agree on every ID.
* **Content vs telemetry**: the per-record checksum covers ``seq``,
  ``run_id``, ``type``, and ``payload`` only. Wall-dependent values
  (durations, memory peaks) live exclusively in the clearly-marked
  ``telemetry`` field, which is excluded from the checksum and from
  every content comparison — resumed runs stay bit-identical on
  content while still carrying real timings.
* **Canonical view**: :func:`canonical_spans` reduces a raw trace to
  its deterministic core — the completed spans, deduplicated by span ID
  (a stage re-run after a kill re-emits the *same* content) and ordered
  by path. :func:`trace_content_digest` hashes that view, which is what
  the chaos tests compare.

Recovery reuses the journal's torn-tail semantics: a final line cut
short by a killed writer fails verification and is dropped on reopen.
Unlike the journal, damage *before* the tail does not poison the run —
a trace is telemetry, so :meth:`Tracer.open_or_create` quarantines the
unreadable file and starts fresh rather than refusing to run.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.obs import clock

#: Format tag recorded by the trace-start event.
TRACE_FORMAT = "riskybiz-trace/1"

#: Suffix given to unreadable trace files moved aside on reopen.
QUARANTINE_SUFFIX = ".corrupt"


class TraceCorruption(Exception):
    """A trace record before the tail failed verification."""


def _canonical_json(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _record_checksum(body: dict[str, Any]) -> str:
    return hashlib.sha256(_canonical_json(body).encode("utf-8")).hexdigest()


def span_id_for(run_id: str, path: str) -> str:
    """Deterministic span ID: digest of run ID + span path.

    No entropy anywhere — the ID is a pure function of *which run* and
    *which piece of work*, so sessions separated by a crash agree.
    """
    digest = hashlib.sha256(f"{run_id}|{path}".encode("utf-8")).hexdigest()
    return digest[:16]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One verified trace record."""

    seq: int
    run_id: str
    type: str
    payload: dict[str, Any]
    telemetry: dict[str, Any] = field(default_factory=dict)

    def body(self) -> dict[str, Any]:
        """The checksummed (content-only) portion of the record."""
        return {
            "seq": self.seq,
            "run_id": self.run_id,
            "type": self.type,
            "payload": self.payload,
        }


def _parse_line(line: str) -> TraceRecord | None:
    """The verified record on ``line``, or None if it fails."""
    try:
        document = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(document, dict):
        return None
    recorded = document.get("checksum")
    telemetry = document.get("telemetry", {})
    body = {
        k: v for k, v in document.items() if k not in ("checksum", "telemetry")
    }
    if not isinstance(recorded, str) or _record_checksum(body) != recorded:
        return None
    if not isinstance(telemetry, dict):
        telemetry = {}
    try:
        return TraceRecord(
            seq=int(body["seq"]),
            run_id=str(body["run_id"]),
            type=str(body["type"]),
            payload=dict(body["payload"]),
            telemetry=telemetry,
        )
    except (KeyError, TypeError, ValueError):
        return None


def read_trace(path: str | Path) -> list[TraceRecord]:
    """Replay a trace file, dropping a torn tail.

    Journal recovery semantics: an unverifiable *final* line is the
    residue of a killed writer and is silently dropped; an unverifiable
    record with valid records after it means the file was damaged after
    the fact and raises :class:`TraceCorruption`.
    """
    target = Path(path)
    raw_lines = target.read_text(encoding="utf-8").split("\n")
    if raw_lines and raw_lines[-1] == "":
        raw_lines.pop()
    records: list[TraceRecord] = []
    for index, line in enumerate(raw_lines):
        record = _parse_line(line)
        if record is None or record.seq != len(records):
            if index == len(raw_lines) - 1:
                break  # torn tail: the event never durably happened
            raise TraceCorruption(
                f"{target}: record {index} failed verification with valid "
                "records after it — trace damaged, not torn"
            )
        records.append(record)
    return records


class Span:
    """One live span; content attributes set here land in its span-end."""

    __slots__ = ("span_id", "name", "path", "attributes", "_started")

    def __init__(self, span_id: str, name: str, path: str, started: float) -> None:
        self.span_id = span_id
        self.name = name
        self.path = path
        self.attributes: dict[str, Any] = {}
        self._started = started

    def set(self, **attributes: Any) -> None:
        """Attach deterministic content attributes (record counts etc.)."""
        self.attributes.update(attributes)


class Tracer:
    """Single-writer tracer for one run directory.

    Exactly one process writes a given trace file at a time (the
    supervisor, mirroring the journal's single-writer rule); worker
    processes report through heartbeats instead. Appends flush per
    record but do not fsync — a trace is telemetry, not a durability
    artifact, and its recovery path tolerates any torn tail.
    """

    def __init__(self, path: str | Path, run_id: str, *, next_seq: int = 0) -> None:
        self.path = Path(path)
        self.run_id = run_id
        self._seq = next_seq
        self._stack: list[Span] = []
        self._handle: Any = None

    # -- construction --------------------------------------------------------

    @classmethod
    def open_or_create(cls, path: str | Path, run_id: str) -> "Tracer":
        """Open a run's trace for appending, recovering what verifies.

        A readable trace belonging to this run is continued (the torn
        tail, if any, is truncated away first). A trace that is damaged
        mid-file or belongs to a different run is quarantined and a
        fresh one started — telemetry must never block the run itself.
        """
        target = Path(path)
        if not target.exists():
            tracer = cls(target, run_id)
            tracer._append("trace-start", {"format": TRACE_FORMAT})
            return tracer
        try:
            records = read_trace(target)
        except TraceCorruption:
            records = None
        if records is None or (records and records[0].run_id != run_id):
            _quarantine(target)
            tracer = cls(target, run_id)
            tracer._append("trace-start", {"format": TRACE_FORMAT})
            return tracer
        _truncate_to_verified(target, len(records))
        tracer = cls(target, run_id, next_seq=len(records))
        if not records:
            tracer._append("trace-start", {"format": TRACE_FORMAT})
        return tracer

    # -- emission ------------------------------------------------------------

    def _append(
        self,
        event_type: str,
        payload: dict[str, Any],
        telemetry: dict[str, Any] | None = None,
    ) -> TraceRecord:
        record = TraceRecord(
            seq=self._seq,
            run_id=self.run_id,
            type=event_type,
            payload=payload,
            telemetry=dict(telemetry or {}),
        )
        body = record.body()
        document = dict(body)
        document["checksum"] = _record_checksum(body)
        if record.telemetry:
            document["telemetry"] = record.telemetry
        line = json.dumps(document, sort_keys=True) + "\n"
        if self._handle is None:
            self._handle = open(self.path, "ab")
        self._handle.write(line.encode("utf-8"))
        self._handle.flush()
        self._seq += 1
        return record

    def event(self, name: str, **attributes: Any) -> None:
        """Emit one point event (operational, not part of any span)."""
        payload: dict[str, Any] = {"name": name}
        if self._stack:
            payload["parent_id"] = self._stack[-1].span_id
        payload.update(attributes)
        self._append("event", payload)

    def span(self, name: str, **attributes: Any) -> "_SpanContext":
        """Context manager for one span; see :class:`_SpanContext`."""
        return _SpanContext(self, name, attributes)

    def close(self) -> None:
        """Close the underlying file handle (the file itself persists)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class _SpanContext:
    """Starts a span on enter; records span-end only on *clean* exit.

    A crash (or simulated :class:`~repro.faults.process.ChaosKill`)
    inside the span leaves only its span-start behind — exactly the
    journal's semantics, so the canonical view never contains work that
    did not finish.
    """

    __slots__ = ("_tracer", "_name", "_attributes", "_span")

    def __init__(
        self, tracer: Tracer, name: str, attributes: dict[str, Any]
    ) -> None:
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._span: Span | None = None

    def __enter__(self) -> Span:
        tracer = self._tracer
        parent = tracer._stack[-1] if tracer._stack else None
        path = f"{parent.path}/{self._name}" if parent else self._name
        span = Span(
            span_id_for(tracer.run_id, path),
            self._name,
            path,
            clock.perf_counter(),
        )
        payload = {
            "span_id": span.span_id,
            "parent_id": parent.span_id if parent else None,
            "name": span.name,
            "path": span.path,
        }
        payload.update(self._attributes)
        tracer._append("span-start", payload)
        tracer._stack.append(span)
        self._span = span
        return span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        tracer = self._tracer
        span = self._span
        if tracer._stack and tracer._stack[-1] is span:
            tracer._stack.pop()
        if exc_type is not None or span is None:
            return  # died inside the span: no span-end, like a real kill
        payload = {
            "span_id": span.span_id,
            "name": span.name,
            "path": span.path,
        }
        payload.update(self._attributes)
        payload.update(span.attributes)
        duration_ms = (clock.perf_counter() - span._started) * 1000.0
        tracer._append(
            "span-end", payload, telemetry={"duration_ms": round(duration_ms, 3)}
        )


# -- recovery helpers --------------------------------------------------------


def _truncate_to_verified(path: Path, verified: int) -> None:
    """Rewrite the file to exactly its ``verified`` leading records."""
    raw_lines = path.read_text(encoding="utf-8").split("\n")
    kept = raw_lines[:verified]
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("".join(line + "\n" for line in kept))
        handle.flush()


def _quarantine(path: Path) -> Path:
    """Move an unreadable trace aside (first free ``.corrupt-N`` name)."""
    for attempt in range(1000):
        target = path.with_name(f"{path.name}{QUARANTINE_SUFFIX}-{attempt}")
        if not target.exists():
            os.replace(path, target)
            return target
    raise RuntimeError(f"could not quarantine {path}")  # pragma: no cover


# -- the canonical (deterministic) view --------------------------------------


def canonical_spans(records: list[TraceRecord]) -> list[dict[str, Any]]:
    """The trace's deterministic core: completed spans, deduped, ordered.

    A stage killed mid-way and redone emits two span-starts and one
    span-end with identical content; a resume re-emits nothing for work
    that durably completed. Keeping the *last* span-end per span ID and
    ordering by path therefore yields the same sequence for an
    uninterrupted run and any kill-and-resume replay of it.
    """
    ends: dict[str, dict[str, Any]] = {}
    for record in records:
        if record.type == "span-end":
            ends[str(record.payload["span_id"])] = dict(record.payload)
    return sorted(ends.values(), key=lambda p: str(p.get("path", "")))


def canonical_events(records: list[TraceRecord]) -> Iterator[dict[str, Any]]:
    """Point events in emission order (operational; not content-stable)."""
    for record in records:
        if record.type == "event":
            yield dict(record.payload)


def trace_content_digest(records: list[TraceRecord]) -> str:
    """SHA-256 over the canonical span view (content fields only)."""
    canonical = _canonical_json(canonical_spans(records))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
