"""Opt-in profiling hooks: per-stage durations and allocation peaks.

Off by default because ``tracemalloc`` roughly doubles allocation cost;
``riskybiz detect --profile`` (or :func:`enable` in code) turns it on
for one run. Measurements land in the global metrics registry:

* ``profile.stage.duration_s`` — histogram of per-stage wall durations
  (fixed buckets, see :data:`~repro.obs.metrics.DURATION_BUCKETS_S`);
* ``profile.stage.<label>.duration_s`` — gauge, last duration per stage;
* ``profile.stage.<label>.tracemalloc_peak_bytes`` — gauge, allocation
  peak while the stage ran.

Everything recorded here is telemetry by definition — wall- and
machine-dependent, never part of run content. The snapshot schema
(:mod:`repro.obs.schema`) checks shape, not values.
"""

from __future__ import annotations

import contextlib
import tracemalloc
from typing import Iterator

from repro.obs import clock, runtime

_ENABLED = False
_STARTED_TRACEMALLOC = False


def enable() -> None:
    """Turn profiling on; starts ``tracemalloc`` if nothing else has."""
    global _ENABLED, _STARTED_TRACEMALLOC
    _ENABLED = True
    if not tracemalloc.is_tracing():
        tracemalloc.start()
        _STARTED_TRACEMALLOC = True


def disable() -> None:
    """Turn profiling off; stops ``tracemalloc`` if we started it."""
    global _ENABLED, _STARTED_TRACEMALLOC
    _ENABLED = False
    if _STARTED_TRACEMALLOC and tracemalloc.is_tracing():
        tracemalloc.stop()
    _STARTED_TRACEMALLOC = False


def is_enabled() -> bool:
    return _ENABLED


@contextlib.contextmanager
def profile_stage(label: str) -> Iterator[None]:
    """Measure one stage when profiling is on; free no-op when off."""
    if not _ENABLED:
        yield
        return
    tracing = tracemalloc.is_tracing()
    if tracing:
        tracemalloc.reset_peak()
    started = clock.perf_counter()
    try:
        yield
    finally:
        elapsed = clock.perf_counter() - started
        runtime.histogram("profile.stage.duration_s").observe(elapsed)
        runtime.gauge(f"profile.stage.{label}.duration_s").set(
            round(elapsed, 6)
        )
        if tracing:
            _, peak = tracemalloc.get_traced_memory()
            runtime.gauge(
                f"profile.stage.{label}.tracemalloc_peak_bytes"
            ).set(peak)
