"""The metrics registry: counters, gauges, and fixed-bucket histograms.

One :class:`MetricsRegistry` holds every instrument the pipeline, the
supervisor, the stores, and the resolver increment on their hot paths.
Instruments are created on first use and are cheap to update (a dict
lookup plus an integer add), so instrumentation can stay threaded
through production code unconditionally.

Determinism contract:

* **Counter and gauge values that describe content** (record counts,
  funnel sizes, fault activations) are pure functions of the run's
  inputs and replay identically; values that describe *operations*
  (cache hits, retries, heartbeats) may differ between an uninterrupted
  run and a kill-and-resume run and are therefore telemetry.
* **Histogram bucket boundaries are fixed at registration** and never
  derived from observed values, so the *shape* of a metrics snapshot is
  stable across runs and machines even though observed durations are
  wall-dependent telemetry.

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain JSON-able dicts
with sorted keys, written next to the run journal as ``metrics.json``
and validated by :mod:`repro.obs.schema`.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any

#: Format tag carried by metrics snapshots.
METRICS_FORMAT = "riskybiz-metrics/1"

#: Fixed bucket boundaries for duration histograms, in seconds.
#: Chosen once; never computed from data (snapshot-shape stability).
DURATION_BUCKETS_S = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Fixed bucket boundaries for size/count histograms.
COUNT_BUCKETS = (1, 5, 10, 50, 100, 500, 1_000, 5_000, 10_000, 50_000)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: int | float = 0

    def set(self, value: int | float) -> None:
        self.value = value


class Histogram:
    """Fixed-boundary histogram of observed values.

    ``boundaries`` are upper-inclusive bucket edges; one overflow bucket
    catches everything above the last edge. Boundaries are part of the
    instrument's identity — re-registering the same name with different
    boundaries is an error, so snapshots can never silently change shape.
    """

    __slots__ = ("name", "boundaries", "counts", "count", "total")

    def __init__(self, name: str, boundaries: tuple[float, ...]) -> None:
        if not boundaries or list(boundaries) != sorted(boundaries):
            raise ValueError(
                f"histogram {name} boundaries must be non-empty and sorted"
            )
        self.name = name
        self.boundaries = tuple(boundaries)
        self.counts = [0] * (len(boundaries) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_right(self.boundaries, value)] += 1
        self.count += 1
        self.total += value

    def to_dict(self) -> dict[str, Any]:
        """JSON-able snapshot of this histogram."""
        return {
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "count": self.count,
            "sum": round(self.total, 9),
        }


class MetricsRegistry:
    """Get-or-create registry of named instruments."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument access ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, boundaries: tuple[float, ...] = DURATION_BUCKETS_S
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, boundaries)
        elif instrument.boundaries != tuple(boundaries):
            raise ValueError(
                f"histogram {name} already registered with boundaries "
                f"{instrument.boundaries}, not {tuple(boundaries)}"
            )
        return instrument

    # -- lifecycle -----------------------------------------------------------

    def reset(self) -> None:
        """Zero every instrument in place (identities survive).

        In-place so hot paths that cached an instrument object keep a
        live handle; used by tests and at CLI-run boundaries.
        """
        for counter in self._counters.values():
            counter.value = 0
        for gauge in self._gauges.values():
            gauge.value = 0
        for histogram in self._histograms.values():
            histogram.counts = [0] * (len(histogram.boundaries) + 1)
            histogram.count = 0
            histogram.total = 0.0

    def snapshot(self) -> dict[str, Any]:
        """The registry as one JSON-able document (sorted keys)."""
        return {
            "format": METRICS_FORMAT,
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].to_dict()
                for name in sorted(self._histograms)
            },
        }
