"""Process-global observability runtime.

The hot paths (pipeline stages, stores, resolver, supervisor) cannot
thread a tracer/registry handle through every call signature without
distorting the APIs they instrument, so this module holds the process's
single :class:`~repro.obs.metrics.MetricsRegistry` plus the *currently
active* tracer, and exposes no-op-safe helpers:

* :func:`metrics` / :func:`counter` / :func:`gauge` / :func:`histogram`
  — always live; instruments are cheap enough to update unconditionally.
* :func:`observing` — context manager installing a tracer for the
  duration of a run (the supervisor enters it; nested runs restore the
  previous tracer on exit).
* :func:`span` / :func:`trace_event` — emit through the active tracer,
  or do nothing when tracing is off. ``span()`` always yields a span
  object (a null one when off) so call sites never branch.

Worker processes in the process-pool backend never install a tracer —
the trace file has the same single-writer rule as the run journal, and
worker lifecycle is recorded by the supervisor on their behalf. Because
a forked worker inherits this module's globals (including an open
tracer), worker entry points must call :func:`detach` first thing.
"""

from __future__ import annotations

import contextlib
from typing import Any, Iterator

from repro.obs import clock
from repro.obs.metrics import (
    COUNT_BUCKETS,
    DURATION_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import Span, Tracer

_REGISTRY = MetricsRegistry()
_ACTIVE_TRACER: Tracer | None = None


def metrics() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _REGISTRY


def counter(name: str) -> Counter:
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return _REGISTRY.gauge(name)


def histogram(
    name: str, boundaries: tuple[float, ...] = DURATION_BUCKETS_S
) -> Histogram:
    return _REGISTRY.histogram(name, boundaries)


def count_histogram(name: str) -> Histogram:
    """A histogram bucketed for record counts rather than durations."""
    return _REGISTRY.histogram(name, COUNT_BUCKETS)


def reset_metrics() -> None:
    """Zero the global registry in place (run boundaries, tests)."""
    _REGISTRY.reset()


class _NullSpan:
    """Stand-in yielded by :func:`span` when tracing is off."""

    __slots__ = ()

    span_id = ""
    name = ""
    path = ""

    def set(self, **attributes: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


def active_tracer() -> Tracer | None:
    """The tracer installed by the innermost :func:`observing`, if any."""
    return _ACTIVE_TRACER


def detach() -> None:
    """Abandon any inherited tracer without touching its file.

    Called at worker-process entry: a forked child shares the parent's
    trace file descriptor, and two writers would interleave sequence
    numbers and corrupt the trace. The parent's tracer object is left
    alone — only this process's reference to it is dropped — and the
    inherited metrics counts are zeroed so worker-side increments never
    look like a continuation of the parent's run.
    """
    global _ACTIVE_TRACER
    _ACTIVE_TRACER = None
    _REGISTRY.reset()


@contextlib.contextmanager
def observing(tracer: Tracer | None) -> Iterator[Tracer | None]:
    """Install ``tracer`` as the active tracer for this block.

    Passing ``None`` is valid and disables tracing inside the block,
    which is also how nested untraced runs are isolated from an outer
    traced one.
    """
    global _ACTIVE_TRACER
    previous = _ACTIVE_TRACER
    _ACTIVE_TRACER = tracer
    try:
        yield tracer
    finally:
        _ACTIVE_TRACER = previous


@contextlib.contextmanager
def span(name: str, **attributes: Any) -> Iterator[Span | _NullSpan]:
    """A span on the active tracer, or a null span when tracing is off."""
    tracer = _ACTIVE_TRACER
    if tracer is None:
        yield _NULL_SPAN
        return
    with tracer.span(name, **attributes) as live:
        yield live


def trace_event(name: str, **attributes: Any) -> None:
    """Emit a point event on the active tracer; no-op when off."""
    tracer = _ACTIVE_TRACER
    if tracer is not None:
        tracer.event(name, **attributes)


@contextlib.contextmanager
def timed(histogram_name: str) -> Iterator[None]:
    """Record the block's duration (seconds) into a duration histogram.

    Always on — a histogram observation is one bisect plus two adds, so
    hot paths (stage bodies, store queries, transactions) keep it
    unconditionally; the observed values are telemetry, the bucket
    boundaries are fixed.
    """
    started = clock.perf_counter()
    try:
        yield
    finally:
        histogram(histogram_name).observe(clock.perf_counter() - started)
