"""The §7.3 residual-risk experiment: a rogue AS112 anycast node.

Demonstrates, on a finished world, the trade-off the paper flags about
renaming under ``empty.as112.arpa``: the names can never be registered,
but because AS112 is anycast, an attacker operating one node can answer
the delegated queries in its own catchment. The experiment measures the
regional hijack and then shows that signing the zone (the mitigation
the paper suggests in footnote 15) neutralizes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.study import StudyAnalysis
from repro.dnscore.records import RRType
from repro.ecosystem.world import WorldResult
from repro.resolver.anycast import AnycastBehavior, AnycastNode
from repro.resolver.resolver import IterativeResolver
from repro.resolver.server import AnsweringBehavior, SilentBehavior

AS112_APEX = "empty.as112.arpa"
HONEST_CATCHMENT = "0.0.0.0/1"        # "most of the Internet"
ROGUE_CATCHMENT = "198.18.0.0/15"     # the attacker's region
VICTIM_RESOLVER_INSIDE = "198.18.0.53"
VICTIM_RESOLVER_OUTSIDE = "9.9.9.9"
ATTACK_ADDRESS = "198.18.66.66"


@dataclass
class As112Report:
    """What the rogue-node experiment measured."""

    protected_domains: tuple[str, ...]
    hijacked_in_catchment: list[str] = field(default_factory=list)
    unaffected_outside: list[str] = field(default_factory=list)
    hijacked_with_dnssec: list[str] = field(default_factory=list)

    @property
    def regional_hijack_works(self) -> bool:
        """Unsigned zone: the attacker answers inside its catchment."""
        return bool(self.hijacked_in_catchment) and not self.unaffected_outside

    @property
    def dnssec_mitigates(self) -> bool:
        """Signed zone: the forged answers are rejected everywhere."""
        return not self.hijacked_with_dnssec


class As112Experiment:
    """Stands up honest + rogue anycast nodes and measures the effect."""

    def __init__(self, world_result: WorldResult, study: StudyAnalysis) -> None:
        self.world = world_result
        self.study = study

    def protected_domains(self, day: int) -> list[str]:
        """Domains currently delegated to empty.as112.arpa names."""
        domains: set[str] = set()
        for view in self.study.nameservers.values():
            if view.info.idiom_id != "EMPTY.AS112.ARPA":
                continue
            domains |= view.domains_on(day)
        return sorted(domains)

    def _build_resolver(self, *, signed_zone: bool, day: int) -> tuple[
        IterativeResolver, AnycastBehavior
    ]:
        resolver = IterativeResolver(self.world.zonedb)
        anycast = AnycastBehavior(signed_zone=signed_zone)
        anycast.add_node(
            AnycastNode(
                name="honest-sink",
                catchments=(HONEST_CATCHMENT, "128.0.0.0/1"),
                behavior=SilentBehavior(),
                honest=True,
            )
        )
        rogue = AnsweringBehavior()
        for domain in self.protected_domains(day):
            rogue.add_record(domain, RRType.A, ATTACK_ADDRESS)
        # The rogue node is inserted first so its (narrower) catchment
        # wins for sources inside it — anycast picks the closest node.
        anycast.nodes.insert(
            0,
            AnycastNode(
                name="rogue-node",
                catchments=(ROGUE_CATCHMENT,),
                behavior=rogue,
                honest=False,
            ),
        )
        for view in self.study.nameservers.values():
            if view.info.idiom_id == "EMPTY.AS112.ARPA":
                resolver.attach_server(view.name, anycast)
        return resolver, anycast

    def run(self, *, day: int | None = None, sample: int = 25) -> As112Report:
        """Measure the regional hijack, with and without DNSSEC."""
        if day is None:
            day = self.world.config.end_day - 1
        victims = self.protected_domains(day)[:sample]
        report = As112Report(protected_domains=tuple(victims))
        if not victims:
            return report

        resolver, _ = self._build_resolver(signed_zone=False, day=day)
        for domain in victims:
            inside = resolver.resolve(
                domain, day=day, source_ip=VICTIM_RESOLVER_INSIDE
            )
            outside = resolver.resolve(
                domain, day=day, source_ip=VICTIM_RESOLVER_OUTSIDE
            )
            if inside.ok and inside.answer == [ATTACK_ADDRESS]:
                report.hijacked_in_catchment.append(domain)
            if outside.ok:
                report.unaffected_outside.append(domain)

        signed_resolver, _ = self._build_resolver(signed_zone=True, day=day)
        for domain in victims:
            inside = signed_resolver.resolve(
                domain, day=day, source_ip=VICTIM_RESOLVER_INSIDE
            )
            if inside.ok:
                report.hijacked_with_dnssec.append(domain)
        return report


def run_as112_experiment(
    world_result: WorldResult, study: StudyAnalysis
) -> As112Report:
    """Convenience wrapper used by the benchmark."""
    return As112Experiment(world_result, study).run()
