"""Defensive registration sweeps (paper footnote 11).

Pending registrar outreach, the authors defensively registered the
sacrificial domains of the most sensitive targets ("The .edu domain is
no longer hijackable due to our defensive registrations pending
outreach"). This module plans and executes that strategy at scale on a
simulated world: enumerate every currently hijackable sacrificial
domain, rank by what a registration protects, register (optionally only
the top N or only restricted-TLD-reaching ones), and report cost and
coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.study import StudyAnalysis
from repro.dnscore.names import Name
from repro.ecosystem.world import WorldResult

#: Typical .biz/.com retail registration fee, for cost reporting.
REGISTRATION_FEE_USD = 12.0


@dataclass(frozen=True, slots=True)
class DefensiveTarget:
    """One sacrificial domain the sweep could register."""

    registered_domain: str
    nameserver_names: tuple[str, ...]
    protected_domains: tuple[str, ...]
    reaches_restricted_tld: bool

    @property
    def protection_count(self) -> int:
        """How many domains one registration would protect."""
        return len(self.protected_domains)


@dataclass
class SweepReport:
    """Outcome of a defensive sweep."""

    day: int
    targets_considered: int
    registered: list[DefensiveTarget] = field(default_factory=list)
    failed: list[str] = field(default_factory=list)

    @property
    def protected_domains(self) -> set[str]:
        """Union of domains protected by the registrations."""
        protected: set[str] = set()
        for target in self.registered:
            protected.update(target.protected_domains)
        return protected

    @property
    def cost_usd(self) -> float:
        """First-year cost of the sweep."""
        return len(self.registered) * REGISTRATION_FEE_USD

    def cost_per_protected_domain(self) -> float:
        """Dollars per domain protected (the ROI the paper reasons about)."""
        count = len(self.protected_domains)
        return self.cost_usd / count if count else 0.0


class DefensiveSweep:
    """Plans and executes defensive registrations on a world."""

    def __init__(
        self,
        world_result: WorldResult,
        study: StudyAnalysis,
        *,
        day: int | None = None,
    ) -> None:
        self.world = world_result
        self.study = study
        self.day = day if day is not None else study.config.study_end - 1

    def enumerate_targets(self) -> list[DefensiveTarget]:
        """All currently hijackable groups, highest protection first."""
        targets = []
        for group in self.study.groups.values():
            if not group.hijackable or group.registered_on(self.day):
                continue
            if not self.world.roster.operates(group.registered_domain):
                continue
            registry = self.world.roster.registry_for(group.registered_domain)
            if registry.repository.domain_exists(group.registered_domain):
                continue
            protected: set[str] = set()
            for view in group.nameservers:
                protected |= view.domains_on(self.day)
            if not protected:
                continue
            targets.append(
                DefensiveTarget(
                    registered_domain=group.registered_domain,
                    nameserver_names=tuple(
                        sorted(view.name for view in group.nameservers)
                    ),
                    protected_domains=tuple(sorted(protected)),
                    reaches_restricted_tld=any(
                        Name(domain).tld in ("edu", "gov") for domain in protected
                    ),
                )
            )
        targets.sort(
            key=lambda t: (-t.reaches_restricted_tld, -t.protection_count,
                           t.registered_domain)
        )
        return targets

    def execute(
        self,
        *,
        budget: int | None = None,
        restricted_only: bool = False,
        registrant: str = "defensive-research",
    ) -> SweepReport:
        """Register targets (most valuable first) within the budget.

        Registered domains get **no nameservers**: a defensive holder has
        nothing to answer, it only needs the name off the market — so
        protected domains stay lame rather than hijacked.
        """
        targets = self.enumerate_targets()
        report = SweepReport(day=self.day, targets_considered=len(targets))
        registrar = self.world.registrars["bulkreg"]
        for target in targets:
            if restricted_only and not target.reaches_restricted_tld:
                continue
            if budget is not None and len(report.registered) >= budget:
                break
            result = registrar.register_domain(
                self.world.roster, target.registered_domain,
                day=self.day, nameservers=[], period_years=1,
                registrant=registrant,
            )
            if result.ok:
                self.world.whois.record_registration(
                    target.registered_domain, "bulkreg",
                    day=self.day, registrant=registrant,
                )
                report.registered.append(target)
            else:
                report.failed.append(target.registered_domain)
        return report
