"""Degradation sweep: detection accuracy vs observational data quality.

The paper's results rest on the detection methodology tolerating messy
inputs. This experiment quantifies that tolerance: one pristine world is
degraded at increasing uniform fault rates (dropped/duplicated/
reordered/truncated snapshot days, corrupted records, WHOIS gaps), the
§3 pipeline runs against each degraded view, and detected sacrificial
names are scored against the simulator's ground-truth rename log —
precision/recall per rate, alongside the pipeline's own coverage and
confidence annotations.

Every per-rate result is checkpointed (when a directory is given), so a
killed sweep resumes where it stopped and produces identical tables.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.detection.pipeline import DetectionPipeline
from repro.faults.apply import degrade_world
from repro.faults.config import FaultConfig
from repro.store.atomic import atomic_write_bytes


@dataclass(frozen=True)
class SweepPoint:
    """Detection accuracy and data coverage at one uniform fault rate."""

    rate: float
    truth: int
    detected: int
    true_positives: int
    precision: float
    recall: float
    #: Snapshots the injector dropped outright.
    snapshots_dropped: int
    #: Fraction of the pristine snapshot stream that was delivered.
    snapshot_coverage: float
    #: Domains whose WHOIS history was a coverage gap.
    whois_domains_dropped: int
    #: Delegation absences repaired by the gap-bridging window.
    gaps_bridged: int
    #: The pipeline's own confidence annotation for this input.
    confidence: float

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


@dataclass
class DegradationReport:
    """One full sweep, ready for rendering or export."""

    seed: int
    scale: float
    every: int
    points: list[SweepPoint] = field(default_factory=list)

    def rows(self) -> list[tuple]:
        """Table rows: one per swept rate."""
        return [
            (
                f"{p.rate:.0%}",
                p.detected,
                f"{p.precision:.3f}",
                f"{p.recall:.3f}",
                f"{p.f1:.3f}",
                f"{p.snapshot_coverage:.3f}",
                p.gaps_bridged,
                f"{p.confidence:.3f}",
            )
            for p in self.points
        ]


def _evaluate_rate(
    world_result,
    truth: set[str],
    rate: float,
    *,
    every: int,
    checkpoint_dir: Path | None,
) -> SweepPoint:
    """Run the pipeline against one degraded view and score it."""
    if rate <= 0:
        # Rate zero must reproduce the paper numbers exactly: use the
        # pristine observables directly, bypassing snapshot resampling.
        zonedb, whois = world_result.zonedb, world_result.whois
        snapshots_dropped = 0
        snapshot_coverage = 1.0
        whois_dropped = 0
    else:
        config = FaultConfig.uniform(rate, seed=world_result.config.seed)
        degraded = degrade_world(world_result, config, every=every)
        zonedb, whois = degraded.zonedb, degraded.whois
        snapshots_dropped = len(degraded.snapshot_log.dropped)
        snapshot_coverage = degraded.snapshot_coverage
        whois_dropped = len(degraded.whois_log.domains_dropped)
    checkpoint = (
        checkpoint_dir / f"pipeline-{rate:.4f}.pkl" if checkpoint_dir else None
    )
    result = DetectionPipeline(zonedb, whois).run(checkpoint_path=checkpoint)
    detected = {s.name for s in result.sacrificial}
    true_positives = len(detected & truth)
    return SweepPoint(
        rate=rate,
        truth=len(truth),
        detected=len(detected),
        true_positives=true_positives,
        precision=true_positives / len(detected) if detected else 1.0,
        recall=true_positives / len(truth) if truth else 1.0,
        snapshots_dropped=snapshots_dropped,
        snapshot_coverage=snapshot_coverage,
        whois_domains_dropped=whois_dropped,
        gaps_bridged=result.coverage.gaps_bridged,
        confidence=result.coverage.confidence,
    )


def run_degradation_sweep(
    rates: Iterable[float],
    *,
    seed: int = 2021,
    scale: float = 0.1,
    every: int = 7,
    checkpoint_dir: str | Path | None = None,
    world_result=None,
) -> DegradationReport:
    """Sweep the detection pipeline across uniform degradation rates.

    ``every`` is the snapshot sampling interval (days) used when
    reconstructing the degraded zone archives. With a
    ``checkpoint_dir``, each completed rate's :class:`SweepPoint` is
    persisted (atomically) and reloaded on re-run, and the pipeline
    itself checkpoints per stage — killing the sweep at any point and
    restarting yields the identical report.
    """
    if world_result is None:
        from repro.ecosystem.world import run_default_world

        world_result = run_default_world(seed, scale)
    truth = {record.new_name for record in world_result.log.renames}
    directory = Path(checkpoint_dir) if checkpoint_dir else None
    if directory:
        directory.mkdir(parents=True, exist_ok=True)
    report = DegradationReport(seed=seed, scale=scale, every=every)
    for rate in rates:
        point_path = directory / f"point-{rate:.4f}.pkl" if directory else None
        if point_path is not None and point_path.exists():
            with open(point_path, "rb") as handle:
                point = pickle.load(handle)
        else:
            point = _evaluate_rate(
                world_result, truth, rate, every=every, checkpoint_dir=directory
            )
            if point_path is not None:
                atomic_write_bytes(point_path, pickle.dumps(point))
        report.points.append(point)
    return report


def render_sweep(report: DegradationReport) -> str:
    """The sweep as an aligned monospace table."""
    from repro.analysis.report import format_table

    table = format_table(
        [
            "fault rate",
            "detected",
            "precision",
            "recall",
            "F1",
            "snap cov.",
            "bridged",
            "confidence",
        ],
        report.rows(),
        title=(
            "Detection accuracy under observational degradation "
            f"(seed={report.seed}, scale={report.scale}, "
            f"snapshot every {report.every}d)"
        ),
    )
    truth = report.points[0].truth if report.points else 0
    return f"{table}\nground-truth sacrificial names: {truth}"


DEFAULT_SWEEP_RATES: Sequence[float] = (0.0, 0.05, 0.10, 0.20)
