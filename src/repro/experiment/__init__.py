"""Controlled experiments: §6.1 (hijack) and §7.3 (AS112 residual risk)."""

from repro.experiment.as112 import (
    As112Experiment,
    As112Report,
    run_as112_experiment,
)
from repro.experiment.controlled import (
    ControlledExperiment,
    ExperimentReport,
    run_controlled_experiment,
)

__all__ = [
    "As112Experiment",
    "As112Report",
    "run_as112_experiment",
    "ControlledExperiment",
    "ExperimentReport",
    "run_controlled_experiment",
]
