"""Controlled experiments: §6.1 (hijack), §7.3 (AS112), and robustness.

The degradation sweep (:mod:`repro.experiment.degradation`) is this
reproduction's own robustness experiment: it measures how the §3
detection methodology holds up as the observational inputs degrade.
"""

from repro.experiment.as112 import (
    As112Experiment,
    As112Report,
    run_as112_experiment,
)
from repro.experiment.controlled import (
    ControlledExperiment,
    ExperimentReport,
    run_controlled_experiment,
)
from repro.experiment.degradation import (
    DegradationReport,
    SweepPoint,
    render_sweep,
    run_degradation_sweep,
)

__all__ = [
    "As112Experiment",
    "As112Report",
    "run_as112_experiment",
    "ControlledExperiment",
    "ExperimentReport",
    "run_controlled_experiment",
    "DegradationReport",
    "SweepPoint",
    "render_sweep",
    "run_degradation_sweep",
]
