"""§6.2: how hijacked domains are used — parking vs. redirect probing.

The paper manually visited hijacked domains and found two monetization
models: classic parking pages with topical ad links (mpower.nl et al.)
and mass redirection to the operator's own destination site
(phonesear.ch's SEO funnel). It also retrospectively sampled 100 random
hijacked domains via the Wayback Machine and found the mix stable over
time.

This module reproduces that study programmatically: it stands up each
hijacker's serving behaviour (parking farms answer every victim with the
farm address; the redirect operator answers with its destination site's
address), probes hijacked domains through the resolver, and classifies
each answer — a domain resolving to the same address as the operator's
own site is a *redirect*; a distinct farm address is *parking*. The
retrospective check replays the probe at sampled historical days.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field

from repro.analysis.study import StudyAnalysis
from repro.dnscore.psl import default_psl
from repro.ecosystem.world import WorldResult
from repro.resolver.resolver import IterativeResolver
from repro.resolver.server import ParkingBehavior, RedirectBehavior

#: Operators that funnel victims to their own destination site.
REDIRECT_OPERATORS = frozenset({"phonesear.ch"})

_FARM_BASE = "203.0.113."
_DESTINATION_ADDRESS = "203.0.113.80"


@dataclass
class MonetizationReport:
    """Classification of probed hijacked domains."""

    day: int
    sampled: int
    classes: Counter = field(default_factory=Counter)
    by_operator: dict[str, Counter] = field(default_factory=dict)
    retrospective: list[tuple[int, Counter]] = field(default_factory=list)

    @property
    def parking_fraction(self) -> float:
        """Share of classified probes that hit parking pages."""
        total = sum(self.classes.values())
        return self.classes["parking"] / total if total else 0.0

    def retrospective_stable(self) -> bool:
        """Parking dominates at every sampled historical day (§6.2)."""
        for _day, classes in self.retrospective:
            total = sum(classes.values())
            if total and classes["parking"] / total < 0.5:
                return False
        return True


class MonetizationProbe:
    """Builds the serving world and classifies hijacked-domain answers."""

    def __init__(self, world_result: WorldResult, study: StudyAnalysis) -> None:
        self.world = world_result
        self.study = study
        self.psl = default_psl()
        self.resolver = IterativeResolver(world_result.zonedb)
        self._operator_addresses: dict[str, str] = {}
        self._install_operators()

    def _install_operators(self) -> None:
        """Attach each hijacker's serving behaviour to its nameservers."""
        for index, spec in enumerate(self.world.config.hijackers):
            ns_domain = spec.ns_domain
            if ns_domain in REDIRECT_OPERATORS:
                behavior = RedirectBehavior(
                    destination_address=_DESTINATION_ADDRESS
                )
                self._operator_addresses[ns_domain] = _DESTINATION_ADDRESS
            else:
                farm = f"{_FARM_BASE}{100 + index}"
                behavior = ParkingBehavior(parking_address=farm)
                self._operator_addresses[ns_domain] = farm
            for ns_host in spec.ns_hosts():
                self.resolver.attach_server(ns_host, behavior)
        # The hijacker also answers *as* the sacrificial nameservers of
        # the groups it registered: a resolver following the victim's
        # delegation ends up at infrastructure the operator runs. (The
        # redirect behaviour answers the operator's own apex too, which
        # is what makes the redirect classification signal observable.)
        for group in self.study.groups.values():
            if not (group.hijackable and group.hijacked):
                continue
            first = group.first_hijack_day
            if first is None:
                continue
            controlling = self.study.zonedb.nameservers_of(
                group.registered_domain, first
            )
            operators = {
                self.psl.registered_domain(ns) for ns in controlling
            } & set(self._operator_addresses)
            if not operators:
                continue
            operator = sorted(operators)[0]
            hosts = self._actor_hosts(operator)
            behavior = self.resolver.server_for(hosts[0]) if hosts else None
            if behavior is None:
                continue
            for view in group.nameservers:
                self.resolver.attach_server(view.name, behavior)

    def _actor_hosts(self, operator: str) -> tuple[str, ...]:
        """The controlling nameserver host names of one operator."""
        for spec in self.world.config.hijackers:
            if spec.ns_domain == operator:
                return spec.ns_hosts()
        return ()

    def _hijacked_at(self, day: int) -> list[tuple[str, str]]:
        """(domain, controlling operator domain) pairs hijacked on day."""
        pairs = []
        for group in self.study.groups.values():
            if not (group.hijackable and group.registered_on(day)):
                continue
            controlling = self.study.zonedb.nameservers_of(
                group.registered_domain, day
            )
            operators = {
                self.psl.registered_domain(ns) for ns in controlling
            } & set(self._operator_addresses)
            if not operators:
                continue
            operator = sorted(operators)[0]
            for view in group.nameservers:
                for domain in view.domains_on(day):
                    pairs.append((domain, operator))
        return pairs

    def classify(self, domain: str, day: int) -> tuple[str, str | None]:
        """Probe one domain; return (class, operator actually answering).

        Classification goes by what the probe *observes* (as the paper's
        manual visits did): an answer matching a redirect operator's
        destination site is a redirect; an answer matching any parking
        farm is parking. Domains with several hijacked nameservers may be
        answered by a different operator than the one that registered a
        given group — the observed answer wins.
        """
        resolution = self.resolver.resolve(domain, day=day)
        if not resolution.ok:
            return "unreachable", None
        address = resolution.answer[0]
        for operator, expected in self._operator_addresses.items():
            if address != expected:
                continue
            if operator in REDIRECT_OPERATORS:
                return "redirect", operator
            return "parking", operator
        return "other", None

    def run(
        self,
        *,
        day: int | None = None,
        sample: int = 100,
        retrospective_days: int = 4,
        seed: int = 0,
    ) -> MonetizationReport:
        """Probe a sample now plus retrospective samples back in time."""
        if day is None:
            day = self.study.config.study_end - 1
        rng = random.Random(seed)
        pairs = self._hijacked_at(day)
        rng.shuffle(pairs)
        report = MonetizationReport(day=day, sampled=min(sample, len(pairs)))
        for domain, _registering_operator in pairs[:sample]:
            verdict, answering = self.classify(domain, day)
            report.classes[verdict] += 1
            if answering is not None:
                report.by_operator.setdefault(answering, Counter())[verdict] += 1
        # Wayback-style retrospective: re-probe at earlier days.
        step = max(1, day // (retrospective_days + 1))
        for past_day in range(step, day, step):
            past_pairs = self._hijacked_at(past_day)
            rng.shuffle(past_pairs)
            classes: Counter = Counter()
            for domain, _operator in past_pairs[:sample]:
                verdict, _answering = self.classify(domain, past_day)
                classes[verdict] += 1
            if classes:
                report.retrospective.append((past_day, classes))
        return report


def run_monetization_probe(
    world_result: WorldResult, study: StudyAnalysis, **kwargs
) -> MonetizationReport:
    """Convenience wrapper used by the benchmark."""
    return MonetizationProbe(world_result, study).run(**kwargs)
