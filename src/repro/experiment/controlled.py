"""The §6.1 controlled experiment, reproduced in simulation.

The paper registered five sacrificial nameserver domains, observed
incoming queries (surprisingly including .edu and .gov names — the
shared-EPP-repository effect), and then confirmed actual hijack
capability by answering queries for a hijackable .edu domain, but only
for requests from a /24 the authors controlled.

This module replays that protocol against a simulated world:

1. pick a hijackable sacrificial group whose delegated domains cross
   TLDs within one repository (ideally touching .edu/.gov);
2. defensively register the sacrificial domain and stand up a server
   that logs queries but never answers;
3. drive resolver traffic for the delegated domains and confirm the
   queries (including the restricted-TLD ones) arrive;
4. enable scoped answers (only from the experiment /24, only during the
   test window) and confirm the hijack works from inside the scope and
   remains invisible outside it;
5. purge the query logs (the §8 ethics requirement).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.study import StudyAnalysis
from repro.dnscore.names import Name
from repro.dnscore.records import RRType
from repro.ecosystem.world import WorldResult
from repro.resolver.resolver import IterativeResolver, ResolutionStatus
from repro.resolver.server import AnsweringBehavior, ScopedBehavior

RESEARCH_NETWORK = "198.51.100.0/24"
INSIDE_IP = "198.51.100.42"
OUTSIDE_IP = "203.0.113.77"
PROOF_ADDRESS = "198.51.100.200"


@dataclass
class ExperimentReport:
    """What the controlled experiment observed."""

    sacrificial_domain: str
    nameservers: tuple[str, ...]
    delegated_domains: tuple[str, ...]
    restricted_tld_domains: tuple[str, ...]
    queries_observed: int = 0
    restricted_queries_observed: int = 0
    scoped_answer: list[str] = field(default_factory=list)
    outside_answer_status: str = ""
    pre_registration_status: str = ""
    logs_purged: int = 0

    @property
    def hijack_demonstrated(self) -> bool:
        """True if the scoped hijack answered inside and not outside."""
        return bool(self.scoped_answer) and self.outside_answer_status != "answered"

    @property
    def cross_tld_effect_observed(self) -> bool:
        """True if restricted-TLD (.edu/.gov) queries reached our server."""
        return self.restricted_queries_observed > 0


class ControlledExperiment:
    """Drives the §6.1 protocol against a finished world run."""

    def __init__(
        self,
        world_result: WorldResult,
        study: StudyAnalysis,
        *,
        day: int | None = None,
    ) -> None:
        self.world = world_result
        self.study = study
        self.day = day if day is not None else study.config.study_end - 1
        self.resolver = IterativeResolver(world_result.zonedb)

    # -- target selection ---------------------------------------------------

    def pick_target(self) -> str | None:
        """A hijackable, unregistered group — preferring .edu/.gov reach.

        Mirrors the paper's target choice: the victim domains must be
        currently delegated to the sacrificial name, and for the
        restricted-TLD demonstration the group should touch .edu/.gov.
        """
        best: tuple[int, int, str] | None = None
        for group in self.study.groups.values():
            if not group.hijackable or group.registered_on(self.day):
                continue
            if not self.world.roster.operates(group.registered_domain):
                continue
            registry = self.world.roster.registry_for(group.registered_domain)
            if registry.repository.domain_exists(group.registered_domain):
                continue
            domains = self._delegated_now(group.registered_domain)
            if not domains:
                continue
            restricted = sum(
                1 for d in domains if Name(d).tld in ("edu", "gov")
            )
            key = (restricted, len(domains), group.registered_domain)
            if best is None or key > best:
                best = key
        return best[2] if best else None

    def _delegated_now(self, registered_domain: str) -> list[str]:
        group = self.study.groups[registered_domain]
        domains: set[str] = set()
        for view in group.nameservers:
            domains |= view.domains_on(self.day)
        return sorted(domains)

    # -- the protocol ----------------------------------------------------------

    def run(self, target: str | None = None) -> ExperimentReport:
        """Execute the full protocol; returns the observation report."""
        target = target or self.pick_target()
        if target is None:
            raise LookupError("no hijackable sacrificial group is available")
        group = self.study.groups[target]
        ns_names = tuple(sorted(view.name for view in group.nameservers))
        delegated = tuple(self._delegated_now(target))
        restricted = tuple(
            d for d in delegated if Name(d).tld in ("edu", "gov")
        )
        report = ExperimentReport(
            sacrificial_domain=target,
            nameservers=ns_names,
            delegated_domains=delegated,
            restricted_tld_domains=restricted,
        )

        # Step 0: before registration, the victims must be lame.
        if delegated:
            pre = self.resolver.resolve(delegated[0], day=self.day)
            report.pre_registration_status = pre.status.value

        # Step 1: defensive registration via an accredited registrar.
        # Exactly like a hijacker, we register the sacrificial domain and
        # create subordinate host objects *for the sacrificial nameserver
        # names themselves*, with glue — so resolvers obtain an address
        # for the renamed nameservers and send the victim-domain queries
        # straight to infrastructure we control.
        registrar = self.world.registrars["bulkreg"]
        result = registrar.register_domain(
            self.world.roster, target, day=self.day,
            nameservers=[], period_years=1, registrant="research",
        )
        if not result.ok:
            raise RuntimeError(f"defensive registration failed: {result.code}")
        registrar.create_subordinate_hosts(
            self.world.roster, target,
            {ns: [f"198.51.100.{10 + i}"] for i, ns in enumerate(ns_names)},
            day=self.day,
        )
        registrar.update_nameservers(
            self.world.roster, target, day=self.day, add=list(ns_names)
        )

        # Step 2: observe queries without ever answering.
        scoped = ScopedBehavior(
            allowed_network=RESEARCH_NETWORK,
            window_start=self.day,
            window_end=self.day + 7,
        )
        for ns in ns_names:
            self.resolver.attach_server(ns, scoped)
        for index, domain in enumerate(delegated):
            self.resolver.resolve(
                domain, day=self.day, source_ip=f"192.0.2.{(index % 250) + 1}"
            )
        report.queries_observed = len(scoped.query_log)
        report.restricted_queries_observed = sum(
            1 for q in scoped.query_log
            if Name(q.qname).tld in ("edu", "gov")
        )

        # Step 3: scoped hijack proof on one victim (an .edu/.gov one if
        # the group reaches a restricted TLD).
        proof_domain = (restricted or delegated)[0] if delegated else None
        if proof_domain is not None:
            scoped.inner.add_record(proof_domain, RRType.A, PROOF_ADDRESS)
            inside = self.resolver.resolve(
                proof_domain, day=self.day, source_ip=INSIDE_IP
            )
            outside = self.resolver.resolve(
                proof_domain, day=self.day, source_ip=OUTSIDE_IP
            )
            report.scoped_answer = inside.answer if inside.ok else []
            report.outside_answer_status = outside.status.value

        # Step 4: ethics — destroy the query logs.
        report.logs_purged = scoped.purge_logs()
        return report


def run_controlled_experiment(
    world_result: WorldResult, study: StudyAnalysis
) -> ExperimentReport:
    """Convenience wrapper used by the example and the benchmark."""
    return ControlledExperiment(world_result, study).run()
