"""End-to-end data verification: the engine behind ``riskybiz verify-data``.

Walks the three kinds of durable state the tool chain writes — datasets
(SQLite file + checksummed manifest), artifact caches (pickles +
checksummed manifests), and run directories (journal + checkpoints +
merged result) — recomputing every recorded SHA-256 and reporting what
does not verify. Verification is read-only: nothing is quarantined or
rewritten here (the loaders do that lazily); this module only *reports*,
so it is safe to run against live data.

Each finding is an :class:`Issue` with a machine-usable kind and a
human-readable detail; an empty list means everything verified.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from dataclasses import dataclass
from pathlib import Path

from repro.store.atomic import (
    IntegrityError,
    QUARANTINE_SUFFIX,
    TMP_SUFFIX,
    file_sha256,
    verify_checked_json,
)

#: Issue kinds, for tests and tooling (values double as report labels).
MISSING = "missing"
CHECKSUM_MISMATCH = "checksum-mismatch"
HASH_MISMATCH = "hash-mismatch"
ORPHANED = "orphaned"
CORRUPT = "corrupt"
QUARANTINED = "quarantined"
INCONSISTENT = "inconsistent"


@dataclass(frozen=True, slots=True)
class Issue:
    """One verification finding."""

    kind: str
    path: str
    detail: str

    def __str__(self) -> str:
        return f"{self.kind}: {self.path}: {self.detail}"


def _quarantine_issues(directory: Path) -> list[Issue]:
    """Report quarantined files lying around (evidence of past corruption)."""
    if not directory.is_dir():
        return []
    return [
        Issue(QUARANTINED, str(path), "quarantined file present (past corruption)")
        for path in sorted(directory.glob(f"*{QUARANTINE_SUFFIX}*"))
    ]


# -- datasets ----------------------------------------------------------------


def verify_dataset(dataset_path: str | Path) -> list[Issue]:
    """Verify one SQLite dataset against its checksummed manifest.

    Checks, in order: manifest presence and content checksum, the
    recorded ``dataset_sha256`` against the file's actual bytes,
    SQLite's own ``PRAGMA integrity_check``, and the manifest's
    domain/nameserver counts against the store's.
    """
    from repro.store.dataset import manifest_path
    from repro.store.sqlite import SqliteDelegationStore

    target = Path(dataset_path)
    issues: list[Issue] = []
    if not target.exists():
        return [Issue(MISSING, str(target), "dataset file does not exist")]
    sidecar = manifest_path(target)
    manifest = None
    if not sidecar.exists():
        issues.append(Issue(MISSING, str(sidecar), "manifest sidecar missing"))
    else:
        try:
            manifest = verify_checked_json(sidecar)
        except IntegrityError as error:
            issues.append(Issue(CHECKSUM_MISMATCH, str(sidecar), str(error)))
    # Hash before opening: connecting must not perturb the verified bytes.
    actual = file_sha256(target)
    if manifest is not None:
        recorded = manifest.get("dataset_sha256")
        if recorded is not None and recorded != actual:
            issues.append(
                Issue(
                    HASH_MISMATCH,
                    str(target),
                    f"dataset bytes hash {actual[:12]}…, manifest says "
                    f"{str(recorded)[:12]}…",
                )
            )
    store = SqliteDelegationStore(target)
    try:
        for problem in store.integrity_check():
            issues.append(Issue(CORRUPT, str(target), f"sqlite: {problem}"))
        if manifest is not None:
            counts = {
                "domains": store.domain_count(),
                "nameservers": store.nameserver_count(),
            }
            for key, actual_count in counts.items():
                recorded_count = manifest.get(key)
                if recorded_count is not None and recorded_count != actual_count:
                    issues.append(
                        Issue(
                            INCONSISTENT,
                            str(target),
                            f"{key}: store has {actual_count}, manifest "
                            f"says {recorded_count}",
                        )
                    )
    finally:
        store.close()
    issues.extend(_quarantine_issues(target.parent))
    return issues


# -- artifact caches ---------------------------------------------------------


def artifact_entry_count(root: str | Path) -> int:
    """Number of (non-quarantined) artifact manifests under ``root``.

    The same filter :func:`verify_artifact_dir` scans with, exposed so
    callers can summarize the cache ("N entries checked") without
    re-verifying it.
    """
    directory = Path(root)
    if not directory.is_dir():
        return 0
    return sum(
        1
        for path in directory.glob("*.json")
        if QUARANTINE_SUFFIX not in path.name
        and not path.name.endswith(TMP_SUFFIX)
        and not path.name.endswith(".manifest.json")
    )


def verify_artifact_dir(root: str | Path) -> list[Issue]:
    """Verify every entry of an on-disk artifact cache directory.

    Each ``<stem>.json`` manifest must checksum-verify and point at an
    existing ``<stem>.pkl`` whose bytes hash to its ``artifact_sha256``;
    pickles without a manifest are reported as orphans.
    """
    directory = Path(root)
    issues: list[Issue] = []
    if not directory.is_dir():
        return [Issue(MISSING, str(directory), "artifact directory does not exist")]
    manifests = sorted(
        path
        for path in directory.glob("*.json")
        if QUARANTINE_SUFFIX not in path.name
        and not path.name.endswith(TMP_SUFFIX)
        and not path.name.endswith(".manifest.json")  # dataset sidecars
    )
    claimed: set[str] = set()
    for sidecar in manifests:
        try:
            manifest = verify_checked_json(sidecar)
        except IntegrityError as error:
            issues.append(Issue(CHECKSUM_MISMATCH, str(sidecar), str(error)))
            continue
        artifact_name = manifest.get("artifact")
        if not isinstance(artifact_name, str):
            issues.append(
                Issue(INCONSISTENT, str(sidecar), "manifest names no artifact")
            )
            continue
        claimed.add(artifact_name)
        artifact = directory / artifact_name
        if not artifact.exists():
            issues.append(
                Issue(ORPHANED, str(sidecar), f"artifact {artifact_name} missing")
            )
            continue
        recorded = manifest.get("artifact_sha256")
        if recorded is not None:
            actual = file_sha256(artifact)
            if actual != recorded:
                issues.append(
                    Issue(
                        HASH_MISMATCH,
                        str(artifact),
                        f"bytes hash {actual[:12]}…, manifest says "
                        f"{str(recorded)[:12]}…",
                    )
                )
    for pkl in sorted(directory.glob("*.pkl")):
        if QUARANTINE_SUFFIX in pkl.name or pkl.name.endswith(TMP_SUFFIX):
            continue
        if pkl.name not in claimed:
            issues.append(
                Issue(ORPHANED, str(pkl), "artifact has no manifest sidecar")
            )
    issues.extend(_quarantine_issues(directory))
    return issues


# -- run directories ---------------------------------------------------------


def verify_run_dir(run_dir: str | Path) -> list[Issue]:
    """Verify a supervised run directory: journal, checkpoints, result.

    Replays the journal (reporting corruption rather than raising),
    recomputes every checkpoint SHA-256 the journal recorded for a
    completed shard, and — when the run durably completed — verifies
    the merged result's bytes and manifest.
    """
    from repro.runner.execution import (
        JOURNAL_NAME,
        RESULT_MANIFEST_NAME,
        RESULT_NAME,
    )
    from repro.runner.journal import JournalCorruption, RunJournal

    directory = Path(run_dir)
    issues: list[Issue] = []
    journal_path = directory / JOURNAL_NAME
    if not journal_path.exists():
        return [Issue(MISSING, str(journal_path), "run journal does not exist")]
    try:
        journal = RunJournal.open(journal_path)
    except JournalCorruption as error:
        return [Issue(CORRUPT, str(journal_path), str(error))]

    checkpoint_dir = directory / "checkpoints"
    for index, payload in sorted(journal.completed_shards().items()):
        recorded = payload.get("checkpoint_sha256")
        matches = sorted(checkpoint_dir.glob(f"shard-{index:04d}-of-*.pkl"))
        if not matches:
            issues.append(
                Issue(
                    MISSING,
                    str(checkpoint_dir),
                    f"shard {index} journaled complete but has no checkpoint",
                )
            )
            continue
        for path in matches:
            actual = file_sha256(path)
            if recorded is not None and actual != recorded:
                issues.append(
                    Issue(
                        HASH_MISMATCH,
                        str(path),
                        f"bytes hash {actual[:12]}…, journal says "
                        f"{str(recorded)[:12]}…",
                    )
                )
            else:
                try:
                    pickle.loads(path.read_bytes())
                except Exception as error:
                    issues.append(
                        Issue(CORRUPT, str(path), f"unreadable checkpoint: {error}")
                    )

    complete = journal.run_complete
    if complete is not None:
        result_path = directory / RESULT_NAME
        if not result_path.exists():
            issues.append(
                Issue(
                    MISSING,
                    str(result_path),
                    "run journaled complete but result file missing",
                )
            )
        else:
            actual = hashlib.sha256(result_path.read_bytes()).hexdigest()
            recorded = complete.payload.get("result_sha256")
            if recorded is not None and actual != recorded:
                issues.append(
                    Issue(
                        HASH_MISMATCH,
                        str(result_path),
                        f"bytes hash {actual[:12]}…, journal says "
                        f"{str(recorded)[:12]}…",
                    )
                )
        manifest_file = directory / RESULT_MANIFEST_NAME
        if manifest_file.exists():
            try:
                manifest = verify_checked_json(manifest_file)
            except IntegrityError as error:
                issues.append(
                    Issue(CHECKSUM_MISMATCH, str(manifest_file), str(error))
                )
            else:
                if manifest.get("result_digest") != complete.payload.get(
                    "result_digest"
                ):
                    issues.append(
                        Issue(
                            INCONSISTENT,
                            str(manifest_file),
                            "manifest result_digest disagrees with journal",
                        )
                    )
    issues.extend(_quarantine_issues(directory))
    issues.extend(_quarantine_issues(checkpoint_dir))
    return issues


def render_issues(issues: list[Issue]) -> str:
    """Human-readable report (one line per issue, or an all-clear)."""
    if not issues:
        return "verify-data: all checks passed"
    lines = [f"verify-data: {len(issues)} issue(s)"]
    lines.extend(f"  {issue}" for issue in issues)
    return "\n".join(lines)


def issues_as_json(issues: list[Issue]) -> str:
    """The findings as a JSON document (for tooling/CI)."""
    return json.dumps(
        [
            {"kind": issue.kind, "path": issue.path, "detail": issue.detail}
            for issue in issues
        ],
        indent=2,
        sort_keys=True,
    )
