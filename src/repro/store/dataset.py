"""On-disk datasets, their manifests, and sharded views over them.

A *dataset* is one SQLite delegation store plus a JSON manifest sidecar
that records the scenario digest it was produced from — so a later
``riskybiz detect`` run can verify it is analyzing the simulate output
it thinks it is (and ``riskybiz lint`` can flag manifests that lost
their digest).

A :class:`DatasetView` is what the detection pipeline's stages consume:
a zone database + WHOIS archive scoped to one :class:`ShardSpec` — a
deterministic per-nameserver partition assigned via
:func:`~repro.faults.rng.stable_hash`, so shard membership is stable
across processes and runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

from repro.store.atomic import (
    file_sha256,
    load_checked_json,
    write_checked_json,
)
from repro.store.base import DOMAIN, GLUE
from repro.store.changelog import DeltaEvent, group_batches
from repro.store.sqlite import SqliteDelegationStore

if TYPE_CHECKING:
    from repro.whois.archive import WhoisArchive
    from repro.zonedb.database import IngestPolicy, ZoneDatabase

#: Format tag carried by dataset manifest sidecars.
DATASET_FORMAT = "riskybiz-dataset/1"

#: Store metadata key holding the producing scenario's digest.
SCENARIO_DIGEST_KEY = "scenario_digest"


@dataclass(frozen=True, slots=True)
class ShardSpec:
    """One deterministic nameserver shard out of ``count``.

    Assignment is ``stable_hash(ns) % count == index``: process-stable,
    backend-independent, and a true partition (every nameserver belongs
    to exactly one shard).
    """

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"shard count must be >= 1, got {self.count}")
        if not 0 <= self.index < self.count:
            raise ValueError(
                f"shard index {self.index} outside [0, {self.count})"
            )

    def owns(self, ns: str) -> bool:
        """True if ``ns`` belongs to this shard."""
        # Imported lazily: repro.faults pulls in the resolver stack, which
        # itself imports the zonedb façade built on this package.
        from repro.faults.rng import stable_hash

        return stable_hash(ns) % self.count == self.index

    @classmethod
    def partition(cls, count: int) -> tuple["ShardSpec", ...]:
        """All shards of a ``count``-way partition, in index order."""
        if count < 1:
            raise ValueError(f"shard count must be >= 1, got {count}")
        return tuple(cls(index, count) for index in range(count))


@dataclass(frozen=True)
class DatasetView:
    """The slice of a dataset one pipeline stage run consumes.

    With ``shard is None`` the view is the whole dataset; otherwise
    nameserver iteration (and the population count) is restricted to the
    shard. Domain-side and WHOIS lookups are never shard-filtered: a
    shard owns *nameservers*, but classifying one may require the full
    delegation history of any domain that referenced it.
    """

    zonedb: "ZoneDatabase"
    whois: "WhoisArchive"
    shard: ShardSpec | None = None

    def nameservers(self) -> Iterator[str]:
        """Nameservers in this view, in the backend's iteration order."""
        if self.shard is None:
            yield from self.zonedb.all_nameservers()
            return
        for ns in self.zonedb.all_nameservers():
            if self.shard.owns(ns):
                yield ns

    def nameserver_count(self) -> int:
        """Number of nameservers in this view (shard population)."""
        if self.shard is None:
            return self.zonedb.nameserver_count()
        return sum(1 for _ in self.nameservers())

    def scenario_digest(self) -> str | None:
        """Digest of the scenario this dataset was produced from."""
        return self.zonedb.store.get_meta(SCENARIO_DIGEST_KEY)

    def delta_view(
        self, *, since: int | None = None, until: int | None = None
    ) -> "DeltaView":
        """The windowed delta stream of this view's dataset."""
        return DeltaView(self.zonedb, since=since, until=until)


@dataclass(frozen=True)
class DeltaView:
    """A windowed, batched view over a dataset's recorded delta stream.

    The incremental engine consumes history through this: per-day
    batches of :class:`~repro.store.changelog.DeltaEvent`, restricted
    to batch days in ``(since, until]``. ``since`` is a consumer
    watermark — ``None`` means "from the beginning"; ``until=None``
    runs to the end of the recorded stream.
    """

    zonedb: "ZoneDatabase"
    since: int | None = None
    until: int | None = None

    def deltas(self) -> list[tuple[int, DeltaEvent]]:
        """The raw (batch_day, event) pairs inside the window."""
        deltas = self.zonedb.store.deltas_since(self.since)
        if self.until is not None:
            deltas = [(d, event) for d, event in deltas if d <= self.until]
        return deltas

    def batches(self) -> list[tuple[int, list[DeltaEvent]]]:
        """Per-day event batches inside the window, in day order."""
        return group_batches(self.deltas())

    def last_batch_day(self) -> int | None:
        """The final batch day inside the window, if any."""
        deltas = self.deltas()
        return deltas[-1][0] if deltas else None

    def __len__(self) -> int:
        return len(self.deltas())


def manifest_path(dataset_path: str | Path) -> Path:
    """The manifest sidecar path for a dataset file."""
    path = Path(dataset_path)
    return path.with_name(path.name + ".manifest.json")


def write_dataset(
    zonedb: "ZoneDatabase",
    path: str | Path,
    *,
    scenario_digest: str | None = None,
) -> Path:
    """Persist a zone database as an on-disk SQLite dataset.

    Copies every delegation interval and presence history into a fresh
    SQLite store at ``path``, carries the façade state (covered TLDs,
    horizon, ingest reports) across, stamps the producing scenario's
    digest, and writes the manifest sidecar. Returns ``path``.
    """
    target_path = Path(path)
    target_path.parent.mkdir(parents=True, exist_ok=True)
    if target_path.exists():
        target_path.unlink()
    source = zonedb.store
    target = SqliteDelegationStore(target_path)
    for domain in source.all_domains():
        for record in source.domain_records(domain):
            target.add_record(record.domain, record.ns, record.start, record.end)
    for kind in (GLUE, DOMAIN):
        for key in source.presence_keys(kind):
            for interval in source.presence_intervals(kind, key):
                target.add_presence(kind, key, interval.start, interval.end)
    # Carry the delta stream across so incremental consumers can replay
    # the dataset's history (record-only: the intervals are copied above).
    delta_count = 0
    for batch_day, event in source.deltas_since(None):
        target.record_delta(event, batch_day)
        delta_count += 1
    # The façade's flush() serializes its state into its own store's
    # metadata; route that serialization into the target store.
    zonedb.flush()
    facade_meta = source.get_meta(zonedb._META_KEY)
    if facade_meta is not None:
        target.set_meta(zonedb._META_KEY, facade_meta)
    if scenario_digest is not None:
        target.set_meta(SCENARIO_DIGEST_KEY, scenario_digest)
    manifest = {
        "format": DATASET_FORMAT,
        "backend": target.backend_name,
        "dataset": target_path.name,
        "scenario_digest": scenario_digest,
        "domains": zonedb.domain_count(),
        "nameservers": zonedb.nameserver_count(),
        "horizon": zonedb.horizon,
        "tlds": sorted(zonedb.covered_tlds),
        "deltas": delta_count,
    }
    target.close()
    # Hash after close: the WAL is truncated into the main file, so the
    # digest covers the complete, self-contained dataset bytes.
    manifest["dataset_sha256"] = file_sha256(target_path)
    write_checked_json(manifest_path(target_path), manifest)
    return target_path


def rebuild_manifest(dataset_path: str | Path) -> dict[str, Any]:
    """Recompute a dataset's manifest from the dataset itself.

    Used when the manifest sidecar is missing or failed its checksum
    (the corrupt file has already been quarantined): everything in the
    manifest is derivable from the store, so integrity failures of the
    *sidecar* never invalidate the dataset. Writes the fresh manifest
    and returns its payload.
    """
    from repro.zonedb.database import ZoneDatabase

    target_path = Path(dataset_path)
    store = SqliteDelegationStore(target_path)
    try:
        zonedb = ZoneDatabase(store=store)
        manifest = {
            "format": DATASET_FORMAT,
            "backend": store.backend_name,
            "dataset": target_path.name,
            "scenario_digest": store.get_meta(SCENARIO_DIGEST_KEY),
            "domains": zonedb.domain_count(),
            "nameservers": zonedb.nameserver_count(),
            "horizon": zonedb.horizon,
            "tlds": sorted(zonedb.covered_tlds),
            "deltas": len(store.deltas_since(None)),
        }
    finally:
        store.close()
    manifest["dataset_sha256"] = file_sha256(target_path)
    write_checked_json(manifest_path(target_path), manifest)
    return manifest


def load_manifest(dataset_path: str | Path) -> dict[str, Any]:
    """The verified manifest for a dataset, recomputed if corrupt.

    A manifest that fails its content checksum is quarantined
    (``*.corrupt``) and rebuilt from the dataset; a missing manifest is
    simply rebuilt. The returned payload always verifies.
    """
    sidecar = manifest_path(dataset_path)
    if sidecar.exists():
        body = load_checked_json(sidecar)
        if body is not None:
            return body
    return rebuild_manifest(dataset_path)


def open_dataset(
    path: str | Path, *, ingest_policy: "IngestPolicy | None" = None
) -> "ZoneDatabase":
    """Open an on-disk dataset as a zone database (SQLite backend).

    The manifest sidecar is verified against its embedded checksum
    before the dataset is trusted; a corrupt sidecar is quarantined and
    recomputed from the store (deep dataset-content verification is
    ``riskybiz verify-data``'s job — opening only guards the cheap
    invariants).
    """
    from repro.zonedb.database import ZoneDatabase

    dataset_path = Path(path)
    if not dataset_path.exists():
        raise FileNotFoundError(f"no dataset at {dataset_path}")
    if manifest_path(dataset_path).exists():
        load_manifest(dataset_path)  # verify; quarantine-and-recompute
    store = SqliteDelegationStore(dataset_path)
    return ZoneDatabase(store=store, ingest_policy=ingest_policy)
