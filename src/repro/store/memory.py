"""The in-memory delegation store (the seed structure, behind the protocol).

This is the structure the simulator's zone mirrors write into and the
structure every pre-refactor result was computed against, so its
iteration orders are preserved exactly: ``all_nameservers`` /
``all_domains`` yield first-seen (insertion) order, and record lists
keep open order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.simtime import Interval
from repro.store.base import (
    DOMAIN,
    GLUE,
    DelegationRecord,
    PresenceHistory,
    dispatch_delta,
)

if TYPE_CHECKING:
    from repro.store.changelog import DeltaEvent


class MemoryDelegationStore:
    """Dict-of-intervals backend; fast, volatile, insertion-ordered."""

    backend_name = "memory"

    def __init__(self) -> None:
        self._domain_recs: dict[str, list[DelegationRecord]] = {}
        self._ns_recs: dict[str, list[DelegationRecord]] = {}
        self._open: dict[tuple[str, str], DelegationRecord] = {}
        self._current: dict[str, set[str]] = {}
        self._presence: dict[str, PresenceHistory] = {
            GLUE: PresenceHistory(),
            DOMAIN: PresenceHistory(),
        }
        self._meta: dict[str, str] = {}
        self._deltas: list[tuple[int, "DeltaEvent"]] = []

    # -- pair intervals ----------------------------------------------------

    def open_pair(self, domain: str, ns: str, day: int) -> None:
        record = DelegationRecord(domain, ns, day)
        self._open[(domain, ns)] = record
        self._domain_recs.setdefault(domain, []).append(record)
        self._ns_recs.setdefault(ns, []).append(record)
        self._current.setdefault(domain, set()).add(ns)

    def close_pair(self, domain: str, ns: str, day: int) -> None:
        record = self._open.pop((domain, ns), None)
        if record is None:
            return
        current = self._current.get(domain)
        if current is not None:
            current.discard(ns)
            if not current:
                del self._current[domain]
        if day <= record.start:
            # Added and removed within one day: invisible to daily zone
            # snapshots, so it must not exist in the interval history.
            self._domain_recs[domain].remove(record)
            if not self._domain_recs[domain]:
                del self._domain_recs[domain]
            self._ns_recs[ns].remove(record)
            if not self._ns_recs[ns]:
                del self._ns_recs[ns]
            return
        record.end = day

    def add_record(self, domain: str, ns: str, start: int, end: int | None) -> None:
        record = DelegationRecord(domain, ns, start, end)
        self._domain_recs.setdefault(domain, []).append(record)
        self._ns_recs.setdefault(ns, []).append(record)
        if end is None:
            self._open[(domain, ns)] = record
            self._current.setdefault(domain, set()).add(ns)

    def current_nameservers(self, domain: str) -> frozenset[str]:
        return frozenset(self._current.get(domain, ()))

    def current_domains(self, suffix: str | None = None) -> list[str]:
        if suffix is None:
            return list(self._current)
        return [domain for domain in self._current if domain.endswith(suffix)]

    # -- pair queries ------------------------------------------------------

    def all_nameservers(self) -> Iterator[str]:
        return iter(self._ns_recs)

    def all_domains(self) -> Iterator[str]:
        return iter(self._domain_recs)

    def nameserver_count(self) -> int:
        return len(self._ns_recs)

    def domain_count(self) -> int:
        return len(self._domain_recs)

    def ns_records(self, ns: str) -> list[DelegationRecord]:
        return list(self._ns_recs.get(ns, ()))

    def domain_records(self, domain: str) -> list[DelegationRecord]:
        return list(self._domain_recs.get(domain, ()))

    def domains_in_tld(self, tld: str) -> list[str]:
        suffix = "." + tld
        return [domain for domain in self._domain_recs if domain.endswith(suffix)]

    def partitions(self) -> list[str]:
        return sorted({domain.rsplit(".", 1)[-1] for domain in self._domain_recs})

    # -- presence histories ------------------------------------------------

    def open_presence(self, kind: str, key: str, day: int) -> None:
        self._presence[kind].open(key, day)

    def close_presence(self, kind: str, key: str, day: int) -> None:
        self._presence[kind].close(key, day)

    def add_presence(self, kind: str, key: str, start: int, end: int | None) -> None:
        self._presence[kind].add(key, start, end)

    def presence_contains(self, kind: str, key: str, day: int) -> bool:
        return self._presence[kind].is_present(key, day)

    def presence_intervals(self, kind: str, key: str) -> list[Interval]:
        return self._presence[kind].intervals(key)

    def presence_keys(self, kind: str) -> Iterator[str]:
        return self._presence[kind].keys()

    def presence_open(self, kind: str, key: str) -> bool:
        return self._presence[kind].is_open(key)

    # -- delta tracking ----------------------------------------------------

    def apply_delta(self, event: "DeltaEvent", batch_day: int) -> None:
        self.record_delta(event, batch_day)
        dispatch_delta(self, event)

    def record_delta(self, event: "DeltaEvent", batch_day: int) -> None:
        self._deltas.append((batch_day, event))

    def deltas_since(self, day: int | None) -> list[tuple[int, "DeltaEvent"]]:
        if day is None:
            return list(self._deltas)
        return [(d, event) for d, event in self._deltas if d > day]

    # -- metadata / lifecycle ----------------------------------------------

    def get_meta(self, key: str) -> str | None:
        return self._meta.get(key)

    def set_meta(self, key: str, value: str) -> None:
        self._meta[key] = value

    def flush(self) -> None:  # volatile: nothing to persist
        return None

    def close(self) -> None:
        return None
