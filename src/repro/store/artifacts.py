"""Content-addressed artifact cache for expensive reproduction stages.

Artifacts (simulated worlds, pipeline results, full bundles) are keyed
by the SHA-256 digest of a canonical-JSON description of *what produced
them*: the scenario configuration plus the producing stage's options.
Two runs that would compute the same thing therefore share one cache
entry — and any change to the scenario or options changes the key, so
stale artifacts can never be served for a different configuration.

The cache is a bounded in-memory LRU with an optional disk layer: when
constructed with a ``root`` directory, artifacts are pickled under it
next to a JSON manifest that records the producing scenario digest
(checked by ``riskybiz lint``). Entries that cannot pickle are simply
kept memory-only; the disk layer is an accelerator, never a correctness
dependency.

Disk entries are crash-safe and self-verifying: both files are written
through :mod:`repro.store.atomic`, the manifest carries its own content
checksum plus the SHA-256 of the pickled artifact bytes, and a load
whose bytes do not hash to the manifest's record is quarantined and
treated as a miss — corruption is surfaced to ``riskybiz verify-data``
and recomputed, never silently served.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.obs import runtime as obs
from repro.store.atomic import (
    atomic_write_bytes,
    load_checked_json,
    quarantine,
    write_checked_json,
)

#: Format tag carried by artifact manifest sidecars.
ARTIFACT_FORMAT = "riskybiz-artifact/1"

#: Default bound on in-memory cached artifacts per cache instance.
DEFAULT_CAPACITY = 16


def content_digest(payload: Any) -> str:
    """SHA-256 of the canonical JSON encoding of ``payload``.

    Canonical means sorted keys and compact separators, so logically
    equal payloads digest identically regardless of construction order.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def scenario_digest(config: Any) -> str:
    """Digest of a :class:`~repro.ecosystem.config.ScenarioConfig`."""
    from repro.ecosystem.scenario_io import scenario_to_dict

    return content_digest(scenario_to_dict(config))


@dataclass(frozen=True, slots=True)
class ArtifactKey:
    """Identity of one cached artifact.

    ``digest`` covers the kind, the producing scenario, and the options
    dict, so it alone addresses the artifact; ``kind`` and
    ``scenario`` ride along for filenames and manifests.
    """

    kind: str
    scenario: str
    digest: str

    @classmethod
    def build(
        cls, kind: str, scenario: str, options: dict[str, Any] | None = None
    ) -> "ArtifactKey":
        """Key for an artifact of ``kind`` produced from ``scenario``."""
        digest = content_digest(
            {"kind": kind, "scenario": scenario, "options": options or {}}
        )
        return cls(kind=kind, scenario=scenario, digest=digest)

    @property
    def basename(self) -> str:
        """Stable on-disk stem for this artifact's files."""
        return f"{self.kind}-{self.digest[:32]}"


class ArtifactCache:
    """Bounded LRU of artifacts with optional disk persistence."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        root: str | Path | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.root = Path(root) if root is not None else None
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: ArtifactKey) -> bool:
        return key.digest in self._entries

    def stats(self) -> dict[str, int]:
        """This cache's hit/miss/quarantine counts as a plain dict."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "quarantined": self.quarantined,
            "entries": len(self._entries),
        }

    def get(self, key: ArtifactKey) -> Any | None:
        """The cached artifact, or None. Checks memory, then disk."""
        if key.digest in self._entries:
            self.hits += 1
            obs.counter("artifact_cache.hits").inc()
            self._entries.move_to_end(key.digest)
            return self._entries[key.digest]
        value = self._disk_load(key)
        if value is not None:
            self.hits += 1
            obs.counter("artifact_cache.hits").inc()
            self._remember(key, value)
            return value
        self.misses += 1
        obs.counter("artifact_cache.misses").inc()
        return None

    def put(self, key: ArtifactKey, value: Any, *, memory_only: bool = False) -> None:
        """Cache an artifact; spill to disk unless ``memory_only``."""
        self._remember(key, value)
        if not memory_only:
            self._disk_store(key, value)

    def get_or_create(
        self,
        key: ArtifactKey,
        builder: Callable[[], Any],
        *,
        memory_only: bool = False,
    ) -> Any:
        """The cached artifact, building (and caching) it on a miss."""
        value = self.get(key)
        if value is None:
            value = builder()
            self.put(key, value, memory_only=memory_only)
        return value

    def clear(self) -> None:
        """Drop every in-memory entry (disk artifacts are kept)."""
        self._entries.clear()

    def _remember(self, key: ArtifactKey, value: Any) -> None:
        self._entries[key.digest] = value
        self._entries.move_to_end(key.digest)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    # -- disk layer ---------------------------------------------------------

    def _artifact_path(self, key: ArtifactKey) -> Path | None:
        if self.root is None:
            return None
        return self.root / f"{key.basename}.pkl"

    def manifest_path(self, key: ArtifactKey) -> Path | None:
        """Where this artifact's manifest sidecar lives (None: no disk)."""
        if self.root is None:
            return None
        return self.root / f"{key.basename}.json"

    def _disk_store(self, key: ArtifactKey, value: Any) -> None:
        path = self._artifact_path(key)
        if path is None:
            return
        try:
            payload = pickle.dumps(value)
        except Exception:
            return  # unpicklable artifacts stay memory-only
        atomic_write_bytes(path, payload)
        manifest = {
            "format": ARTIFACT_FORMAT,
            "kind": key.kind,
            "digest": key.digest,
            "scenario_digest": key.scenario,
            "artifact": path.name,
            "artifact_sha256": hashlib.sha256(payload).hexdigest(),
        }
        manifest_file = self.manifest_path(key)
        assert manifest_file is not None
        write_checked_json(manifest_file, manifest)

    def _disk_load(self, key: ArtifactKey) -> Any | None:
        path = self._artifact_path(key)
        if path is None or not path.exists():
            return None
        payload = path.read_bytes()
        manifest_file = self.manifest_path(key)
        assert manifest_file is not None
        if manifest_file.exists():
            manifest = load_checked_json(manifest_file)  # quarantines if bad
            if manifest is not None:
                recorded = manifest.get("artifact_sha256")
                actual = hashlib.sha256(payload).hexdigest()
                if isinstance(recorded, str) and recorded != actual:
                    # The artifact bytes are not what was written:
                    # quarantine both halves and recompute on miss.
                    quarantine(path)
                    quarantine(manifest_file)
                    self.quarantined += 1
                    obs.counter("artifact_cache.quarantined").inc()
                    return None
        try:
            return pickle.loads(payload)
        except Exception:
            return None  # corrupt cache entry: treat as a miss


_DEFAULT_CACHE = ArtifactCache()


def default_cache() -> ArtifactCache:
    """The process-wide artifact cache (memory-only unless given a root)."""
    return _DEFAULT_CACHE
