"""Store-layer benchmark harness: ``python -m repro.store.bench``.

Measures the costs the layered dataset architecture trades between:

* **ingest throughput** — synthetic daily snapshot churn driven through
  the ZoneDatabase façade into each backend (pairs opened+closed per
  second);
* **query latency** — ``ns_records`` lookups per backend over the
  ingested history (the detection pipeline's hottest store call);
* **pipeline wall-time** — the full §3 funnel over one simulated world,
  unsharded versus sharded.

Results land in ``BENCH_store.json`` so successive commits have a perf
trajectory to compare against. Timings read :mod:`repro.obs.clock`
(the sanctioned duration-clock funnel — raw ``time.perf_counter`` is
banned outside ``repro.obs`` by lint rule DET009) and are mirrored into
the obs metrics registry, whose snapshot rides along in the report's
``metrics`` key. Progress lines go through the obs
:class:`~repro.obs.reporters.TextReporter` rather than bare prints.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Any, Callable

from repro.obs import clock
from repro.obs import runtime as obs
from repro.obs.reporters import TextReporter
from repro.store.memory import MemoryDelegationStore
from repro.store.sqlite import SqliteDelegationStore


def _make_store(backend: str, tmp_dir: Path | None):
    if backend == "sqlite":
        if tmp_dir is None:
            return SqliteDelegationStore(":memory:")
        return SqliteDelegationStore(tmp_dir / "bench.sqlite")
    return MemoryDelegationStore()


def _synthetic_schedule(domains: int, days: int) -> list[tuple[int, str, str]]:
    """(day, domain, ns) churn events: every domain re-delegates daily."""
    events = []
    for day in range(days):
        for i in range(domains):
            events.append((day, f"d{i}.biz", f"ns{(i + day) % (domains // 2 or 1)}.x.com"))
    return events


def bench_ingest(
    backend: str, *, domains: int, days: int, tmp_dir: Path | None
) -> tuple[dict[str, Any], Any]:
    """Open/close churn throughput through the façade (result, database)."""
    from repro.zonedb.database import ZoneDatabase

    events = _synthetic_schedule(domains, days)
    db = ZoneDatabase(["biz"], store=_make_store(backend, tmp_dir))
    started = clock.perf_counter()
    for day, domain, ns in events:
        db.set_delegation(day, domain, [ns])
    db.flush()
    elapsed = clock.perf_counter() - started
    obs.histogram(f"bench.ingest.{backend}.duration_s").observe(elapsed)
    result = {
        "backend": backend,
        "events": len(events),
        "seconds": round(elapsed, 6),
        "events_per_second": round(len(events) / elapsed, 1) if elapsed else None,
    }
    return result, db


def bench_ns_records(db, *, backend: str, rounds: int) -> dict[str, Any]:
    """Per-call latency of the pipeline's hottest query."""
    nameservers = list(db.all_nameservers())
    if not nameservers:
        return {"calls": 0}
    started = clock.perf_counter()
    calls = 0
    for _ in range(rounds):
        for ns in nameservers:
            db.ns_records(ns)
            calls += 1
    elapsed = clock.perf_counter() - started
    obs.histogram(f"bench.ns_records.{backend}.duration_s").observe(elapsed)
    return {
        "calls": calls,
        "seconds": round(elapsed, 6),
        "microseconds_per_call": round(elapsed / calls * 1e6, 2) if calls else None,
    }


def bench_pipeline(*, seed: int, scale: float, shards: int) -> dict[str, Any]:
    """Full §3 funnel wall-time, unsharded vs sharded, same world."""
    from repro.detection.pipeline import DetectionPipeline
    from repro.ecosystem.world import run_default_world

    world = run_default_world(seed=seed, scale=scale)

    def timed(label: str, run: Callable[[], Any]) -> float:
        started = clock.perf_counter()
        run()
        elapsed = clock.perf_counter() - started
        obs.histogram(f"bench.pipeline.{label}.duration_s").observe(elapsed)
        return elapsed

    unsharded = timed(
        "unsharded",
        lambda: DetectionPipeline(
            world.zonedb, world.whois, mine_patterns=False
        ).run(),
    )
    sharded = timed(
        "sharded",
        lambda: DetectionPipeline(
            world.zonedb, world.whois, mine_patterns=False, shards=shards
        ).run(),
    )
    return {
        "seed": seed,
        "scale": scale,
        "shards": shards,
        "unsharded_seconds": round(unsharded, 3),
        "sharded_seconds": round(sharded, 3),
    }


def bench_incremental(
    *, seed: int, scale: float, tmp_dir: Path | None
) -> dict[str, Any]:
    """Final-day incremental advance versus a full batch re-run.

    The daily-update cost model: with N days of history already folded
    into a standing engine, what does folding day N+1 and reproducing
    the result cost, compared to re-running the whole batch pipeline?
    Runs on both engine backends and records the batch/incremental
    result digests, so the report doubles as an equivalence check.
    """
    from repro.detection.incremental import IncrementalDetectionEngine
    from repro.detection.pipeline import DetectionPipeline
    from repro.ecosystem.world import run_default_world
    from repro.runner.execution import result_digest
    from repro.store.dataset import DeltaView

    world = run_default_world(seed=seed, scale=scale)
    zonedb, whois = world.zonedb, world.whois

    started = clock.perf_counter()
    batch = DetectionPipeline(zonedb, whois, mine_patterns=False).run()
    batch_seconds = clock.perf_counter() - started
    obs.histogram("bench.incremental.batch.duration_s").observe(batch_seconds)
    batch_digest = result_digest(batch)

    batches = DeltaView(zonedb).batches()
    final_day, final_events = batches[-1]
    backends: list[dict[str, Any]] = []
    for backend in ("memory", "sqlite"):
        if backend == "sqlite":
            store_path = (
                tmp_dir / f"bench-engine-{backend}.sqlite"
                if tmp_dir is not None
                else ":memory:"
            )
        else:
            store_path = None
        engine = IncrementalDetectionEngine(
            whois, backend=backend, store_path=store_path, mine_patterns=False
        )
        started = clock.perf_counter()
        for day, events in batches[:-1]:
            engine.advance(day, events)
        history_seconds = clock.perf_counter() - started
        engine.result()  # the standing run folds daily, so arrive warm
        started = clock.perf_counter()
        engine.advance(final_day, final_events)
        incremental = engine.result()
        final_day_seconds = clock.perf_counter() - started
        obs.histogram(
            f"bench.incremental.{backend}.final_day_s"
        ).observe(final_day_seconds)
        backends.append({
            "backend": backend,
            "days": len(batches),
            "history_seconds": round(history_seconds, 3),
            "final_day_seconds": round(final_day_seconds, 6),
            "speedup_vs_batch": (
                round(batch_seconds / final_day_seconds, 1)
                if final_day_seconds
                else None
            ),
            "digest_matches_batch": result_digest(incremental) == batch_digest,
        })
    return {
        "seed": seed,
        "scale": scale,
        "batch_seconds": round(batch_seconds, 3),
        "batch_digest": batch_digest,
        "backends": backends,
    }


def run_incremental_benchmarks(
    *, seed: int = 2021, scale: float = 0.1, tmp_dir: Path | None = None
) -> dict[str, Any]:
    """The incremental-engine benchmark as one JSON-ready document."""
    obs.reset_metrics()
    report: dict[str, Any] = {
        "format": "riskybiz-bench-incremental/1",
        "parameters": {"seed": seed, "scale": scale},
    }
    report["incremental"] = bench_incremental(
        seed=seed, scale=scale, tmp_dir=tmp_dir
    )
    report["metrics"] = obs.metrics().snapshot()
    return report


def run_benchmarks(
    *,
    domains: int = 200,
    days: int = 30,
    query_rounds: int = 20,
    seed: int = 2021,
    scale: float = 0.1,
    shards: int = 4,
    tmp_dir: Path | None = None,
) -> dict[str, Any]:
    """All store benchmarks as one JSON-ready document.

    The registry is reset first so the embedded ``metrics`` snapshot
    covers exactly this benchmark run (bench histograms plus whatever
    the instrumented store/pipeline hot paths record underneath).
    """
    obs.reset_metrics()
    report: dict[str, Any] = {
        "format": "riskybiz-bench-store/1",
        "parameters": {
            "domains": domains,
            "days": days,
            "query_rounds": query_rounds,
            "seed": seed,
            "scale": scale,
            "shards": shards,
        },
        "ingest": [],
        "ns_records": [],
    }
    for backend in ("memory", "sqlite"):
        ingest, db = bench_ingest(
            backend, domains=domains, days=days, tmp_dir=tmp_dir
        )
        report["ingest"].append(ingest)
        query = bench_ns_records(db, backend=backend, rounds=query_rounds)
        query["backend"] = backend
        report["ns_records"].append(query)
        db.close()
    report["pipeline"] = bench_pipeline(seed=seed, scale=scale, shards=shards)
    report["metrics"] = obs.metrics().snapshot()
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store.bench",
        description="Benchmark the delegation-store backends and the "
        "sharded detection pipeline; write BENCH_store.json.",
    )
    parser.add_argument(
        "--out", default=None,
        help="output path (default: BENCH_store.json, or "
        "BENCH_incremental.json with --incremental)",
    )
    parser.add_argument(
        "--incremental", action="store_true",
        help="benchmark the incremental engine's final-day advance "
        "against a full batch re-run instead of the store benchmarks",
    )
    parser.add_argument("--domains", type=int, default=200)
    parser.add_argument("--days", type=int, default=30)
    parser.add_argument("--query-rounds", type=int, default=20)
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument(
        "--sqlite-dir", default=None,
        help="directory for the on-disk SQLite bench file "
        "(default: in-memory SQLite)",
    )
    args = parser.parse_args(argv)
    if args.incremental:
        report = run_incremental_benchmarks(
            seed=args.seed,
            scale=args.scale,
            tmp_dir=Path(args.sqlite_dir) if args.sqlite_dir else None,
        )
        out = Path(args.out or "BENCH_incremental.json")
        out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        reporter = TextReporter()
        reporter.line(f"Wrote {out}")
        section = report["incremental"]
        reporter.line(f"batch: {section['batch_seconds']}s")
        for entry in section["backends"]:
            reporter.line(
                f"incremental[{entry['backend']}]: final day "
                f"{entry['final_day_seconds']}s "
                f"({entry['speedup_vs_batch']}x vs batch, digest match: "
                f"{entry['digest_matches_batch']})"
            )
        return 0
    report = run_benchmarks(
        domains=args.domains,
        days=args.days,
        query_rounds=args.query_rounds,
        seed=args.seed,
        scale=args.scale,
        shards=args.shards,
        tmp_dir=Path(args.sqlite_dir) if args.sqlite_dir else None,
    )
    out = Path(args.out or "BENCH_store.json")
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    reporter = TextReporter()
    reporter.line(f"Wrote {out}")
    for entry in report["ingest"]:
        reporter.line(
            f"ingest[{entry['backend']}]: "
            f"{entry['events_per_second']} events/s"
        )
    for entry in report["ns_records"]:
        reporter.line(
            f"ns_records[{entry['backend']}]: "
            f"{entry['microseconds_per_call']} us/call"
        )
    pipe = report["pipeline"]
    reporter.line(
        f"pipeline: unsharded {pipe['unsharded_seconds']}s, "
        f"{pipe['shards']}-way sharded {pipe['sharded_seconds']}s"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI smoke test
    raise SystemExit(main())
