"""Store-layer benchmark harness: ``python -m repro.store.bench``.

Measures the costs the layered dataset architecture trades between:

* **ingest throughput** — synthetic daily snapshot churn driven through
  the ZoneDatabase façade into each backend (pairs opened+closed per
  second);
* **query latency** — ``ns_records`` lookups per backend over the
  ingested history (the detection pipeline's hottest store call);
* **pipeline wall-time** — the full §3 funnel over one simulated world,
  unsharded versus sharded.

Results land in ``BENCH_store.json`` so successive commits have a perf
trajectory to compare against. Timings read :mod:`repro.obs.clock`
(the sanctioned duration-clock funnel — raw ``time.perf_counter`` is
banned outside ``repro.obs`` by lint rule DET009) and are mirrored into
the obs metrics registry, whose snapshot rides along in the report's
``metrics`` key. Progress lines go through the obs
:class:`~repro.obs.reporters.TextReporter` rather than bare prints.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Any, Callable

from repro.obs import clock
from repro.obs import runtime as obs
from repro.obs.reporters import TextReporter
from repro.store.memory import MemoryDelegationStore
from repro.store.sqlite import SqliteDelegationStore


def _make_store(backend: str, tmp_dir: Path | None):
    if backend == "sqlite":
        if tmp_dir is None:
            return SqliteDelegationStore(":memory:")
        return SqliteDelegationStore(tmp_dir / "bench.sqlite")
    return MemoryDelegationStore()


def _synthetic_schedule(domains: int, days: int) -> list[tuple[int, str, str]]:
    """(day, domain, ns) churn events: every domain re-delegates daily."""
    events = []
    for day in range(days):
        for i in range(domains):
            events.append((day, f"d{i}.biz", f"ns{(i + day) % (domains // 2 or 1)}.x.com"))
    return events


def bench_ingest(
    backend: str, *, domains: int, days: int, tmp_dir: Path | None
) -> tuple[dict[str, Any], Any]:
    """Open/close churn throughput through the façade (result, database)."""
    from repro.zonedb.database import ZoneDatabase

    events = _synthetic_schedule(domains, days)
    db = ZoneDatabase(["biz"], store=_make_store(backend, tmp_dir))
    started = clock.perf_counter()
    for day, domain, ns in events:
        db.set_delegation(day, domain, [ns])
    db.flush()
    elapsed = clock.perf_counter() - started
    obs.histogram(f"bench.ingest.{backend}.duration_s").observe(elapsed)
    result = {
        "backend": backend,
        "events": len(events),
        "seconds": round(elapsed, 6),
        "events_per_second": round(len(events) / elapsed, 1) if elapsed else None,
    }
    return result, db


def bench_ns_records(db, *, backend: str, rounds: int) -> dict[str, Any]:
    """Per-call latency of the pipeline's hottest query."""
    nameservers = list(db.all_nameservers())
    if not nameservers:
        return {"calls": 0}
    started = clock.perf_counter()
    calls = 0
    for _ in range(rounds):
        for ns in nameservers:
            db.ns_records(ns)
            calls += 1
    elapsed = clock.perf_counter() - started
    obs.histogram(f"bench.ns_records.{backend}.duration_s").observe(elapsed)
    return {
        "calls": calls,
        "seconds": round(elapsed, 6),
        "microseconds_per_call": round(elapsed / calls * 1e6, 2) if calls else None,
    }


def bench_pipeline(*, seed: int, scale: float, shards: int) -> dict[str, Any]:
    """Full §3 funnel wall-time, unsharded vs sharded, same world."""
    from repro.detection.pipeline import DetectionPipeline
    from repro.ecosystem.world import run_default_world

    world = run_default_world(seed=seed, scale=scale)

    def timed(label: str, run: Callable[[], Any]) -> float:
        started = clock.perf_counter()
        run()
        elapsed = clock.perf_counter() - started
        obs.histogram(f"bench.pipeline.{label}.duration_s").observe(elapsed)
        return elapsed

    unsharded = timed(
        "unsharded",
        lambda: DetectionPipeline(
            world.zonedb, world.whois, mine_patterns=False
        ).run(),
    )
    sharded = timed(
        "sharded",
        lambda: DetectionPipeline(
            world.zonedb, world.whois, mine_patterns=False, shards=shards
        ).run(),
    )
    return {
        "seed": seed,
        "scale": scale,
        "shards": shards,
        "unsharded_seconds": round(unsharded, 3),
        "sharded_seconds": round(sharded, 3),
    }


def run_benchmarks(
    *,
    domains: int = 200,
    days: int = 30,
    query_rounds: int = 20,
    seed: int = 2021,
    scale: float = 0.1,
    shards: int = 4,
    tmp_dir: Path | None = None,
) -> dict[str, Any]:
    """All store benchmarks as one JSON-ready document.

    The registry is reset first so the embedded ``metrics`` snapshot
    covers exactly this benchmark run (bench histograms plus whatever
    the instrumented store/pipeline hot paths record underneath).
    """
    obs.reset_metrics()
    report: dict[str, Any] = {
        "format": "riskybiz-bench-store/1",
        "parameters": {
            "domains": domains,
            "days": days,
            "query_rounds": query_rounds,
            "seed": seed,
            "scale": scale,
            "shards": shards,
        },
        "ingest": [],
        "ns_records": [],
    }
    for backend in ("memory", "sqlite"):
        ingest, db = bench_ingest(
            backend, domains=domains, days=days, tmp_dir=tmp_dir
        )
        report["ingest"].append(ingest)
        query = bench_ns_records(db, backend=backend, rounds=query_rounds)
        query["backend"] = backend
        report["ns_records"].append(query)
        db.close()
    report["pipeline"] = bench_pipeline(seed=seed, scale=scale, shards=shards)
    report["metrics"] = obs.metrics().snapshot()
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store.bench",
        description="Benchmark the delegation-store backends and the "
        "sharded detection pipeline; write BENCH_store.json.",
    )
    parser.add_argument("--out", default="BENCH_store.json", help="output path")
    parser.add_argument("--domains", type=int, default=200)
    parser.add_argument("--days", type=int, default=30)
    parser.add_argument("--query-rounds", type=int, default=20)
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument(
        "--sqlite-dir", default=None,
        help="directory for the on-disk SQLite bench file "
        "(default: in-memory SQLite)",
    )
    args = parser.parse_args(argv)
    report = run_benchmarks(
        domains=args.domains,
        days=args.days,
        query_rounds=args.query_rounds,
        seed=args.seed,
        scale=args.scale,
        shards=args.shards,
        tmp_dir=Path(args.sqlite_dir) if args.sqlite_dir else None,
    )
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    reporter = TextReporter()
    reporter.line(f"Wrote {out}")
    for entry in report["ingest"]:
        reporter.line(
            f"ingest[{entry['backend']}]: "
            f"{entry['events_per_second']} events/s"
        )
    for entry in report["ns_records"]:
        reporter.line(
            f"ns_records[{entry['backend']}]: "
            f"{entry['microseconds_per_call']} us/call"
        )
    pipe = report["pipeline"]
    reporter.line(
        f"pipeline: unsharded {pipe['unsharded_seconds']}s, "
        f"{pipe['shards']}-way sharded {pipe['sharded_seconds']}s"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI smoke test
    raise SystemExit(main())
