"""The ``DelegationStore`` protocol and the record types backends share.

A delegation store holds exactly the DZDB reduction the paper's
methodology consumes: half-open ``[start, end)`` co-occurrence intervals
per (domain, nameserver) pair, plus presence histories for glue hosts
and delegated domains. The :class:`~repro.zonedb.database.ZoneDatabase`
façade owns all *semantics* (snapshot diffing, gap bridging, ingest
policies); backends own only storage and retrieval, so swapping the
in-memory structure for SQLite cannot change what the pipeline sees.

Presence histories are keyed by ``kind``: ``"glue"`` for glue-carrying
hosts, ``"domain"`` for in-zone domain presence.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Protocol, runtime_checkable

from repro.simtime import Interval

if TYPE_CHECKING:
    from repro.store.changelog import DeltaEvent

#: Presence-history kinds every backend must support.
GLUE = "glue"
DOMAIN = "domain"


class DelegationRecord:
    """One (domain, nameserver) co-occurrence interval.

    The in-memory backend shares one record object between its
    per-domain and per-nameserver indexes so closing the interval
    updates both views; other backends materialize equal-valued records
    per query. Identity therefore matters only inside a backend — never
    compare records by ``is`` across store calls.
    """

    __slots__ = ("domain", "ns", "start", "end")

    def __init__(self, domain: str, ns: str, start: int, end: int | None = None):
        self.domain = domain
        self.ns = ns
        self.start = start
        self.end = end

    @property
    def interval(self) -> Interval:
        """The record's interval view."""
        return Interval(self.start, self.end)

    def active_on(self, day: int) -> bool:
        """True if the pair was in the zone on ``day``."""
        return self.start <= day and (self.end is None or day < self.end)

    def as_tuple(self) -> tuple[str, str, int, int | None]:
        """Value view, for backend-independent comparisons."""
        return (self.domain, self.ns, self.start, self.end)

    def __repr__(self) -> str:
        return (
            f"DelegationRecord({self.domain!r} -> {self.ns!r}, "
            f"[{self.start}, {self.end}))"
        )


class PresenceHistory:
    """Open/close interval tracking for a set of keys (e.g. glue hosts).

    The shared in-memory implementation; the SQLite backend reproduces
    the same semantics in SQL. A key closed on the day it opened leaves
    no interval (invisible at daily zone-snapshot granularity).
    """

    __slots__ = ("_closed", "_open")

    def __init__(self) -> None:
        self._closed: dict[str, list[Interval]] = {}
        self._open: dict[str, int] = {}

    def open(self, key: str, day: int) -> None:
        if key not in self._open:
            self._open[key] = day

    def close(self, key: str, day: int) -> None:
        start = self._open.pop(key, None)
        if start is not None:
            if day > start:
                self._closed.setdefault(key, []).append(Interval(start, day))
            # zero-length presence (opened and closed the same day) vanishes

    def add(self, key: str, start: int, end: int | None) -> None:
        """Bulk-load one interval verbatim (dataset copying)."""
        if end is None:
            self._open[key] = start
        else:
            self._closed.setdefault(key, []).append(Interval(start, end))

    def is_open(self, key: str) -> bool:
        """True if ``key`` has an interval still open."""
        return key in self._open

    def is_present(self, key: str, day: int) -> bool:
        start = self._open.get(key)
        if start is not None and start <= day:
            return True
        return any(iv.contains(day) for iv in self._closed.get(key, ()))

    def intervals(self, key: str) -> list[Interval]:
        result = list(self._closed.get(key, ()))
        start = self._open.get(key)
        if start is not None:
            result.append(Interval(start, None))
        return result

    def keys(self) -> Iterator[str]:
        seen = set(self._closed) | set(self._open)
        return iter(sorted(seen))


def dispatch_delta(store: "DelegationStore", event: "DeltaEvent") -> None:
    """Apply one delta event's mutation through the store primitives.

    The shared dispatcher both backends' ``apply_delta`` use, so a
    replayed event performs *exactly* the primitive call the original
    mutation did — which is what makes delta replay reproduce a store
    bit-for-bit. ``tld-cover`` events carry no store mutation (coverage
    is façade metadata) and fall through.
    """
    from repro.store import changelog as cl

    if event.kind == cl.DELEGATION_ADD:
        assert event.ns is not None
        store.open_pair(event.name, event.ns, event.day)
    elif event.kind == cl.DELEGATION_REMOVE:
        assert event.ns is not None
        store.close_pair(event.name, event.ns, event.day)
    elif event.kind == cl.GLUE_ADD:
        store.open_presence(GLUE, event.name, event.day)
    elif event.kind == cl.GLUE_REMOVE:
        store.close_presence(GLUE, event.name, event.day)
    elif event.kind == cl.DOMAIN_APPEAR:
        store.open_presence(DOMAIN, event.name, event.day)
    elif event.kind == cl.DOMAIN_EXPIRE:
        store.close_presence(DOMAIN, event.name, event.day)
    elif event.kind != cl.TLD_COVER:
        raise ValueError(f"unknown delta kind {event.kind!r}")


@runtime_checkable
class DelegationStore(Protocol):
    """Storage contract between the zone-database façade and backends.

    All names are expected canonical (lower-case, no trailing dot): the
    façade canonicalizes before calling, so backends never validate.
    """

    #: Stable backend identifier ("memory", "sqlite", ...).
    backend_name: str

    # -- pair intervals ----------------------------------------------------

    def open_pair(self, domain: str, ns: str, day: int) -> None:
        """Open a new (domain, ns) interval starting on ``day``."""

    def close_pair(self, domain: str, ns: str, day: int) -> None:
        """Close the open (domain, ns) interval on ``day``.

        Closing on or before the open day annihilates the record: a pair
        added and removed within one day is invisible to daily zone
        snapshots and must not exist in the history. Closing a pair that
        is not open is a no-op.
        """

    def add_record(self, domain: str, ns: str, start: int, end: int | None) -> None:
        """Bulk-load one interval verbatim (dataset copying)."""

    def current_nameservers(self, domain: str) -> frozenset[str]:
        """NS names with an open interval for ``domain`` right now."""

    def current_domains(self, suffix: str | None = None) -> list[str]:
        """Domains with at least one open interval, optionally filtered
        to those ending in ``suffix`` (e.g. ``".com"``)."""

    # -- pair queries ------------------------------------------------------

    def all_nameservers(self) -> Iterator[str]:
        """Every NS name ever referenced by any delegation."""

    def all_domains(self) -> Iterator[str]:
        """Every domain ever delegated in the data set."""

    def nameserver_count(self) -> int:
        """Number of distinct NS names ever seen."""

    def domain_count(self) -> int:
        """Number of distinct domains ever seen."""

    def ns_records(self, ns: str) -> list[DelegationRecord]:
        """All interval records referencing nameserver ``ns``."""

    def domain_records(self, domain: str) -> list[DelegationRecord]:
        """All interval records for ``domain``."""

    def domains_in_tld(self, tld: str) -> list[str]:
        """Ever-seen domains whose TLD is ``tld`` (one partition)."""

    def partitions(self) -> list[str]:
        """Sorted TLDs of ever-seen domains (partition enumeration)."""

    # -- presence histories ------------------------------------------------

    def open_presence(self, kind: str, key: str, day: int) -> None:
        """Open presence of ``key`` from ``day`` (no-op if already open)."""

    def close_presence(self, kind: str, key: str, day: int) -> None:
        """Close presence of ``key`` on ``day`` (same-day opens vanish)."""

    def add_presence(self, kind: str, key: str, start: int, end: int | None) -> None:
        """Bulk-load one presence interval verbatim (dataset copying)."""

    def presence_contains(self, kind: str, key: str, day: int) -> bool:
        """True if ``key`` was present on ``day``."""

    def presence_intervals(self, kind: str, key: str) -> list[Interval]:
        """Presence intervals for ``key``, in chronological order."""

    def presence_keys(self, kind: str) -> Iterator[str]:
        """Every key ever present, in sorted order."""

    def presence_open(self, kind: str, key: str) -> bool:
        """True if ``key`` currently has an open presence interval.

        The façade uses this to emit delta events only for *effective*
        mutations: daily glue re-assertion is a store no-op and must
        not flood the delta stream.
        """

    # -- delta tracking ----------------------------------------------------

    def apply_delta(self, event: "DeltaEvent", batch_day: int) -> None:
        """Apply one delta event and record it under ``batch_day``.

        The single write path incremental consumers rely on: the
        mutation and its record are inseparable, so ``deltas_since``
        reproduces exactly the mutations performed.
        """

    def record_delta(self, event: "DeltaEvent", batch_day: int) -> None:
        """Record a delta without applying it (bulk dataset copying)."""

    def deltas_since(self, day: int | None) -> list[tuple[int, "DeltaEvent"]]:
        """Recorded (batch_day, event) pairs with ``batch_day > day``.

        ``None`` means "everything". Pairs come back in the order they
        were recorded; batch days are non-decreasing.
        """

    # -- metadata / lifecycle ----------------------------------------------

    def get_meta(self, key: str) -> str | None:
        """Read one metadata string (None when absent)."""

    def set_meta(self, key: str, value: str) -> None:
        """Write one metadata string."""

    def flush(self) -> None:
        """Make all writes durable (no-op for volatile backends)."""

    def close(self) -> None:
        """Flush and release any underlying resources."""
