"""Crash-safe file writes and checksummed JSON manifests.

Every on-disk manifest, checkpoint, and journal in the reproduction is
written through this module, so a process killed mid-write can never
leave a half-written file where the pipeline will later read it. The
invariant is the classic one:

    write to a temp file in the same directory → fsync the file →
    atomically rename over the target → fsync the directory.

After :func:`atomic_write_bytes` returns, the target durably holds the
complete new contents; if the process dies at any earlier point, the
target still holds the complete previous contents (or is still absent).
Stray ``*.tmp`` files from killed writers are harmless and are never
read by any loader.

JSON manifests additionally carry a ``checksum`` field — the SHA-256 of
the canonical encoding of the rest of the document — so silent disk
corruption (or a torn write that somehow survived) is *detected* on
load, not consumed. :func:`load_checked_json` quarantines a corrupt
manifest by renaming it aside, leaving the caller free to recompute.

Lint rule ``DET008`` statically enforces that storage-layer code routes
its writes through here.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

#: Suffix appended to the target name for in-flight temp files.
TMP_SUFFIX = ".tmp"

#: Suffix given to quarantined (corrupt) files.
QUARANTINE_SUFFIX = ".corrupt"

#: Manifest key holding the document's own integrity checksum.
CHECKSUM_KEY = "checksum"


class IntegrityError(Exception):
    """A checksummed file failed verification."""


def canonical_json(payload: Any) -> str:
    """Canonical JSON text: sorted keys, compact separators."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def payload_checksum(payload: Any) -> str:
    """SHA-256 hex digest of ``payload``'s canonical JSON encoding."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def file_sha256(path: str | Path) -> str:
    """SHA-256 hex digest of a file's bytes (streamed)."""
    digest = hashlib.sha256()
    with open(Path(path), "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def fsync_directory(directory: Path) -> None:
    """Flush a directory's entry table (makes renames durable)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. platforms without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync on dirs can be unsupported
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Durably replace ``path``'s contents with ``data``.

    The temp file lives in the target's directory so the final rename
    is atomic (same filesystem). Returns the target path.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    temp = target.with_name(target.name + TMP_SUFFIX)
    with open(temp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, target)
    fsync_directory(target.parent)
    return target


def atomic_write_text(path: str | Path, text: str, encoding: str = "utf-8") -> Path:
    """Durably replace ``path``'s contents with ``text``."""
    return atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(path: str | Path, payload: Any) -> Path:
    """Durably write ``payload`` as pretty-printed, sorted JSON."""
    return atomic_write_text(
        path, json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )


def write_checked_json(path: str | Path, payload: dict[str, Any]) -> Path:
    """Atomically write a manifest with an embedded content checksum.

    The ``checksum`` field covers every *other* field's canonical
    encoding; :func:`load_checked_json` recomputes and compares it.
    """
    body = {key: value for key, value in payload.items() if key != CHECKSUM_KEY}
    document = dict(body)
    document[CHECKSUM_KEY] = payload_checksum(body)
    return atomic_write_json(path, document)


def quarantine(path: str | Path) -> Path:
    """Move a corrupt file aside (``<name>.corrupt``, numbered on clash).

    Returns the quarantine path. The original name becomes free for a
    recomputed replacement.
    """
    source = Path(path)
    candidate = source.with_name(source.name + QUARANTINE_SUFFIX)
    counter = 1
    while candidate.exists():
        candidate = source.with_name(f"{source.name}{QUARANTINE_SUFFIX}.{counter}")
        counter += 1
    os.replace(source, candidate)
    fsync_directory(source.parent)
    return candidate


def verify_checked_json(path: str | Path) -> dict[str, Any]:
    """Load a checksummed manifest, raising :class:`IntegrityError`.

    Raises on unparseable JSON, a missing ``checksum`` field, or a
    checksum mismatch. Does not quarantine — see
    :func:`load_checked_json` for the quarantining loader.
    """
    target = Path(path)
    try:
        document = json.loads(target.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise IntegrityError(f"{target}: unparseable manifest: {error}") from None
    if not isinstance(document, dict):
        raise IntegrityError(f"{target}: manifest is not a JSON object")
    recorded = document.get(CHECKSUM_KEY)
    if not isinstance(recorded, str):
        raise IntegrityError(f"{target}: manifest has no checksum field")
    body = {k: v for k, v in document.items() if k != CHECKSUM_KEY}
    actual = payload_checksum(body)
    if actual != recorded:
        raise IntegrityError(
            f"{target}: checksum mismatch (recorded {recorded[:12]}…, "
            f"actual {actual[:12]}…)"
        )
    return body


def load_checked_json(path: str | Path) -> dict[str, Any] | None:
    """Load a checksummed manifest, quarantining it on corruption.

    Returns the verified body (without the ``checksum`` field), or
    ``None`` when the file failed verification and was moved aside —
    the caller should recompute and rewrite.
    """
    target = Path(path)
    try:
        return verify_checked_json(target)
    except IntegrityError:
        quarantine(target)
        return None
