"""The storage layer: pluggable delegation stores and artifact caching.

This package is the persistence spine of the reproduction. Everything
above it — the zone-database façade, the detection pipeline, the
analyses — consumes interval data through the
:class:`~repro.store.base.DelegationStore` protocol, so the same code
runs against the in-memory structure the simulator writes into
(:class:`~repro.store.memory.MemoryDelegationStore`) or an on-disk
SQLite dataset (:class:`~repro.store.sqlite.SqliteDelegationStore`)
produced by an earlier ``riskybiz simulate`` run.

Layering (see ``docs/ARCHITECTURE.md``)::

    ecosystem (simulate)  →  store  ←  detection (detect)  ←  analysis

* :mod:`repro.store.base` — the protocol plus the shared record types;
* :mod:`repro.store.memory` — dict-of-intervals backend (the seed
  implementation, moved behind the interface);
* :mod:`repro.store.sqlite` — SQLite-backed on-disk backend;
* :mod:`repro.store.dataset` — dataset files + manifests, and the
  :class:`~repro.store.dataset.DatasetView`/:class:`~repro.store.dataset.ShardSpec`
  pair the sharded detection pipeline consumes;
* :mod:`repro.store.artifacts` — the content-addressed artifact cache
  (digest-keyed, disk-persisted, bounded in-memory LRU);
* :mod:`repro.store.bench` — the store/pipeline benchmark harness that
  writes ``BENCH_store.json``.
"""

from repro.store.artifacts import (
    ArtifactCache,
    ArtifactKey,
    content_digest,
    default_cache,
    scenario_digest,
)
from repro.store.base import DelegationRecord, DelegationStore, PresenceHistory
from repro.store.dataset import (
    DATASET_FORMAT,
    DatasetView,
    ShardSpec,
    open_dataset,
    write_dataset,
)
from repro.store.memory import MemoryDelegationStore
from repro.store.sqlite import SqliteDelegationStore

__all__ = [
    "ArtifactCache",
    "ArtifactKey",
    "DATASET_FORMAT",
    "DatasetView",
    "DelegationRecord",
    "DelegationStore",
    "MemoryDelegationStore",
    "PresenceHistory",
    "ShardSpec",
    "SqliteDelegationStore",
    "content_digest",
    "default_cache",
    "open_dataset",
    "scenario_digest",
    "write_dataset",
]
