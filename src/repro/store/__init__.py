"""The storage layer: pluggable delegation stores and artifact caching.

This package is the persistence spine of the reproduction. Everything
above it — the zone-database façade, the detection pipeline, the
analyses — consumes interval data through the
:class:`~repro.store.base.DelegationStore` protocol, so the same code
runs against the in-memory structure the simulator writes into
(:class:`~repro.store.memory.MemoryDelegationStore`) or an on-disk
SQLite dataset (:class:`~repro.store.sqlite.SqliteDelegationStore`)
produced by an earlier ``riskybiz simulate`` run.

Layering (see ``docs/ARCHITECTURE.md``)::

    ecosystem (simulate)  →  store  ←  detection (detect)  ←  analysis

* :mod:`repro.store.base` — the protocol plus the shared record types;
* :mod:`repro.store.memory` — dict-of-intervals backend (the seed
  implementation, moved behind the interface);
* :mod:`repro.store.sqlite` — SQLite-backed on-disk backend;
* :mod:`repro.store.changelog` — the append-only, checksummed delta
  log (``riskybiz-changelog/1``) with per-consumer watermarks that the
  incremental detection engine consumes;
* :mod:`repro.store.dataset` — dataset files + manifests, and the
  :class:`~repro.store.dataset.DatasetView`/:class:`~repro.store.dataset.ShardSpec`
  pair the sharded detection pipeline consumes;
* :mod:`repro.store.artifacts` — the content-addressed artifact cache
  (digest-keyed, disk-persisted, bounded in-memory LRU);
* :mod:`repro.store.atomic` — crash-safe writes (temp → fsync →
  rename) and checksummed JSON manifests; every manifest, checkpoint,
  and journal write routes through it (lint rule ``DET008``);
* :mod:`repro.store.verify` — the read-only integrity walker behind
  ``riskybiz verify-data``;
* :mod:`repro.store.bench` — the store/pipeline benchmark harness that
  writes ``BENCH_store.json``.
"""

from repro.store.artifacts import (
    ArtifactCache,
    ArtifactKey,
    content_digest,
    default_cache,
    scenario_digest,
)
from repro.store.atomic import (
    IntegrityError,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    file_sha256,
    load_checked_json,
    quarantine,
    verify_checked_json,
    write_checked_json,
)
from repro.store.base import DelegationRecord, DelegationStore, PresenceHistory
from repro.store.changelog import (
    CHANGELOG_FORMAT,
    ChangeLog,
    ChangelogCorruption,
    DELTA_KINDS,
    DeltaEvent,
    group_batches,
)
from repro.store.dataset import (
    DATASET_FORMAT,
    DatasetView,
    DeltaView,
    ShardSpec,
    load_manifest,
    open_dataset,
    rebuild_manifest,
    write_dataset,
)
from repro.store.memory import MemoryDelegationStore
from repro.store.sqlite import SqliteDelegationStore
from repro.store.verify import (
    Issue,
    verify_artifact_dir,
    verify_dataset,
    verify_run_dir,
)

__all__ = [
    "ArtifactCache",
    "ArtifactKey",
    "CHANGELOG_FORMAT",
    "ChangeLog",
    "ChangelogCorruption",
    "DATASET_FORMAT",
    "DELTA_KINDS",
    "DatasetView",
    "DelegationRecord",
    "DelegationStore",
    "DeltaEvent",
    "DeltaView",
    "IntegrityError",
    "Issue",
    "group_batches",
    "MemoryDelegationStore",
    "PresenceHistory",
    "ShardSpec",
    "SqliteDelegationStore",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "content_digest",
    "default_cache",
    "file_sha256",
    "load_checked_json",
    "load_manifest",
    "open_dataset",
    "quarantine",
    "rebuild_manifest",
    "scenario_digest",
    "verify_artifact_dir",
    "verify_checked_json",
    "verify_dataset",
    "verify_run_dir",
    "write_checked_json",
    "write_dataset",
]
