"""The delegation change log: an append-only, checksummed delta stream.

Incremental detection needs to know *what changed* each day, not just
the resulting interval state. Every mutation the zone-database façade
performs is expressed as a typed :class:`DeltaEvent` — delegation pairs
opening and closing, glue appearing and vanishing, domains entering and
leaving their zone, TLDs joining the covered set — grouped into *batch
days*: the ingest day under which the mutation was performed. A batch
day can exceed an event's effective ``day`` (gap-bridge rewrites close
intervals retroactively), which is exactly why consumers key their
progress on batch days: once a batch is processed, no later batch can
change what it said.

On disk a change log is journal-style JSONL — one checksummed record
per line, appended durably (write → flush → fsync), with the same
torn-tail recovery contract as :class:`~repro.runner.journal.RunJournal`:
a final line cut short by a killed writer is dropped (that delta never
durably happened), damage before the tail raises
:class:`ChangelogCorruption`. Per-consumer *watermarks* — the last
batch day each consumer fully processed — live in a checksummed sidecar
written through :mod:`repro.store.atomic`, so a killed consumer resumes
from its last committed batch and replays at most one day.

Timestamps are deliberately absent: the log orders events by sequence
number and batch day only, so its bytes are a pure function of the
mutations performed.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.store.atomic import (
    canonical_json,
    fsync_directory,
    load_checked_json,
    write_checked_json,
)

#: Format tag recorded by the log-start record and the manifest sidecar.
CHANGELOG_FORMAT = "riskybiz-changelog/1"

# -- delta vocabulary --------------------------------------------------------

#: A (domain, ns) interval opened on ``day``.
DELEGATION_ADD = "delegation-add"
#: The open (domain, ns) interval closed on ``day`` (same-day closes
#: annihilate the record, exactly as the store primitives do).
DELEGATION_REMOVE = "delegation-remove"
#: Glue presence opened for host ``name`` on ``day``.
GLUE_ADD = "glue-add"
#: Glue presence closed for host ``name`` on ``day``.
GLUE_REMOVE = "glue-remove"
#: Domain presence opened for ``name`` on ``day``.
DOMAIN_APPEAR = "domain-appear"
#: Domain presence closed for ``name`` on ``day``.
DOMAIN_EXPIRE = "domain-expire"
#: TLD ``name`` joined the covered set on ``day`` (no store mutation —
#: it changes what the resolvability analysis may assess).
TLD_COVER = "tld-cover"

#: Every kind a change log may carry, in a stable documentation order.
DELTA_KINDS = (
    DELEGATION_ADD,
    DELEGATION_REMOVE,
    GLUE_ADD,
    GLUE_REMOVE,
    DOMAIN_APPEAR,
    DOMAIN_EXPIRE,
    TLD_COVER,
)

#: Kinds that reference a nameserver (``ns`` must be set).
_PAIR_KINDS = frozenset({DELEGATION_ADD, DELEGATION_REMOVE})


class ChangelogCorruption(Exception):
    """A change-log record before the tail failed verification."""


@dataclass(frozen=True, slots=True)
class DeltaEvent:
    """One typed mutation of the delegation history.

    ``day`` is the *effective* day of the mutation (the interval
    boundary it creates); the batch day it was performed under is
    carried alongside the event, not inside it, because one event can
    be replayed from logs that batched it differently.
    """

    kind: str
    day: int
    #: The domain (pair/presence kinds), glue host, or TLD.
    name: str
    #: The nameserver, for delegation-add / delegation-remove.
    ns: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in DELTA_KINDS:
            raise ValueError(f"unknown delta kind {self.kind!r}")
        if self.kind in _PAIR_KINDS and self.ns is None:
            raise ValueError(f"{self.kind} requires a nameserver")

    def to_payload(self) -> dict[str, Any]:
        """JSON-serializable value view."""
        payload: dict[str, Any] = {
            "kind": self.kind,
            "day": self.day,
            "name": self.name,
        }
        if self.ns is not None:
            payload["ns"] = self.ns
        return payload

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "DeltaEvent":
        """Inverse of :meth:`to_payload`."""
        return cls(
            kind=str(payload["kind"]),
            day=int(payload["day"]),
            name=str(payload["name"]),
            ns=str(payload["ns"]) if payload.get("ns") is not None else None,
        )

    def as_tuple(self) -> tuple[str, int, str, str | None]:
        """Value tuple, for backend-independent comparisons."""
        return (self.kind, self.day, self.name, self.ns)


def _record_checksum(body: dict[str, Any]) -> str:
    return hashlib.sha256(canonical_json(body).encode("utf-8")).hexdigest()


def _parse_line(line: str, seq: int) -> dict[str, Any] | None:
    """The verified record body on ``line``, or ``None`` if it fails."""
    try:
        document = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(document, dict):
        return None
    recorded = document.get("checksum")
    body = {k: v for k, v in document.items() if k != "checksum"}
    if not isinstance(recorded, str) or _record_checksum(body) != recorded:
        return None
    if body.get("seq") != seq:
        return None
    return body


def group_batches(
    deltas: "Iterator[tuple[int, DeltaEvent]] | list[tuple[int, DeltaEvent]]",
) -> list[tuple[int, list[DeltaEvent]]]:
    """Group an ordered (batch_day, event) stream into per-day batches.

    Batch days are non-decreasing in any well-formed stream (sequence
    order follows the horizon); a decrease means the stream was
    reassembled out of order and raises ``ValueError``.
    """
    batches: list[tuple[int, list[DeltaEvent]]] = []
    for batch_day, event in deltas:
        if batches and batch_day < batches[-1][0]:
            raise ValueError(
                f"batch day {batch_day} after day {batches[-1][0]}: "
                "delta stream is out of order"
            )
        if batches and batches[-1][0] == batch_day:
            batches[-1][1].append(event)
        else:
            batches.append((batch_day, [event]))
    return batches


class ChangeLog:
    """One append-only delta log plus its per-consumer watermarks.

    Construct with :meth:`create` for a fresh log, :meth:`open` to
    replay an existing file, or :meth:`attach` for whichever applies.
    Appends are durable per record; the in-memory view is the verified
    (batch_day, event) sequence.
    """

    def __init__(
        self,
        path: str | Path,
        deltas: list[tuple[int, DeltaEvent]] | None = None,
    ) -> None:
        self.path = Path(path)
        #: Verified (batch_day, event) pairs, in append order.
        self.deltas: list[tuple[int, DeltaEvent]] = list(deltas or ())
        self._seq = len(self.deltas) + 1  # +1 for the log-start record

    # -- construction --------------------------------------------------------

    @classmethod
    def create(cls, path: str | Path) -> "ChangeLog":
        """Start a fresh log (the file must not already exist)."""
        target = Path(path)
        if target.exists():
            raise FileExistsError(f"change log already exists: {target}")
        target.parent.mkdir(parents=True, exist_ok=True)
        log = cls(target)
        log._seq = 0
        log._append_record({"type": "log-start", "format": CHANGELOG_FORMAT})
        return log

    @classmethod
    def open(cls, path: str | Path) -> "ChangeLog":
        """Replay an existing log, recovering from a torn tail."""
        target = Path(path)
        raw_lines = target.read_text(encoding="utf-8").split("\n")
        if raw_lines and raw_lines[-1] == "":
            raw_lines.pop()
        bodies: list[dict[str, Any]] = []
        dropped_tail = False
        for index, line in enumerate(raw_lines):
            body = _parse_line(line, seq=len(bodies))
            if body is None:
                if index == len(raw_lines) - 1:
                    dropped_tail = True
                    break
                raise ChangelogCorruption(
                    f"{target}: record {index} failed verification with "
                    "valid records after it — log damaged, not torn"
                )
            bodies.append(body)
        if not bodies or bodies[0].get("type") != "log-start":
            raise ChangelogCorruption(f"{target}: no verifiable log-start")
        if bodies[0].get("format") != CHANGELOG_FORMAT:
            raise ChangelogCorruption(
                f"{target}: unknown format {bodies[0].get('format')!r}"
            )
        deltas: list[tuple[int, DeltaEvent]] = []
        for body in bodies[1:]:
            if body.get("type") != "delta":
                raise ChangelogCorruption(
                    f"{target}: unexpected record type {body.get('type')!r}"
                )
            deltas.append(
                (int(body["batch_day"]), DeltaEvent.from_payload(body["event"]))
            )
        log = cls(target, deltas)
        if dropped_tail:
            log._truncate_to_verified(raw_lines, len(bodies))
        return log

    @classmethod
    def attach(cls, path: str | Path) -> "ChangeLog":
        """Open the log at ``path``, creating it if absent."""
        if Path(path).exists():
            return cls.open(path)
        return cls.create(path)

    def _truncate_to_verified(self, raw_lines: list[str], kept: int) -> None:
        """Drop the torn tail, keeping every verified line byte-for-byte."""
        with open(self.path, "w", encoding="utf-8") as handle:
            handle.write("".join(line + "\n" for line in raw_lines[:kept]))
            handle.flush()
            os.fsync(handle.fileno())

    # -- appends -------------------------------------------------------------

    def _append_record(self, body: dict[str, Any]) -> None:
        body = dict(body)
        body["seq"] = self._seq
        document = dict(body)
        document["checksum"] = _record_checksum(body)
        line = json.dumps(document, sort_keys=True) + "\n"
        with open(self.path, "ab") as handle:
            handle.write(line.encode("utf-8"))
            handle.flush()
            os.fsync(handle.fileno())
        fsync_directory(self.path.parent)
        self._seq += 1

    def record(self, batch_day: int, event: DeltaEvent) -> None:
        """Durably append one event under ``batch_day``."""
        if self.deltas and batch_day < self.deltas[-1][0]:
            raise ValueError(
                f"batch day {batch_day} before last batch "
                f"{self.deltas[-1][0]}: change logs are append-only"
            )
        self._append_record(
            {"type": "delta", "batch_day": batch_day, "event": event.to_payload()}
        )
        self.deltas.append((batch_day, event))

    def record_batch(self, batch_day: int, events: "list[DeltaEvent]") -> None:
        """Durably append one day's batch of events, in order."""
        for event in events:
            self.record(batch_day, event)

    # -- replay queries ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.deltas)

    @property
    def last_batch_day(self) -> int | None:
        """The most recent batch day, if any deltas were recorded."""
        return self.deltas[-1][0] if self.deltas else None

    def events_since(self, day: int | None) -> list[tuple[int, DeltaEvent]]:
        """Every (batch_day, event) with ``batch_day`` after ``day``.

        ``None`` means "from the beginning" — the watermark of a
        consumer that has processed nothing yet.
        """
        if day is None:
            return list(self.deltas)
        return [(d, event) for d, event in self.deltas if d > day]

    def batches(
        self, *, since: int | None = None, until: int | None = None
    ) -> list[tuple[int, list[DeltaEvent]]]:
        """Per-day batches with ``since < batch_day`` (``<= until``)."""
        deltas = self.events_since(since)
        if until is not None:
            deltas = [(d, event) for d, event in deltas if d <= until]
        return group_batches(deltas)

    # -- watermarks ----------------------------------------------------------

    def _watermark_path(self) -> Path:
        return self.path.with_name(self.path.name + ".watermarks.json")

    def _load_watermarks(self) -> dict[str, int]:
        sidecar = self._watermark_path()
        if not sidecar.exists():
            return {}
        body = load_checked_json(sidecar)
        if body is None:  # corrupt sidecar was quarantined; start clean
            return {}
        return {
            str(consumer): int(day)
            for consumer, day in body.get("watermarks", {}).items()
        }

    def watermark(self, consumer: str) -> int | None:
        """The last batch day ``consumer`` fully processed, if any."""
        return self._load_watermarks().get(consumer)

    def commit_watermark(self, consumer: str, day: int) -> None:
        """Durably record that ``consumer`` processed through ``day``.

        Watermarks never move backwards: re-committing an older day is
        rejected, because the consumer's standing state already folded
        the later batches in.
        """
        marks = self._load_watermarks()
        current = marks.get(consumer)
        if current is not None and day < current:
            raise ValueError(
                f"watermark for {consumer!r} cannot move backwards: "
                f"{day} < {current}"
            )
        marks[consumer] = day
        write_checked_json(
            self._watermark_path(),
            {"format": CHANGELOG_FORMAT, "watermarks": dict(sorted(marks.items()))},
        )
