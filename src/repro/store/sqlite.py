"""The SQLite-backed delegation store: on-disk, restartable datasets.

Schema (one file per dataset)::

    meta(key TEXT PRIMARY KEY, value TEXT)
    pairs(domain TEXT, ns TEXT, start INTEGER, end INTEGER)   -- end NULL = open
    presence(kind TEXT, key TEXT, start INTEGER, end INTEGER)

Open intervals and current NS sets are cached in memory (rebuilt from
the file on open) so the write path does not pay a SELECT per change;
writes run in batched transactions committed by :meth:`flush`/:meth:`close`.

Query iteration orders are sorted (SQLite has no useful insertion
order), which is safe because every pipeline output that order could
reach is explicitly sorted before being returned.

File-backed stores open in WAL mode with ``synchronous=NORMAL``: a
killed writer can lose its open transaction but can never corrupt the
database file, and readers are never blocked mid-checkpoint. Closing
truncates the WAL back into the main file so a closed dataset is one
self-contained, checksummable file. In-memory stores keep
``synchronous=OFF`` (there is nothing to make durable).
"""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import Iterator

from repro.obs import clock
from repro.obs import runtime as obs
from repro.simtime import Interval
from repro.store.base import DelegationRecord, dispatch_delta
from repro.store.changelog import DeltaEvent

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
CREATE TABLE IF NOT EXISTS pairs (
    id INTEGER PRIMARY KEY,
    domain TEXT NOT NULL,
    ns TEXT NOT NULL,
    start INTEGER NOT NULL,
    end INTEGER
);
CREATE INDEX IF NOT EXISTS pairs_domain ON pairs (domain);
CREATE INDEX IF NOT EXISTS pairs_ns ON pairs (ns);
CREATE TABLE IF NOT EXISTS presence (
    id INTEGER PRIMARY KEY,
    kind TEXT NOT NULL,
    key TEXT NOT NULL,
    start INTEGER NOT NULL,
    end INTEGER
);
CREATE INDEX IF NOT EXISTS presence_key ON presence (kind, key);
CREATE TABLE IF NOT EXISTS deltas (
    seq INTEGER PRIMARY KEY,
    batch_day INTEGER NOT NULL,
    kind TEXT NOT NULL,
    day INTEGER NOT NULL,
    name TEXT NOT NULL,
    ns TEXT
);
CREATE INDEX IF NOT EXISTS deltas_batch ON deltas (batch_day);
"""

#: Commit at most this many buffered writes per transaction.
_TXN_BATCH = 50_000


class SqliteDelegationStore:
    """On-disk backend implementing the :class:`DelegationStore` protocol."""

    backend_name = "sqlite"

    def __init__(self, path: str | Path = ":memory:") -> None:
        self.path = str(path)
        self.on_disk = self.path != ":memory:"
        self._conn = sqlite3.connect(self.path)
        self._conn.isolation_level = None  # explicit transaction control
        if self.on_disk:
            # Crash safety: WAL never corrupts the main file on a kill,
            # and NORMAL syncs at checkpoint boundaries (durable enough
            # under WAL; OFF would trade integrity for speed).
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
        else:
            self._conn.execute("PRAGMA synchronous=OFF")
        self._conn.executescript(_SCHEMA)
        self._in_txn = False
        self._txn_writes = 0
        #: (domain, ns) -> rowid of the open pair row.
        self._open_rows: dict[tuple[str, str], tuple[int, int]] = {}
        self._current: dict[str, set[str]] = {}
        #: (kind, key) -> (rowid, start) of the open presence row.
        self._open_presence: dict[tuple[str, str], tuple[int, int]] = {}
        # Instruments are cached as attributes: the write path runs per
        # delegation change and must not pay a registry lookup each time.
        self._write_timer = obs.histogram("sqlite.write.duration_s")
        self._commit_timer = obs.histogram("sqlite.txn_commit.duration_s")
        self._query_timer = obs.histogram("sqlite.ns_records.duration_s")
        self._write_count = obs.counter("sqlite.writes")
        self._commit_count = obs.counter("sqlite.commits")
        self._query_count = obs.counter("sqlite.ns_records_queries")
        self._rebuild_open_caches()

    def _rebuild_open_caches(self) -> None:
        for rowid, domain, ns, start in self._conn.execute(
            "SELECT id, domain, ns, start FROM pairs WHERE end IS NULL"
        ):
            self._open_rows[(domain, ns)] = (rowid, start)
            self._current.setdefault(domain, set()).add(ns)
        for rowid, kind, key, start in self._conn.execute(
            "SELECT id, kind, key, start FROM presence WHERE end IS NULL"
        ):
            self._open_presence[(kind, key)] = (rowid, start)

    # -- transaction batching ----------------------------------------------

    def _write(self, sql: str, params: tuple) -> sqlite3.Cursor:
        started = clock.perf_counter()
        if not self._in_txn:
            self._conn.execute("BEGIN")
            self._in_txn = True
        cursor = self._conn.execute(sql, params)
        self._txn_writes += 1
        self._write_count.inc()
        self._write_timer.observe(clock.perf_counter() - started)
        if self._txn_writes >= _TXN_BATCH:
            self._commit()
        return cursor

    def _commit(self) -> None:
        if self._in_txn:
            started = clock.perf_counter()
            self._conn.execute("COMMIT")
            self._in_txn = False
            self._txn_writes = 0
            self._commit_count.inc()
            self._commit_timer.observe(clock.perf_counter() - started)

    # -- pair intervals ----------------------------------------------------

    def open_pair(self, domain: str, ns: str, day: int) -> None:
        cursor = self._write(
            "INSERT INTO pairs (domain, ns, start, end) VALUES (?, ?, ?, NULL)",
            (domain, ns, day),
        )
        self._open_rows[(domain, ns)] = (cursor.lastrowid or 0, day)
        self._current.setdefault(domain, set()).add(ns)

    def close_pair(self, domain: str, ns: str, day: int) -> None:
        entry = self._open_rows.pop((domain, ns), None)
        if entry is None:
            return
        rowid, start = entry
        current = self._current.get(domain)
        if current is not None:
            current.discard(ns)
            if not current:
                del self._current[domain]
        if day <= start:
            # Same-day add/remove: invisible at daily granularity.
            self._write("DELETE FROM pairs WHERE id = ?", (rowid,))
            return
        self._write("UPDATE pairs SET end = ? WHERE id = ?", (day, rowid))

    def add_record(self, domain: str, ns: str, start: int, end: int | None) -> None:
        cursor = self._write(
            "INSERT INTO pairs (domain, ns, start, end) VALUES (?, ?, ?, ?)",
            (domain, ns, start, end),
        )
        if end is None:
            self._open_rows[(domain, ns)] = (cursor.lastrowid or 0, start)
            self._current.setdefault(domain, set()).add(ns)

    def current_nameservers(self, domain: str) -> frozenset[str]:
        return frozenset(self._current.get(domain, ()))

    def current_domains(self, suffix: str | None = None) -> list[str]:
        if suffix is None:
            return list(self._current)
        return [domain for domain in self._current if domain.endswith(suffix)]

    # -- pair queries ------------------------------------------------------

    def all_nameservers(self) -> Iterator[str]:
        for (ns,) in self._conn.execute(
            "SELECT DISTINCT ns FROM pairs ORDER BY ns"
        ):
            yield ns

    def all_domains(self) -> Iterator[str]:
        for (domain,) in self._conn.execute(
            "SELECT DISTINCT domain FROM pairs ORDER BY domain"
        ):
            yield domain

    def nameserver_count(self) -> int:
        row = self._conn.execute("SELECT COUNT(DISTINCT ns) FROM pairs").fetchone()
        return int(row[0])

    def domain_count(self) -> int:
        row = self._conn.execute(
            "SELECT COUNT(DISTINCT domain) FROM pairs"
        ).fetchone()
        return int(row[0])

    def ns_records(self, ns: str) -> list[DelegationRecord]:
        started = clock.perf_counter()
        records = [
            DelegationRecord(domain, ns, start, end)
            for domain, start, end in self._conn.execute(
                "SELECT domain, start, end FROM pairs WHERE ns = ? "
                "ORDER BY start, domain, id",
                (ns,),
            )
        ]
        self._query_count.inc()
        self._query_timer.observe(clock.perf_counter() - started)
        return records

    def domain_records(self, domain: str) -> list[DelegationRecord]:
        return [
            DelegationRecord(domain, ns, start, end)
            for ns, start, end in self._conn.execute(
                "SELECT ns, start, end FROM pairs WHERE domain = ? "
                "ORDER BY start, ns, id",
                (domain,),
            )
        ]

    def domains_in_tld(self, tld: str) -> list[str]:
        suffix = "." + tld
        return [
            domain
            for (domain,) in self._conn.execute(
                "SELECT DISTINCT domain FROM pairs WHERE domain LIKE ? "
                "ORDER BY domain",
                ("%" + suffix,),
            )
            if domain.endswith(suffix)
        ]

    def partitions(self) -> list[str]:
        return sorted(
            {domain.rsplit(".", 1)[-1] for domain in self.all_domains()}
        )

    # -- presence histories ------------------------------------------------

    def open_presence(self, kind: str, key: str, day: int) -> None:
        if (kind, key) in self._open_presence:
            return
        cursor = self._write(
            "INSERT INTO presence (kind, key, start, end) VALUES (?, ?, ?, NULL)",
            (kind, key, day),
        )
        self._open_presence[(kind, key)] = (cursor.lastrowid or 0, day)

    def close_presence(self, kind: str, key: str, day: int) -> None:
        entry = self._open_presence.pop((kind, key), None)
        if entry is None:
            return
        rowid, start = entry
        if day <= start:
            self._write("DELETE FROM presence WHERE id = ?", (rowid,))
            return
        self._write("UPDATE presence SET end = ? WHERE id = ?", (day, rowid))

    def add_presence(self, kind: str, key: str, start: int, end: int | None) -> None:
        cursor = self._write(
            "INSERT INTO presence (kind, key, start, end) VALUES (?, ?, ?, ?)",
            (kind, key, start, end),
        )
        if end is None:
            self._open_presence[(kind, key)] = (cursor.lastrowid or 0, start)

    def presence_contains(self, kind: str, key: str, day: int) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM presence WHERE kind = ? AND key = ? AND start <= ? "
            "AND (end IS NULL OR end > ?) LIMIT 1",
            (kind, key, day, day),
        ).fetchone()
        return row is not None

    def presence_intervals(self, kind: str, key: str) -> list[Interval]:
        return [
            Interval(start, end)
            for start, end in self._conn.execute(
                "SELECT start, end FROM presence WHERE kind = ? AND key = ? "
                "ORDER BY start, id",
                (kind, key),
            )
        ]

    def presence_keys(self, kind: str) -> Iterator[str]:
        for (key,) in self._conn.execute(
            "SELECT DISTINCT key FROM presence WHERE kind = ? ORDER BY key",
            (kind,),
        ):
            yield key

    def presence_open(self, kind: str, key: str) -> bool:
        return (kind, key) in self._open_presence

    # -- delta tracking ----------------------------------------------------

    def apply_delta(self, event: DeltaEvent, batch_day: int) -> None:
        self.record_delta(event, batch_day)
        dispatch_delta(self, event)

    def record_delta(self, event: DeltaEvent, batch_day: int) -> None:
        self._write(
            "INSERT INTO deltas (batch_day, kind, day, name, ns) "
            "VALUES (?, ?, ?, ?, ?)",
            (batch_day, event.kind, event.day, event.name, event.ns),
        )

    def deltas_since(self, day: int | None) -> list[tuple[int, DeltaEvent]]:
        if day is None:
            rows = self._conn.execute(
                "SELECT batch_day, kind, day, name, ns FROM deltas ORDER BY seq"
            )
        else:
            rows = self._conn.execute(
                "SELECT batch_day, kind, day, name, ns FROM deltas "
                "WHERE batch_day > ? ORDER BY seq",
                (day,),
            )
        return [
            (int(batch_day), DeltaEvent(kind=kind, day=d, name=name, ns=ns))
            for batch_day, kind, d, name, ns in rows
        ]

    # -- metadata / lifecycle ----------------------------------------------

    def get_meta(self, key: str) -> str | None:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else str(row[0])

    def set_meta(self, key: str, value: str) -> None:
        self._write(
            "INSERT INTO meta (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            (key, value),
        )

    def flush(self) -> None:
        self._commit()

    def integrity_check(self) -> list[str]:
        """Problems reported by SQLite's own integrity scan (empty = ok)."""
        self._commit()
        rows = self._conn.execute("PRAGMA integrity_check").fetchall()
        problems = [str(row[0]) for row in rows if str(row[0]) != "ok"]
        return problems

    def close(self) -> None:
        self._commit()
        if self.on_disk:
            # Fold the WAL back into the main file and drop the -wal/-shm
            # sidecars, so the dataset is a single checksummable file.
            self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        self._conn.close()
