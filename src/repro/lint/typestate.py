"""Typestate dataflow: a worklist fixpoint over protocol automata.

The fourth lint engine. A *protocol automaton* declares, for one class
of tracked objects (a span context, a temp file, a journal handle),
which states exist, which AST events move between them, which
transitions are protocol violations, and which states may not survive
to a function exit. This module supplies the machinery shared by every
protocol (:mod:`repro.lint.protocols` declares the actual rules):

* a may-analysis over the per-function CFG
  (:mod:`repro.lint.cfg`) — the abstract state maps each tracked
  object to the *set* of automaton states it may occupy, joined by
  union at merge points;
* exception-edge precision: a statement's events are treated as *not
  yet applied* on its exception out-edges (the statement may raise
  before its effect lands), while synthetic ``with-exit`` nodes apply
  their events on every out-edge (``__exit__`` has run by the time the
  exception resumes);
* DET013-style local alias tracking: objects are identified by the
  closure of local names syntactically bound to the creation
  expression.

Everything is function-local and syntactic by design, matching the
project engine's philosophy: the protocols encode invariants whose
*bypass* is the finding, regardless of whether the path is provably
reachable.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Any, Iterable, Iterator, Mapping

from repro.lint.cfg import CFG, EXCEPTION, CFGNode, function_cfgs
from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic
from repro.lint.project import _module_name_for
from repro.lint.registry import TYPESTATE_CHECKERS, make

#: An event occurrence inside one CFG node: name + source position.
Event = tuple[str, int, int]

#: The creation pseudo-event: rebinds the object to its initial state.
CREATE = "create"

#: Node kinds whose events apply on every out-edge, exception edges
#: included (the unwinding work has happened when the exception
#: resumes). Everything else propagates its *pre*-event state on
#: exception edges.
_POST_ON_EXCEPTION = frozenset({"with-exit"})

#: The pre-creation state: every object occupies it from function entry
#: until its CREATE event fires. It has no transitions and no exit
#: obligations, so events reaching a not-yet-created object are inert —
#: its only job is keeping the entry state map non-empty so the
#: worklist propagates reachability through the whole graph.
_VIRGIN = "__virgin__"


@dataclass
class TrackedObject:
    """One protocol instance being tracked through a function."""

    key: str
    #: Local alias closure for the object (may be empty for pseudo
    #: objects and ``with``-item creations).
    names: frozenset[str] = frozenset()
    line: int = 0
    col: int = 0
    #: Pseudo-objects (DET017's checkpoint ordering) exist from entry.
    at_entry: bool = False
    #: The creating statement/expression, matched by identity.
    creation: ast.AST | None = None
    #: Protocol-specific extras (handle aliases, rename targets, ...).
    data: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class TypestateContext:
    """Everything a protocol needs to know about the file under lint."""

    path: str
    config: LintConfig
    #: Dotted module name when the file sits under a project root.
    module: str | None

    def function_ident(self, qualname: str) -> str | None:
        """``module:qualname`` spec for one function, if resolvable."""
        if self.module is None:
            return None
        return f"{self.module}:{qualname}"


class ProtocolAutomaton:
    """Base class for one declarative protocol automaton.

    Subclasses declare the automaton as data — ``initial``,
    ``transitions`` mapping ``(state, event)`` to ``(next state, error
    message or None)``, and exit obligations per state — and implement
    the AST-facing hooks :meth:`collect` (find tracked objects) and
    :meth:`events` (events one CFG node applies to one object).
    Unmapped ``(state, event)`` pairs keep the state and report
    nothing. Error messages may reference ``{obj_line}``.
    """

    rule_id: str = ""
    initial: str = ""
    transitions: Mapping[tuple[str, str], tuple[str, str | None]] = {}
    #: state -> message, checked against the normal-exit in-state.
    exit_obligations: Mapping[str, str] = {}
    #: state -> message, checked against the raise-exit in-state.
    exception_exit_obligations: Mapping[str, str] = {}
    #: Event names applied even on a node's *exception* out-edges: the
    #: lenient assumption that a cleanup call (``close``, ``__exit__``)
    #: took effect even if it raised. Without this, cleanup inside
    #: ``finally`` would be condemned by its own exception edge.
    cleanup_events: frozenset[str] = frozenset()

    def applies_to(self, ctx: TypestateContext) -> bool:
        """Scope gate, usually a config path-prefix check."""
        return True

    def collect(self, cfg: CFG, ctx: TypestateContext) -> list[TrackedObject]:
        """The objects this protocol tracks through ``cfg``."""
        return []

    def events(
        self, node: CFGNode, obj: TrackedObject, ctx: TypestateContext
    ) -> list[Event]:
        """Events ``node`` applies to ``obj``, in source order."""
        return []

    def scan(self, cfg: CFG, ctx: TypestateContext) -> list[Diagnostic]:
        """Stateless per-function findings that ride the same rule."""
        return []


# -- AST helpers shared by the protocol implementations ----------------------


def walk_evaluated(trees: Iterable[ast.AST]) -> Iterator[ast.AST]:
    """Walk AST subtrees, skipping code that does not run here.

    Nested ``def``/``class`` bodies and ``lambda`` bodies execute
    later (or never); scanning them for events would attribute their
    calls to the wrong program point.
    """
    stack = [tree for tree in trees if tree is not None]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
            ):
                continue
            stack.append(child)


def scope_calls(node: CFGNode) -> list[ast.Call]:
    """Every call evaluated at ``node``, in source order.

    ``with-exit`` nodes share their scope (the context expression) with
    the ``with-enter`` node that actually evaluated it; returning its
    calls again would double-count every event.
    """
    if node.kind == "with-exit":
        return []
    calls = [
        child
        for child in walk_evaluated(node.scope)
        if isinstance(child, ast.Call)
    ]
    calls.sort(key=lambda call: (call.lineno, call.col_offset))
    return calls


def own_statements(func: ast.AST) -> Iterator[ast.stmt]:
    """Statements belonging to ``func`` itself (nested defs opaque)."""
    stack: list[ast.stmt] = list(getattr(func, "body", []))
    while stack:
        stmt = stack.pop()
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for _, value in ast.iter_fields(stmt):
            if isinstance(value, list):
                stack.extend(
                    child for child in value if isinstance(child, ast.stmt)
                )


def assign_target(stmt: ast.stmt) -> str | None:
    """The single plain-name target of an assignment, if any."""
    if (
        isinstance(stmt, ast.Assign)
        and len(stmt.targets) == 1
        and isinstance(stmt.targets[0], ast.Name)
    ):
        return stmt.targets[0].id
    return None


def alias_closure(func: ast.AST, seeds: Iterable[str]) -> frozenset[str]:
    """Locals transitively rebound from ``seeds`` (``a = b`` chains)."""
    names = set(seeds)
    changed = True
    while changed:
        changed = False
        for stmt in own_statements(func):
            target = assign_target(stmt)
            if (
                target is not None
                and target not in names
                and isinstance(stmt.value, ast.Name)
                and stmt.value.id in names
            ):
                names.add(target)
                changed = True
    return frozenset(names)


def dotted_name(expr: ast.expr) -> str | None:
    """``os.replace`` for an ``os.replace`` attribute chain, else None."""
    parts: list[str] = []
    node: ast.expr = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def call_matches(call: ast.Call, specs: Iterable[str]) -> bool:
    """Does the call target match a configured function spec?

    Dotted specs (``os.replace``) require the full attribute chain;
    bare specs (``atomic_write_bytes``) match a plain name call or the
    final attribute segment (``atomic.atomic_write_bytes``).
    """
    dotted = dotted_name(call.func)
    last: str | None = None
    if isinstance(call.func, ast.Attribute):
        last = call.func.attr
    elif isinstance(call.func, ast.Name):
        last = call.func.id
    for spec in specs:
        if "." in spec:
            if dotted == spec:
                return True
        elif last == spec:
            return True
    return False


def receiver_name(call: ast.Call) -> str | None:
    """``x`` for an ``x.method(...)`` call, else None."""
    if isinstance(call.func, ast.Attribute) and isinstance(
        call.func.value, ast.Name
    ):
        return call.func.value.id
    return None


def names_in(expr: ast.AST) -> set[str]:
    """Every plain name mentioned in an evaluated expression."""
    return {
        node.id
        for node in walk_evaluated([expr])
        if isinstance(node, ast.Name)
    }


# -- the fixpoint engine -----------------------------------------------------

#: obj key -> set of automaton states it may occupy.
_StateMap = dict[str, frozenset[str]]


def _apply_events(
    protocol: ProtocolAutomaton,
    states: frozenset[str],
    events: tuple[Event, ...],
) -> frozenset[str]:
    for name, _, _ in events:
        if name == CREATE:
            states = frozenset((protocol.initial,))
            continue
        moved = set()
        for state in sorted(states):
            transition = protocol.transitions.get((state, name))
            moved.add(transition[0] if transition is not None else state)
        states = frozenset(moved)
    return states


def _transfer(
    protocol: ProtocolAutomaton,
    in_map: _StateMap,
    node_events: dict[str, tuple[Event, ...]],
    objects: list[TrackedObject],
) -> _StateMap:
    out = dict(in_map)
    for obj in objects:
        events = node_events.get(obj.key, ())
        if not events:
            continue
        out[obj.key] = _apply_events(
            protocol, out.get(obj.key, frozenset()), events
        )
    return out


def _join_into(target: _StateMap, incoming: _StateMap) -> bool:
    changed = False
    for key, states in incoming.items():
        merged = target.get(key, frozenset()) | states
        if merged != target.get(key, frozenset()):
            target[key] = merged
            changed = True
    return changed


def analyze_cfg(
    cfg: CFG, protocol: ProtocolAutomaton, ctx: TypestateContext
) -> list[Diagnostic]:
    """Run one protocol over one function and report its violations."""
    diagnostics = list(protocol.scan(cfg, ctx))
    objects = protocol.collect(cfg, ctx)
    if not objects:
        return diagnostics

    events: dict[int, dict[str, tuple[Event, ...]]] = {}
    for node in cfg.nodes:
        per_node: dict[str, tuple[Event, ...]] = {}
        for obj in objects:
            found = tuple(
                sorted(protocol.events(node, obj, ctx), key=lambda e: e[1:])
            )
            if found:
                per_node[obj.key] = found
        events[node.index] = per_node

    in_states: list[_StateMap] = [{} for _ in cfg.nodes]
    in_states[cfg.entry] = {
        obj.key: frozenset((protocol.initial if obj.at_entry else _VIRGIN,))
        for obj in objects
    }
    worklist = [cfg.entry]
    while worklist:
        index = worklist.pop()
        node = cfg.nodes[index]
        pre = in_states[index]
        post = _transfer(protocol, pre, events[index], objects)
        # Exception edges carry the pre-event state (the statement may
        # raise before its effect lands) — except for declared cleanup
        # events, which are assumed to have taken effect regardless.
        exc_events = {
            key: cleaned
            for key, node_events in events[index].items()
            if (
                cleaned := tuple(
                    event
                    for event in node_events
                    if event[0] in protocol.cleanup_events
                )
            )
        }
        exc_post = (
            _transfer(protocol, pre, exc_events, objects)
            if exc_events
            else pre
        )
        for target, edge_kind in node.succs:
            carried = (
                exc_post
                if edge_kind == EXCEPTION
                and node.kind not in _POST_ON_EXCEPTION
                else post
            )
            if _join_into(in_states[target], carried):
                worklist.append(target)

    by_key = {obj.key: obj for obj in objects}
    reported: set[tuple[str, int, int, str]] = set()

    def report(obj: TrackedObject, line: int, col: int, message: str) -> None:
        message = message.format(obj_line=obj.line)
        fingerprint = (obj.key, line, col, message)
        if fingerprint in reported:
            return
        reported.add(fingerprint)
        diagnostics.append(
            make(protocol.rule_id, ctx.path, line, col, message, cfg.name)
        )

    # Transition errors: replay each node's events over its fixpoint
    # in-state; a transition carrying a message is a finding at the
    # event site.
    for node in cfg.nodes:
        for key, node_events in events[node.index].items():
            states = in_states[node.index].get(key, frozenset())
            for name, line, col in node_events:
                if name == CREATE:
                    states = frozenset((protocol.initial,))
                    continue
                moved = set()
                for state in sorted(states):
                    transition = protocol.transitions.get((state, name))
                    if transition is None:
                        moved.add(state)
                        continue
                    next_state, error = transition
                    moved.add(next_state)
                    if error is not None:
                        report(by_key[key], line, col, error)
                states = frozenset(moved)

    # Exit obligations: states that may not survive to function exit.
    for obj in objects:
        for state in sorted(in_states[cfg.exit].get(obj.key, frozenset())):
            message = protocol.exit_obligations.get(state)
            if message is not None:
                report(obj, obj.line, obj.col, message)
        for state in sorted(
            in_states[cfg.raise_exit].get(obj.key, frozenset())
        ):
            message = protocol.exception_exit_obligations.get(state)
            if message is not None:
                report(obj, obj.line, obj.col, message)
    return diagnostics


# -- engine entry points -----------------------------------------------------


def module_for_path(rel_path: str, config: LintConfig) -> str | None:
    """Dotted module name for a file under a configured project root."""
    path = PurePosixPath(rel_path)
    for prefix in config.project_paths:
        prefix_parts = PurePosixPath(prefix).parts
        if path.parts[: len(prefix_parts)] == prefix_parts:
            return _module_name_for(
                PurePosixPath(*path.parts[len(prefix_parts):])
            )
    return None


def lint_typestate_source(
    source: str, rel_path: str, config: LintConfig
) -> list[Diagnostic]:
    """Run every applicable protocol automaton over one Python source.

    Parse errors report nothing here — the code engine owns DET000.
    Like the other engines, this computes findings for *all* protocol
    rules; the runner applies ``select``/``ignore`` afterwards so the
    staleness pass sees pre-filter results.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return []
    ctx = TypestateContext(
        path=rel_path,
        config=config,
        module=module_for_path(rel_path, config),
    )
    active = [
        protocol for protocol in TYPESTATE_CHECKERS if protocol.applies_to(ctx)
    ]
    if not active:
        return []
    diagnostics: list[Diagnostic] = []
    for graph in function_cfgs(tree):
        for protocol in active:
            diagnostics.extend(analyze_cfg(graph, protocol, ctx))
    return diagnostics


def lint_typestate_file(
    file_path: Path, rel_path: str, config: LintConfig
) -> list[Diagnostic]:
    """Typestate-lint one file on disk (unreadable files are skipped)."""
    try:
        source = file_path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError):
        return []
    return lint_typestate_source(source, rel_path, config)
