"""The rule registry: one catalogue, four engines.

Every rule — code, scenario, project, or typestate — registers itself
here with an id, a slug, the engine that runs it, and a one-line
summary. The runner uses the catalogue to validate
``--select``/``--ignore`` arguments (and to skip engines whose every
rule is deselected), the docs generator renders the rule table from
it, and the engines use it to look up severities. Registering a new
rule is the whole extension contract:

    @code_checker
    def check_my_rule(tree, ctx): ...          # yields Diagnostics

    typestate_checker(MyProtocol())            # a ProtocolAutomaton

    RULES register via :func:`rule` at import time.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Protocol

from repro.lint.diagnostics import Diagnostic, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.lint.code_engine import CodeContext
    from repro.lint.scenario_engine import ScenarioContext
    from repro.lint.typestate import ProtocolAutomaton


@dataclass(frozen=True, slots=True)
class Rule:
    """Catalogue entry for one lint rule."""

    rule_id: str
    slug: str
    engine: str  # "code" | "scenario" | "project" | "typestate"
    summary: str
    severity: Severity = Severity.ERROR


#: The full rule catalogue, keyed by rule id.
RULES: dict[str, Rule] = {}


class CodeChecker(Protocol):
    """A code-engine plugin: receives a parsed module and its context."""

    def __call__(
        self, tree: ast.Module, ctx: "CodeContext"
    ) -> Iterable[Diagnostic]: ...  # pragma: no cover - protocol


class ScenarioChecker(Protocol):
    """A scenario-engine plugin: receives a parsed JSON document."""

    def __call__(
        self, doc: dict[str, Any], ctx: "ScenarioContext"
    ) -> Iterable[Diagnostic]: ...  # pragma: no cover - protocol


#: Checker plugins, run in registration order by their engine.
CODE_CHECKERS: list[CodeChecker] = []
SCENARIO_CHECKERS: list[ScenarioChecker] = []
#: Protocol automata for the typestate engine; several may share one
#: rule id (DET014 tracks spans and tracers with separate automata).
TYPESTATE_CHECKERS: list["ProtocolAutomaton"] = []


def rule(
    rule_id: str,
    slug: str,
    engine: str,
    summary: str,
    severity: Severity = Severity.ERROR,
) -> Rule:
    """Register one rule in the catalogue (idempotent per id)."""
    if engine not in ("code", "scenario", "project", "typestate"):
        raise ValueError(f"unknown lint engine {engine!r}")
    entry = Rule(rule_id, slug, engine, summary, severity)
    existing = RULES.get(rule_id)
    if existing is not None and existing != entry:
        raise ValueError(f"conflicting registrations for rule {rule_id}")
    RULES[rule_id] = entry
    return entry


def code_checker(func: CodeChecker) -> CodeChecker:
    """Register a code-engine checker plugin."""
    CODE_CHECKERS.append(func)
    return func


def scenario_checker(func: ScenarioChecker) -> ScenarioChecker:
    """Register a scenario-engine checker plugin."""
    SCENARIO_CHECKERS.append(func)
    return func


def typestate_checker(protocol: "ProtocolAutomaton") -> "ProtocolAutomaton":
    """Register a typestate protocol automaton instance."""
    TYPESTATE_CHECKERS.append(protocol)
    return protocol


def severity_of(rule_id: str) -> Severity:
    """The catalogue severity for ``rule_id`` (ERROR if unregistered)."""
    entry = RULES.get(rule_id)
    return entry.severity if entry is not None else Severity.ERROR


def make(
    rule_id: str,
    path: str,
    line: int,
    col: int,
    message: str,
    symbol: str = "",
) -> Diagnostic:
    """Build a diagnostic carrying the rule's catalogue severity."""
    return Diagnostic(
        rule_id=rule_id,
        path=path,
        line=line,
        col=col,
        message=message,
        symbol=symbol,
        severity=severity_of(rule_id),
    )


def validate_rule_ids(rule_ids: Iterable[str]) -> None:
    """Raise ``ValueError`` naming any id absent from the catalogue."""
    unknown = sorted(set(rule_ids) - set(RULES))
    if unknown:
        raise ValueError(f"unknown lint rule id(s): {', '.join(unknown)}")


def catalogue() -> list[Rule]:
    """Every registered rule, ordered by id (engines must be imported)."""
    return [RULES[key] for key in sorted(RULES)]
