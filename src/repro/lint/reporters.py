"""Reporters: render a lint run as text (human) or JSON (CI tooling)."""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.lint.diagnostics import Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.runner import LintResult


def render_text(result: "LintResult") -> str:
    """Human-readable report: one line per finding, then a summary."""
    lines: list[str] = []
    for diag in sorted(result.diagnostics, key=lambda d: d.sort_key()):
        marker = "warning" if diag.severity is Severity.WARNING else "error"
        lines.append(f"{diag.render()}  ({marker})")
    errors = sum(
        1 for d in result.diagnostics if d.severity is Severity.ERROR
    )
    warnings = len(result.diagnostics) - errors
    summary = (
        f"{result.files_scanned} file(s) scanned: "
        f"{errors} error(s), {warnings} warning(s), "
        f"{len(result.baselined)} baselined"
    )
    if result.stale_baseline_entries:
        summary += f", {len(result.stale_baseline_entries)} stale baseline entr(ies)"
    lines.append(summary)
    for entry in result.stale_baseline_entries:
        lines.append(
            f"stale baseline entry: {entry.rule} at {entry.path} "
            f"[{entry.symbol}] — finding no longer occurs; remove it"
        )
    return "\n".join(lines)


def render_json(result: "LintResult") -> str:
    """Machine-readable report (stable key order)."""
    payload = {
        "files_scanned": result.files_scanned,
        "diagnostics": [
            d.to_dict()
            for d in sorted(result.diagnostics, key=lambda d: d.sort_key())
        ],
        "baselined": [
            d.to_dict()
            for d in sorted(result.baselined, key=lambda d: d.sort_key())
        ],
        "stale_baseline_entries": [
            entry.to_dict() for entry in result.stale_baseline_entries
        ],
        "exit_code": result.exit_code,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
