"""The ``lint --fix`` engine: span-precise, idempotent source rewrites.

Three rules describe fixes precise enough to apply mechanically:

* **DET004** — wrap the set-valued expression in ``sorted(...)``;
* **DET006** — replace a mutable default with ``None`` and insert an
  ``if arg is None: arg = <original>`` guard at the top of the body;
* **DET007** — replace builtin ``hash`` with ``stable_hash`` and add
  the ``from repro.faults.rng import stable_hash`` import if missing.

Edits are computed as byte-range replacements — ``ast`` column offsets
are UTF-8 byte offsets, so all span arithmetic happens on the encoded
source. Overlapping edits drop the inner one; a file whose rewritten
text fails to re-parse is left untouched and reported. Every fix
removes the pattern its rule matches, so a second ``--fix`` pass is a
no-op by construction (and the test suite asserts it).

Baselined findings are never fixed: an entry in the baseline is a
human judgement that the flagged code is correct as written (e.g. a
test asserting the ``__hash__`` protocol), which a mechanical rewrite
would overrule.
"""

from __future__ import annotations

import ast
import difflib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.lint.baseline import Baseline
from repro.lint.code_engine import FixCandidate, collect_fix_candidates
from repro.lint.config import LintConfig, load_config
from repro.lint.diagnostics import Diagnostic

#: Rules the fixer knows how to rewrite.
FIXABLE_RULES = frozenset({"DET004", "DET006", "DET007"})

#: The import the DET007 fix introduces.
_STABLE_HASH_IMPORT = "from repro.faults.rng import stable_hash"


@dataclass(frozen=True)
class Edit:
    """One byte-range replacement: ``source[start:end] -> replacement``."""

    start: int
    end: int
    replacement: bytes

    def overlaps(self, other: "Edit") -> bool:
        return self.start < other.end and other.start < self.end


@dataclass
class FileFix:
    """Everything ``--fix`` did (or would do) to one file."""

    path: str  # root-relative posix path
    absolute: Path
    before: str
    after: str
    applied: list[Diagnostic] = field(default_factory=list)
    #: Fix candidates dropped with the reason (overlap, parse failure...).
    skipped: list[tuple[Diagnostic, str]] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return self.after != self.before

    def unified_diff(self) -> str:
        """A unified diff of the rewrite, for ``--fix-diff``."""
        return "".join(
            difflib.unified_diff(
                self.before.splitlines(keepends=True),
                self.after.splitlines(keepends=True),
                fromfile=f"a/{self.path}",
                tofile=f"b/{self.path}",
            )
        )


def _line_starts(source: bytes) -> list[int]:
    """Byte offset of the start of each 1-indexed line."""
    starts = [0]
    for index, byte in enumerate(source):
        if byte == 0x0A:
            starts.append(index + 1)
    return starts


def _span(
    starts: list[int], node: ast.AST
) -> tuple[int, int] | None:
    """The (start, end) byte range of ``node``, if fully located."""
    lineno = getattr(node, "lineno", None)
    col = getattr(node, "col_offset", None)
    end_lineno = getattr(node, "end_lineno", None)
    end_col = getattr(node, "end_col_offset", None)
    if None in (lineno, col, end_lineno, end_col):
        return None
    assert lineno is not None and end_lineno is not None
    assert col is not None and end_col is not None
    if lineno > len(starts) or end_lineno > len(starts):
        return None
    return (starts[lineno - 1] + col, starts[end_lineno - 1] + end_col)


def _module_binds_stable_hash(tree: ast.Module) -> bool:
    """Is ``stable_hash`` already a module-level name?"""
    for node in tree.body:
        if isinstance(node, ast.ImportFrom):
            for name in node.names:
                if (name.asname or name.name) == "stable_hash":
                    return True
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == "stable_hash":
                return True
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "stable_hash":
                    return True
    return False


def _import_insertion_offset(
    tree: ast.Module, starts: list[int], source: bytes
) -> int:
    """Byte offset where a new top-level import belongs.

    After the last existing top-level import; else after the module
    docstring; else at the very top (but below ``from __future__``,
    which the import scan already covers).
    """
    last_import_end: int | None = None
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            end_lineno = getattr(node, "end_lineno", node.lineno)
            if end_lineno <= len(starts):
                line_end = (
                    starts[end_lineno]
                    if end_lineno < len(starts)
                    else len(source)
                )
                last_import_end = line_end
    if last_import_end is not None:
        return last_import_end
    if (
        tree.body
        and isinstance(tree.body[0], ast.Expr)
        and isinstance(tree.body[0].value, ast.Constant)
        and isinstance(tree.body[0].value.value, str)
    ):
        docstring_end = getattr(
            tree.body[0], "end_lineno", tree.body[0].lineno
        )
        if docstring_end < len(starts):
            return starts[docstring_end]
        return len(source)
    return 0


def _guard_insertion_point(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    starts: list[int],
    source: bytes,
) -> tuple[int, bytes] | None:
    """(byte offset, indent) where ``if arg is None`` guards go.

    Guards land before the first non-docstring body statement. A body
    that starts on the ``def`` line itself (``def f(x=[]): return x``)
    has no clean insertion line, so the fix is skipped there.
    """
    body = list(func.body)
    first = body[0]
    if (
        isinstance(first, ast.Expr)
        and isinstance(first.value, ast.Constant)
        and isinstance(first.value.value, str)
        and len(body) > 1
    ):
        first = body[1]
    if first.lineno == func.lineno:
        return None
    if first.lineno > len(starts):
        return None
    offset = starts[first.lineno - 1]
    indent = source[offset : offset + first.col_offset]
    if indent.strip():  # the "indent" contains code: same-line statements
        return None
    return (offset, indent)


def _plan_file_edits(
    source: bytes,
    tree_candidates: list[FixCandidate],
    starts: list[int],
) -> tuple[list[tuple[Edit, Diagnostic]], list[tuple[Diagnostic, str]]]:
    """Translate candidates into byte edits (plus skipped ones)."""
    edits: list[tuple[Edit, Diagnostic]] = []
    skipped: list[tuple[Diagnostic, str]] = []
    #: One guard insertion per function, keyed by the def node.
    guards: dict[ast.AST, list[tuple[str, bytes, Diagnostic]]] = {}
    guard_points: dict[ast.AST, tuple[int, bytes]] = {}
    needs_import = False
    tree: ast.Module | None = None

    for candidate in tree_candidates:
        diagnostic = candidate.diagnostic
        if candidate.rule_id == "DET004":
            wrap = candidate.data["wrap"]
            assert isinstance(wrap, ast.expr)
            span = _span(starts, wrap)
            if span is None:
                skipped.append((diagnostic, "expression has no location"))
                continue
            start, end = span
            edits.append(
                (Edit(start, start, b"sorted("), diagnostic)
            )
            edits.append((Edit(end, end, b")"), diagnostic))
        elif candidate.rule_id == "DET006":
            func = candidate.data["func"]
            default = candidate.data["default"]
            arg = candidate.data["arg"]
            assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
            assert isinstance(default, ast.expr)
            assert isinstance(arg, str)
            span = _span(starts, default)
            if span is None:
                skipped.append((diagnostic, "default has no location"))
                continue
            if func not in guard_points:
                point = _guard_insertion_point(func, starts, source)
                if point is None:
                    skipped.append(
                        (diagnostic, "function body has no insertion line")
                    )
                    continue
                guard_points[func] = point
            start, end = span
            edits.append((Edit(start, end, b"None"), diagnostic))
            guards.setdefault(func, []).append(
                (arg, source[start:end], diagnostic)
            )
        elif candidate.rule_id == "DET007":
            name = candidate.data["name"]
            assert isinstance(name, ast.expr)
            span = _span(starts, name)
            if span is None:
                skipped.append((diagnostic, "call has no location"))
                continue
            start, end = span
            edits.append((Edit(start, end, b"stable_hash"), diagnostic))
            needs_import = True
        else:
            skipped.append((diagnostic, "no fix strategy"))

    for func, triples in guards.items():
        offset, indent = guard_points[func]
        lines = b""
        for arg, original, _ in triples:
            arg_b = arg.encode("utf-8")
            lines += (
                indent + b"if " + arg_b + b" is None:\n"
                + indent + b"    " + arg_b + b" = " + original + b"\n"
            )
        # Anchor the insertion to this function's first flagged default.
        edits.append((Edit(offset, offset, lines), triples[0][2]))

    if needs_import:
        tree = ast.parse(source.decode("utf-8"))
        if not _module_binds_stable_hash(tree):
            offset = _import_insertion_offset(tree, starts, source)
            edits.append(
                (
                    Edit(
                        offset, offset,
                        _STABLE_HASH_IMPORT.encode("utf-8") + b"\n",
                    ),
                    next(d for _, d in edits if d.rule_id == "DET007"),
                )
            )
    return edits, skipped


def _apply_edits(
    source: bytes, edits: list[tuple[Edit, Diagnostic]]
) -> tuple[bytes, list[Diagnostic], list[tuple[Diagnostic, str]]]:
    """Apply non-overlapping edits right-to-left; report dropped ones."""
    # Sort by (start, end); insertions at the same point apply in plan
    # order. Detect overlaps on the sorted sequence.
    ordered = sorted(
        enumerate(edits), key=lambda item: (item[1][0].start, item[1][0].end, item[0])
    )
    accepted: list[tuple[int, Edit, Diagnostic]] = []
    skipped: list[tuple[Diagnostic, str]] = []
    last_end = -1
    for index, (edit, diagnostic) in ordered:
        if edit.start < last_end:
            skipped.append((diagnostic, "overlaps an earlier fix"))
            continue
        accepted.append((index, edit, diagnostic))
        last_end = max(last_end, edit.end)
    result = source
    for _, edit, _ in sorted(
        accepted, key=lambda item: (item[1].start, item[1].end, item[0]),
        reverse=True,
    ):
        result = result[: edit.start] + edit.replacement + result[edit.end :]
    applied: list[Diagnostic] = []
    seen: set[tuple[str, str, int, int]] = set()
    for _, _, diagnostic in accepted:
        key = (diagnostic.rule_id, diagnostic.path, diagnostic.line, diagnostic.col)
        if key not in seen:
            seen.add(key)
            applied.append(diagnostic)
    return result, applied, skipped


def fix_source(
    source: str,
    path: str,
    config: LintConfig | None = None,
    baseline: Baseline | None = None,
) -> tuple[str, list[Diagnostic], list[tuple[Diagnostic, str]]]:
    """Fix one module's source text; returns (new text, applied, skipped)."""
    cfg = config or LintConfig()
    suppressions = baseline or Baseline()
    candidates = collect_fix_candidates(source, path, cfg)
    fixable: list[FixCandidate] = []
    skipped: list[tuple[Diagnostic, str]] = []
    for candidate in candidates:
        if not cfg.rule_enabled(candidate.rule_id):
            continue
        if suppressions.suppresses(candidate.diagnostic):
            skipped.append(
                (candidate.diagnostic, "baselined — accepted as written")
            )
            continue
        fixable.append(candidate)
    if not fixable:
        return (source, [], skipped)
    encoded = source.encode("utf-8")
    starts = _line_starts(encoded)
    edits, plan_skipped = _plan_file_edits(encoded, fixable, starts)
    skipped.extend(plan_skipped)
    rewritten, applied, apply_skipped = _apply_edits(encoded, edits)
    skipped.extend(apply_skipped)
    if not applied:
        return (source, [], skipped)
    text = rewritten.decode("utf-8")
    try:
        ast.parse(text)
    except SyntaxError:
        return (
            source,
            [],
            skipped + [(applied[0], "rewritten source failed to parse")],
        )
    return (text, applied, skipped)


def plan_fixes(
    paths: Iterable[Path | str],
    *,
    root: Path | str | None = None,
    config: LintConfig | None = None,
    baseline: Baseline | None = None,
    use_baseline: bool = True,
) -> list[FileFix]:
    """Compute fixes for every Python file under ``paths`` (no writes)."""
    from repro.lint.runner import _iter_lintable, _relativize

    cfg = config or load_config(root)
    if baseline is None and use_baseline:
        baseline = Baseline.load(cfg.baseline_path())
    elif baseline is None:
        baseline = Baseline()
    fixes: list[FileFix] = []
    for file_path in _iter_lintable((Path(p) for p in paths), cfg):
        if file_path.suffix != ".py":
            continue
        rel = _relativize(file_path, cfg.root)
        try:
            before = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            continue  # the lint run reports unreadable files as DET000
        after, applied, skipped = fix_source(before, rel, cfg, baseline)
        if applied or skipped:
            fixes.append(
                FileFix(
                    path=rel,
                    absolute=file_path,
                    before=before,
                    after=after,
                    applied=applied,
                    skipped=skipped,
                )
            )
    return fixes


def apply_fixes(fixes: Iterable[FileFix]) -> list[FileFix]:
    """Write every changed file; returns the fixes actually written."""
    written: list[FileFix] = []
    for fix in fixes:
        if not fix.changed:
            continue
        fix.absolute.write_text(fix.after, encoding="utf-8")
        written.append(fix)
    return written
