"""Engine 2: EPP referential integrity of scenario/world JSON, statically.

Validates the two document kinds ``repro.ecosystem.scenario_io`` reads
and writes — scenario configs (``riskybiz scenario``) and world dumps
(``riskybiz simulate --world-json``) — against the RFC 5731/5732 state
rules the paper centers on, without running the simulator:

========  ============================  ===================================
SCN100    malformed-document            document shape is invalid
SCN101    dangling-host-reference       delegation to a host that does not
                                        exist over the delegation interval
SCN102    delete-with-linked-hosts      domain deleted while a subordinate
                                        host still serves other domains
                                        (the RFC 5731/5732 block)
SCN103    sacrificial-rename-in-repo    "sacrificial" rename target inside
                                        the owning repository's namespace
SCN104    overlapping-delegations       same (domain, ns) intervals overlap
SCN105    unbridged-gap                 interval gap within the configured
                                        IngestPolicy bridge window
SCN106    fault-config-mismatch         faults section does not round-trip
                                        through FaultConfig
SCN107    purge-orphaned-hosts          registry purge left externally
                                        referenced hosts behind (warning;
                                        this is the paper's dummyns state)
SCN108    invalid-scenario              scenario config fails to load
SCN109    missing-scenario-digest       dataset/artifact manifest does not
                                        carry the digest of the scenario
                                        it was produced from
========  ============================  ===================================

Documents are recognized structurally: a ``"format"`` of
``riskybiz-world/1`` marks a world dump; ``riskybiz-dataset/1`` or
``riskybiz-artifact/1`` marks a dataset/artifact manifest; a top-level
object carrying ``seed`` and ``registrars`` is a scenario config;
anything else is not lintable and is skipped.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import make, rule, scenario_checker
from repro.simtime import Interval, merge_intervals

#: Format tag written by ``scenario_io.save_world``.
WORLD_FORMAT = "riskybiz-world/1"

#: Format tags written by ``repro.store`` (dataset and artifact-cache
#: manifests). Kept literal so the linter never imports the store layer.
MANIFEST_FORMATS = frozenset({"riskybiz-dataset/1", "riskybiz-artifact/1"})

rule("SCN100", "malformed-document", "scenario", "document shape is invalid")
rule(
    "SCN101", "dangling-host-reference", "scenario",
    "delegation references a host absent over the delegation interval",
)
rule(
    "SCN102", "delete-with-linked-hosts", "scenario",
    "domain deleted while subordinate hosts carry external references",
)
rule(
    "SCN103", "sacrificial-rename-in-repository", "scenario",
    "sacrificial rename targets a TLD inside the owning repository",
)
rule(
    "SCN104", "overlapping-delegations", "scenario",
    "delegation intervals for one (domain, ns) pair overlap",
)
rule(
    "SCN105", "unbridged-gap", "scenario",
    "delegation gap within the IngestPolicy bridge window was not bridged",
)
rule(
    "SCN106", "fault-config-mismatch", "scenario",
    "faults section does not round-trip through FaultConfig",
)
rule(
    "SCN107", "purge-orphaned-hosts", "scenario",
    "purge left externally referenced subordinate hosts orphaned",
    Severity.WARNING,
)
rule("SCN108", "invalid-scenario", "scenario", "scenario config fails to load")
rule(
    "SCN109", "missing-scenario-digest", "scenario",
    "dataset/artifact manifest lacks the producing scenario's digest",
)


@dataclass(frozen=True)
class ScenarioContext:
    """Which file is being linted, under which config."""

    path: str
    config: LintConfig
    kind: str  # "world" | "scenario" | "manifest"


def classify_document(data: object) -> str | None:
    """``"world"``, ``"scenario"``, ``"manifest"``, or ``None``."""
    if not isinstance(data, dict):
        return None
    if data.get("format") == WORLD_FORMAT:
        return "world"
    if data.get("format") in MANIFEST_FORMATS:
        return "manifest"
    if "seed" in data and "registrars" in data:
        return "scenario"
    return None


# -- shared parsing helpers --------------------------------------------------


def _tld_of(name: str) -> str:
    return name.rsplit(".", 1)[-1].lower()


def _parse_intervals(
    raw: object, where: str, problems: list[str]
) -> list[Interval]:
    intervals: list[Interval] = []
    if not isinstance(raw, list):
        problems.append(f"{where}: intervals must be a list")
        return intervals
    for item in raw:
        if (
            not isinstance(item, list)
            or len(item) != 2
            or not isinstance(item[0], int)
            or not (item[1] is None or isinstance(item[1], int))
        ):
            problems.append(f"{where}: interval must be [start, end|null]")
            continue
        try:
            intervals.append(Interval(item[0], item[1]))
        except ValueError as error:
            problems.append(f"{where}: {error}")
    return intervals


def _covers(existence: list[Interval], span: Interval) -> bool:
    """True if ``span`` lies entirely inside the union of ``existence``."""
    for merged in merge_intervals(existence):
        if merged.start <= span.start and (
            merged.end is None
            or (span.end is not None and span.end <= merged.end)
        ):
            return True
    return False


def _exists_at(existence: list[Interval], day: int) -> bool:
    return any(iv.contains(day) for iv in existence)


# -- world documents ---------------------------------------------------------


@dataclass
class _WorldDoc:
    """Parsed, index-friendly view of a world dump."""

    repositories: dict[str, frozenset[str]]  # operator -> TLD set
    #: (repository, host name) -> existence intervals. The same name can
    #: exist independently in several repositories (internal in one,
    #: external elsewhere), so the key must carry the repository.
    hosts: dict[tuple[str, str], list[Interval]]
    #: domain -> (registration intervals, purge days)
    domains: dict[str, tuple[list[Interval], frozenset[int]]]
    #: domain -> sponsoring repository operator
    domain_repos: dict[str, str]
    #: domain -> ns -> delegation intervals
    delegations: dict[str, dict[str, list[Interval]]]
    renames: list[dict[str, Any]]
    faults: object
    gap_bridge_days: int
    problems: list[str]


def _parse_world(data: dict[str, Any]) -> _WorldDoc:
    problems: list[str] = []
    repositories: dict[str, frozenset[str]] = {}
    for entry in data.get("repositories", []):
        if not isinstance(entry, dict) or "operator" not in entry:
            problems.append("repositories: entry must carry an operator")
            continue
        tlds = entry.get("tlds", [])
        if not isinstance(tlds, list):
            problems.append(f"repository {entry['operator']}: tlds must be a list")
            tlds = []
        repositories[str(entry["operator"])] = frozenset(
            str(t).lower() for t in tlds
        )
    hosts: dict[tuple[str, str], list[Interval]] = {}
    for entry in data.get("hosts", []):
        if not isinstance(entry, dict) or "name" not in entry:
            problems.append("hosts: entry must carry a name")
            continue
        name = str(entry["name"]).lower()
        repo = str(entry.get("repository", ""))
        if not repo:
            problems.append(f"host {name}: missing repository")
            continue
        hosts.setdefault((repo, name), []).extend(
            _parse_intervals(entry.get("intervals", []), f"host {name}", problems)
        )
    domains: dict[str, tuple[list[Interval], frozenset[int]]] = {}
    domain_repos: dict[str, str] = {}
    delegations: dict[str, dict[str, list[Interval]]] = {}
    for entry in data.get("domains", []):
        if not isinstance(entry, dict) or "name" not in entry:
            problems.append("domains: entry must carry a name")
            continue
        name = str(entry["name"]).lower()
        repo = str(entry.get("repository", ""))
        if repo:
            domain_repos[name] = repo
        else:
            problems.append(f"domain {name}: missing repository")
        intervals = _parse_intervals(
            entry.get("intervals", []), f"domain {name}", problems
        )
        purges = entry.get("purge_days", [])
        if not isinstance(purges, list) or not all(
            isinstance(d, int) for d in purges
        ):
            problems.append(f"domain {name}: purge_days must be a list of days")
            purges = []
        domains[name] = (intervals, frozenset(purges))
        per_ns: dict[str, list[Interval]] = {}
        for delegation in entry.get("delegations", []):
            if not isinstance(delegation, dict) or "ns" not in delegation:
                problems.append(f"domain {name}: delegation must carry an ns")
                continue
            ns = str(delegation["ns"]).lower()
            per_ns.setdefault(ns, []).extend(
                _parse_intervals(
                    delegation.get("intervals", []),
                    f"domain {name} -> {ns}", problems,
                )
            )
        delegations[name] = per_ns
    renames: list[dict[str, Any]] = []
    for entry in data.get("renames", []):
        if not isinstance(entry, dict) or not {"old", "new"} <= set(entry):
            problems.append("renames: entry must carry old and new names")
            continue
        renames.append(entry)
    policy = data.get("ingest_policy", {})
    gap_bridge = 0
    if isinstance(policy, dict):
        raw_gap = policy.get("gap_bridge_days", 0)
        if isinstance(raw_gap, int) and raw_gap >= 0:
            gap_bridge = raw_gap
        else:
            problems.append("ingest_policy: gap_bridge_days must be a non-negative int")
    else:
        problems.append("ingest_policy must be an object")
    return _WorldDoc(
        repositories=repositories,
        hosts=hosts,
        domains=domains,
        domain_repos=domain_repos,
        delegations=delegations,
        renames=renames,
        faults=data.get("faults"),
        gap_bridge_days=gap_bridge,
        problems=problems,
    )


def _check_fault_config(
    faults: object, path: str, symbol: str = "faults"
) -> list[Diagnostic]:
    """SCN106: the ``faults`` section must round-trip through FaultConfig."""
    from repro.faults.config import fault_config_from_dict, fault_config_to_dict

    if faults is None:
        return []
    if not isinstance(faults, dict):
        return [make("SCN106", path, 0, 0, "faults must be an object", symbol)]
    diagnostics: list[Diagnostic] = []
    try:
        config = fault_config_from_dict(faults)
    except (TypeError, ValueError) as error:
        return [
            make(
                "SCN106", path, 0, 0,
                f"faults do not load as FaultConfig: {error}", symbol,
            )
        ]
    for name in config._RATE_FIELDS:
        value = getattr(config, name)
        if not 0.0 <= value <= 1.0:
            diagnostics.append(
                make(
                    "SCN106", path, 0, 0,
                    f"fault rate {name}={value!r} outside [0, 1]", symbol,
                )
            )
    if config.gap_bridge_days < 0:
        diagnostics.append(
            make(
                "SCN106", path, 0, 0,
                f"gap_bridge_days={config.gap_bridge_days} must be >= 0", symbol,
            )
        )
    round_tripped = fault_config_to_dict(config)
    for key, value in faults.items():
        if key == "retry":
            continue
        if key in round_tripped and round_tripped[key] != value:
            diagnostics.append(
                make(
                    "SCN106", path, 0, 0,
                    f"faults field {key!r} does not round-trip: "
                    f"{value!r} -> {round_tripped[key]!r}", symbol,
                )
            )
    return diagnostics


@scenario_checker
def check_world_document(
    doc: dict[str, Any], ctx: ScenarioContext
) -> list[Diagnostic]:
    """The world-dump rule pack (SCN100–SCN107)."""
    if ctx.kind != "world":
        return []
    path = ctx.path
    world = _parse_world(doc)
    diagnostics: list[Diagnostic] = []
    for problem in world.problems:
        diagnostics.append(make("SCN100", path, 0, 0, problem, "<document>"))

    # SCN101: every delegation must reference a host object existing over
    # the whole delegation interval (RFC 5731: NS entries are references
    # to host objects — internal or external — in the domain's own
    # repository, not free-form names).
    for domain, per_ns in sorted(world.delegations.items()):
        repo = world.domain_repos.get(domain)
        if repo is None:
            continue  # already an SCN100 problem above
        for ns, spans in sorted(per_ns.items()):
            existence = world.hosts.get((repo, ns))
            for span in spans:
                if existence is None or not _covers(existence, span):
                    diagnostics.append(
                        make(
                            "SCN101", path, 0, 0,
                            f"{domain} delegates to {ns} over "
                            f"[{span.start}, {span.end}) but no host object "
                            "exists for that whole interval", domain,
                        )
                    )

    # SCN102 / SCN107: RFC 5731 forbids deleting a domain while
    # subordinate host objects exist; the operational workaround is the
    # sacrificial rename. A deletion that leaves a subordinate host
    # serving *other* domains is exactly the state the rename exists to
    # avoid (SCN102); a registry purge doing the same is the documented
    # SHOULD-NOT exception and is reported as a warning (SCN107).
    for domain, (intervals, purge_days) in sorted(world.domains.items()):
        suffix = "." + domain
        repo = world.domain_repos.get(domain)
        for interval in intervals:
            if interval.end is None:
                continue
            deleted = interval.end
            offenders: list[str] = []
            for (host_repo, host), existence in sorted(world.hosts.items()):
                # Subordinate means: under the domain's name, in the
                # domain's own repository. Same-named external objects
                # elsewhere are separate (unblocked) EPP objects.
                if host_repo != repo or not host.endswith(suffix):
                    continue
                if not _exists_at(existence, deleted):
                    continue
                for other, per_ns in world.delegations.items():
                    if other == domain:
                        continue
                    spans = per_ns.get(host)
                    if spans and any(s.contains(deleted) for s in spans):
                        offenders.append(host)
                        break
            if not offenders:
                continue
            rule_id = "SCN107" if deleted in purge_days else "SCN102"
            verb = "purged" if rule_id == "SCN107" else "deleted"
            diagnostics.append(
                make(
                    rule_id, path, 0, 0,
                    f"{domain} {verb} on day {deleted} while subordinate "
                    f"host(s) {', '.join(sorted(offenders))} still serve "
                    "other domains (RFC 5731/5732 referential integrity)",
                    domain,
                )
            )

    # SCN103: a rename flagged sacrificial must leave the owning
    # repository's namespace — an in-repository "sacrificial" name keeps
    # the host under the registry's authority and re-registerable inside
    # the same repository, defeating the workaround.
    for entry in world.renames:
        if not entry.get("sacrificial", False):
            continue
        new_name = str(entry["new"]).lower()
        operator = str(entry.get("repository", ""))
        tlds = world.repositories.get(operator)
        if tlds is None:
            diagnostics.append(
                make(
                    "SCN100", path, 0, 0,
                    f"rename {entry['old']} -> {new_name} names unknown "
                    f"repository {operator!r}", new_name,
                )
            )
            continue
        if _tld_of(new_name) in tlds:
            diagnostics.append(
                make(
                    "SCN103", path, 0, 0,
                    f"sacrificial rename {entry['old']} -> {new_name} stays "
                    f"inside repository {operator} (TLD .{_tld_of(new_name)}); "
                    "sacrificial targets must be out-of-repository", new_name,
                )
            )

    # SCN104 / SCN105: interval hygiene per (domain, ns) pair.
    for domain, per_ns in sorted(world.delegations.items()):
        for ns, spans in sorted(per_ns.items()):
            ordered = sorted(spans, key=lambda iv: (iv.start, iv.end is None))
            for first, second in zip(ordered, ordered[1:]):
                if first.overlaps(second):
                    diagnostics.append(
                        make(
                            "SCN104", path, 0, 0,
                            f"{domain} -> {ns} has overlapping delegation "
                            f"intervals [{first.start}, {first.end}) and "
                            f"[{second.start}, {second.end})", domain,
                        )
                    )
                elif first.end is not None:
                    gap = second.start - first.end
                    if 0 < gap <= world.gap_bridge_days:
                        diagnostics.append(
                            make(
                                "SCN105", path, 0, 0,
                                f"{domain} -> {ns} closes on day {first.end} "
                                f"and reopens on day {second.start}: a "
                                f"{gap}-day gap within the "
                                f"{world.gap_bridge_days}-day bridge window "
                                "should have been bridged by IngestPolicy",
                                domain,
                            )
                        )

    diagnostics.extend(_check_fault_config(world.faults, path))
    return diagnostics


@scenario_checker
def check_scenario_document(
    doc: dict[str, Any], ctx: ScenarioContext
) -> list[Diagnostic]:
    """The scenario-config rule pack (SCN106, SCN108)."""
    if ctx.kind != "scenario":
        return []
    from repro.ecosystem.scenario_io import scenario_from_dict

    diagnostics = _check_fault_config(doc.get("faults"), ctx.path)
    try:
        scenario_from_dict(doc)
    except (KeyError, TypeError, ValueError) as error:
        diagnostics.append(
            make(
                "SCN108", ctx.path, 0, 0,
                f"scenario does not load: {error}", "<document>",
            )
        )
    return diagnostics


_HEX_DIGEST_LEN = 64  # sha256 hexdigest, as produced by content_digest()


@scenario_checker
def check_manifest_document(
    doc: dict[str, Any], ctx: ScenarioContext
) -> list[Diagnostic]:
    """The dataset/artifact-manifest rule pack (SCN109).

    Datasets and cached artifacts are only meaningful relative to the
    scenario that produced them; a manifest without the producing
    scenario's digest lets a ``detect`` run silently consume the output
    of the wrong ``simulate`` run.
    """
    if ctx.kind != "manifest":
        return []
    digest = doc.get("scenario_digest")
    if isinstance(digest, str) and len(digest) == _HEX_DIGEST_LEN and all(
        c in "0123456789abcdef" for c in digest
    ):
        return []
    if digest is None:
        message = "manifest lacks a scenario_digest"
    else:
        message = f"manifest scenario_digest is not a sha256 hex digest: {digest!r}"
    return [make("SCN109", ctx.path, 0, 0, message, "<document>")]


def lint_scenario_data(
    data: object, path: str, config: LintConfig | None = None
) -> list[Diagnostic]:
    """Lint one parsed JSON document (skips unrecognized shapes)."""
    from repro.lint.registry import SCENARIO_CHECKERS

    kind = classify_document(data)
    if kind is None or not isinstance(data, dict):
        return []
    ctx = ScenarioContext(path=path, config=config or LintConfig(), kind=kind)
    diagnostics: list[Diagnostic] = []
    for checker in SCENARIO_CHECKERS:
        diagnostics.extend(checker(data, ctx))
    return diagnostics


def lint_scenario_file(
    file_path: Path, rel_path: str, config: LintConfig
) -> list[Diagnostic]:
    """Lint one ``.json`` file on disk."""
    try:
        data = json.loads(file_path.read_text(encoding="utf-8"))
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as error:
        return [
            make(
                "SCN100", rel_path, 0, 0,
                f"could not read JSON: {error}", "<document>",
            )
        ]
    return lint_scenario_data(data, rel_path, config)


def lintable_documents(paths: Iterable[Path]) -> list[Path]:
    """JSON files among ``paths`` (callers pre-filter by suffix)."""
    return [p for p in paths if p.suffix == ".json"]
