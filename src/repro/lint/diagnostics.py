"""The diagnostic model shared by both lint engines.

A :class:`Diagnostic` is one finding: a rule id, a location, a message,
and a *symbol* — the enclosing function/class for code findings, or the
offending object name (domain, host, rename target) for scenario
findings. Symbols, not line numbers, anchor baseline suppression, so a
baseline survives unrelated edits to the same file.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Severity(str, Enum):
    """How a finding affects the lint exit code.

    ``ERROR`` findings fail the run unless baselined; ``WARNING``
    findings are reported but never fail the run (used for advisory
    rules such as purge-orphan detection, where the flagged state is
    the paper's subject rather than a data defect).
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One lint finding, produced by either engine."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    symbol: str = ""
    severity: Severity = Severity.ERROR

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        """The identity baseline entries match on (rule, path, symbol)."""
        return (self.rule_id, self.path, self.symbol)

    def sort_key(self) -> tuple[str, int, int, str]:
        """Stable report ordering: by file, position, then rule."""
        return (self.path, self.line, self.col, self.rule_id)

    def to_dict(self) -> dict[str, object]:
        """JSON-reporter form."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
            "severity": self.severity.value,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Diagnostic":
        """Inverse of :meth:`to_dict` (worker-process round-trip)."""
        return cls(
            rule_id=str(data["rule"]),
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[call-overload]
            col=int(data["col"]),  # type: ignore[call-overload]
            message=str(data["message"]),
            symbol=str(data.get("symbol", "")),
            severity=Severity(str(data.get("severity", "error"))),
        )

    def render(self) -> str:
        """Text-reporter form: ``path:line:col RULE message [symbol]``."""
        where = f"{self.path}:{self.line}:{self.col}"
        suffix = f"  [{self.symbol}]" if self.symbol else ""
        return f"{where}: {self.rule_id} {self.message}{suffix}"
