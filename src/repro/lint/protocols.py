"""The typestate protocol rules: DET014–DET017.

Each class below is one declarative automaton over the machinery in
:mod:`repro.lint.typestate` — states, ``(state, event)`` transitions
(with the violating ones carrying messages), and exit obligations. The
events themselves are purely syntactic AST matches, parameterised by
``[tool.riskybiz.lint]`` so the sanctioned close/commit/rename
functions live in config, not code:

* **DET014** — telemetry lifecycles: a span context entered by hand
  must reach ``__exit__`` on every path (exception paths included),
  and a closed :class:`~repro.obs.tracer.Tracer` must not record
  anything further.
* **DET015** — journal discipline: a closed journal must not be used,
  and the reconcile events (``engine-reset``/``shard-reset``) may only
  be appended from the sanctioned reconcile functions.
* **DET016** — the temp→fsync→``os.replace`` atomic-write protocol:
  renaming a dirty temp publishes a possibly-torn file; writing the
  temp (or the rename target) after the rename corrupts the published
  artifact; a temp left dirty or unrenamed on a normal exit never
  becomes durable.
* **DET017** — incremental-runner ordering: committing a consumer
  watermark on a path where the engine checkpoint was never written
  breaks the refold-safety invariant ``run_incremental_detection``
  relies on.
"""

from __future__ import annotations

import ast
from typing import Callable, Mapping

from repro.lint.cfg import CFG, CFGNode
from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import make, rule, typestate_checker
from repro.lint.typestate import (
    CREATE,
    Event,
    ProtocolAutomaton,
    TrackedObject,
    TypestateContext,
    alias_closure,
    assign_target,
    call_matches,
    names_in,
    own_statements,
    receiver_name,
    scope_calls,
)

rule(
    "DET014", "span-lifecycle", "typestate",
    "telemetry span/tracer lifecycle violated on some path",
)
rule(
    "DET015", "journal-discipline", "typestate",
    "journal used after close, or reconcile append outside the window",
)
rule(
    "DET016", "atomic-protocol", "typestate",
    "temp-fsync-rename atomic-write protocol broken on some path",
)
rule(
    "DET017", "checkpoint-order", "typestate",
    "watermark commit reachable before the engine checkpoint write",
)

#: File modes that make an ``open()`` a write.
_WRITE_MODE_CHARS = frozenset("wax+")

#: Receiver methods that write to an already-open handle.
_HANDLE_WRITE_METHODS = frozenset({"write", "writelines"})

#: Path methods that write a file in one call.
_PATH_WRITE_METHODS = frozenset({"write_text", "write_bytes"})


def _factory_call(
    expr: ast.expr, factories: tuple[str, ...]
) -> ast.Call | None:
    """A ``span(...)`` / ``x.span(...)`` call for configured factories."""
    if not isinstance(expr, ast.Call):
        return None
    func = expr.func
    if isinstance(func, ast.Name) and func.id in factories:
        return expr
    if isinstance(func, ast.Attribute) and func.attr in factories:
        return expr
    return None


def _class_construction(
    expr: ast.expr, class_names: tuple[str, ...]
) -> ast.Call | None:
    """``Cls(...)`` or a ``Cls.classmethod(...)`` alternate constructor."""
    if not isinstance(expr, ast.Call):
        return None
    func = expr.func
    if isinstance(func, ast.Name) and func.id in class_names:
        return expr
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in class_names
    ):
        return expr
    return None


def _creation_objects(
    cfg: CFG,
    ctx: TypestateContext,
    tag: str,
    matcher: Callable[[ast.expr], bool],
) -> list[TrackedObject]:
    """Assign-bound tracked objects for one creation pattern."""
    objects: list[TrackedObject] = []
    for stmt in own_statements(cfg.func):
        target = assign_target(stmt)
        if target is None:
            continue
        assert isinstance(stmt, ast.Assign)
        if not matcher(stmt.value):
            continue
        objects.append(
            TrackedObject(
                key=f"{tag}@{stmt.lineno}:{stmt.col_offset}",
                names=alias_closure(cfg.func, {target}),
                line=stmt.lineno,
                col=stmt.col_offset,
                creation=stmt,
            )
        )
    return objects


def _is_creation_node(node: CFGNode, obj: TrackedObject) -> bool:
    return obj.creation is not None and any(
        tree is obj.creation for tree in node.scope
    )


class _HandleLifecycle(ProtocolAutomaton):
    """Shared open→close→use-after-close automaton (tracer, journal)."""

    initial = "open"
    cleanup_events = frozenset({"close"})
    #: Subclasses fill in the use-after-close message.
    use_after_close: str = ""

    def __init__(self) -> None:
        self.transitions: Mapping[tuple[str, str], tuple[str, str | None]] = {
            ("open", "close"): ("closed", None),
            ("closed", "close"): ("closed", None),
            ("closed", "use"): ("closed", self.use_after_close),
        }

    def class_names(self, ctx: TypestateContext) -> tuple[str, ...]:
        raise NotImplementedError

    def collect(self, cfg: CFG, ctx: TypestateContext) -> list[TrackedObject]:
        classes = self.class_names(ctx)
        return _creation_objects(
            cfg,
            ctx,
            self.rule_id,
            lambda expr: _class_construction(expr, classes) is not None,
        )

    def events(
        self, node: CFGNode, obj: TrackedObject, ctx: TypestateContext
    ) -> list[Event]:
        events: list[Event] = []
        if _is_creation_node(node, obj):
            events.append((CREATE, obj.line, obj.col))
        close_methods = ctx.config.protocol_close_methods
        for call in scope_calls(node):
            receiver = receiver_name(call)
            if receiver is None or receiver not in obj.names:
                continue
            assert isinstance(call.func, ast.Attribute)
            name = "close" if call.func.attr in close_methods else "use"
            events.append((name, call.lineno, call.col_offset))
        return events


class _TracerLifecycle(_HandleLifecycle):
    """DET014, tracer half: nothing is recorded after ``close()``."""

    rule_id = "DET014"
    use_after_close = (
        "tracer method called after close(); spans and events recorded "
        "here are silently lost"
    )

    def applies_to(self, ctx: TypestateContext) -> bool:
        return ctx.config.path_in(ctx.path, ctx.config.telemetry_paths)

    def class_names(self, ctx: TypestateContext) -> tuple[str, ...]:
        return ctx.config.tracer_classes


class _JournalLifecycle(_HandleLifecycle):
    """DET015, lifecycle half: a closed journal records nothing."""

    rule_id = "DET015"
    use_after_close = (
        "journal method called after close(); the append would never "
        "reach the crash-safe log"
    )

    def applies_to(self, ctx: TypestateContext) -> bool:
        return ctx.config.path_in(ctx.path, ctx.config.atomic_paths)

    def class_names(self, ctx: TypestateContext) -> tuple[str, ...]:
        return ctx.config.journal_classes

    def scan(self, cfg: CFG, ctx: TypestateContext) -> list[Diagnostic]:
        """Reconcile window: reset events only from sanctioned functions.

        ``engine-reset``/``shard-reset`` journal records rewrite resume
        history; appending them anywhere but the reconcile helpers
        forges a recovery that never happened.
        """
        config = ctx.config
        ident = ctx.function_ident(cfg.name)
        if ident is not None and ident in config.journal_reconcile_functions:
            return []
        diagnostics: list[Diagnostic] = []
        for node in cfg.nodes:
            for call in scope_calls(node):
                if (
                    not isinstance(call.func, ast.Attribute)
                    or call.func.attr != "append"
                    or not call.args
                ):
                    continue
                event = call.args[0]
                if (
                    isinstance(event, ast.Constant)
                    and isinstance(event.value, str)
                    and event.value in config.journal_reconcile_events
                ):
                    diagnostics.append(
                        make(
                            self.rule_id, ctx.path,
                            call.lineno, call.col_offset,
                            f"reconcile event {event.value!r} appended "
                            "outside the sanctioned reconcile window ("
                            + ", ".join(
                                sorted(config.journal_reconcile_functions)
                            )
                            + ")",
                            cfg.name,
                        )
                    )
        return diagnostics


class _SpanLifecycle(ProtocolAutomaton):
    """DET014, span half: manual ``__enter__`` needs a guaranteed exit.

    ``with tracer.span(...)`` is inherently balanced (the CFG routes
    every unwinding path through ``with-exit``), so only span contexts
    bound to a local and entered by hand are tracked.
    """

    rule_id = "DET014"
    initial = "created"
    cleanup_events = frozenset({"exit"})
    transitions = {
        ("created", "enter"): ("entered", None),
        ("entered", "exit"): ("closed", None),
        ("closed", "enter"): ("entered", None),
    }
    exit_obligations = {
        "entered": (
            "span entered at line {obj_line} may never be exited on a "
            "normal path; use `with` or try/finally"
        ),
    }
    exception_exit_obligations = {
        "entered": (
            "span entered at line {obj_line} is leaked when an exception "
            "escapes; use `with` or try/finally"
        ),
    }

    def applies_to(self, ctx: TypestateContext) -> bool:
        return ctx.config.path_in(ctx.path, ctx.config.telemetry_paths)

    def collect(self, cfg: CFG, ctx: TypestateContext) -> list[TrackedObject]:
        factories = ctx.config.span_factories
        return _creation_objects(
            cfg,
            ctx,
            "span",
            lambda expr: _factory_call(expr, factories) is not None,
        )

    def events(
        self, node: CFGNode, obj: TrackedObject, ctx: TypestateContext
    ) -> list[Event]:
        events: list[Event] = []
        if _is_creation_node(node, obj):
            events.append((CREATE, obj.line, obj.col))
        if node.kind in ("with-enter", "with-exit") and node.scope:
            context_expr = node.scope[0]
            if (
                isinstance(context_expr, ast.Name)
                and context_expr.id in obj.names
            ):
                name = "enter" if node.kind == "with-enter" else "exit"
                events.append((name, node.line, node.col))
            return events
        for call in scope_calls(node):
            receiver = receiver_name(call)
            if receiver is None or receiver not in obj.names:
                continue
            assert isinstance(call.func, ast.Attribute)
            if call.func.attr == "__enter__":
                events.append(("enter", call.lineno, call.col_offset))
            elif call.func.attr == "__exit__":
                events.append(("exit", call.lineno, call.col_offset))
        return events


class _AtomicWriteProtocol(ProtocolAutomaton):
    """DET016: every temp file follows write → fsync → ``os.replace``."""

    rule_id = "DET016"
    initial = "fresh"
    transitions = {
        ("fresh", "write"): ("dirty", None),
        ("dirty", "write"): ("dirty", None),
        ("synced", "write"): ("dirty", None),
        ("done", "write"): (
            "done",
            "temp file written again after os.replace already published "
            "it; the data never reaches the target",
        ),
        ("dirty", "fsync"): ("synced", None),
        ("synced", "rename"): ("done", None),
        ("fresh", "rename"): ("done", None),
        ("dirty", "rename"): (
            "done",
            "temp renamed into place without fsync; a crash here can "
            "publish a torn or empty file",
        ),
        ("done", "target_write"): (
            "done",
            "rename target written directly after the atomic replace "
            "published it",
        ),
    }
    exit_obligations = {
        "dirty": (
            "temp write from line {obj_line} is not followed by fsync + "
            "os.replace on every path; the data never becomes durable"
        ),
        "synced": (
            "fsynced temp from line {obj_line} is never renamed into "
            "place on some path"
        ),
    }

    def applies_to(self, ctx: TypestateContext) -> bool:
        return ctx.config.path_in(ctx.path, ctx.config.atomic_protocol_paths)

    def _mentions_temp(self, expr: ast.expr, ctx: TypestateContext) -> bool:
        marker_names = {
            marker
            for marker in ctx.config.atomic_temp_markers
            if not marker.startswith(".")
        }
        marker_suffixes = tuple(
            marker
            for marker in ctx.config.atomic_temp_markers
            if marker.startswith(".")
        )
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and node.id in marker_names:
                return True
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and marker_suffixes
                and node.value.endswith(marker_suffixes)
            ):
                return True
        return False

    def collect(self, cfg: CFG, ctx: TypestateContext) -> list[TrackedObject]:
        objects = _creation_objects(
            cfg,
            ctx,
            "temp",
            lambda expr: self._mentions_temp(expr, ctx),
        )
        for obj in objects:
            handles: set[str] = set()
            targets: set[str] = set()
            for stmt in own_statements(cfg.func):
                for withitem_or_assign, bound in self._open_bindings(stmt):
                    if self._opens_for_write(withitem_or_assign, obj):
                        handles.add(bound)
                for node in ast.walk(stmt):
                    if not isinstance(node, ast.Call):
                        continue
                    if (
                        call_matches(
                            node, ctx.config.protocol_rename_functions
                        )
                        and len(node.args) >= 2
                        and isinstance(node.args[0], ast.Name)
                        and node.args[0].id in obj.names
                        and isinstance(node.args[1], ast.Name)
                    ):
                        targets.add(node.args[1].id)
            obj.data["handles"] = frozenset(handles)
            obj.data["targets"] = frozenset(targets)
        return objects

    @staticmethod
    def _open_bindings(
        stmt: ast.stmt,
    ) -> list[tuple[ast.Call, str]]:
        """``open(...)`` calls bound to a name by this statement."""
        bindings: list[tuple[ast.Call, str]] = []
        target = assign_target(stmt)
        if target is not None:
            assert isinstance(stmt, ast.Assign)
            if isinstance(stmt.value, ast.Call):
                bindings.append((stmt.value, target))
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if isinstance(item.context_expr, ast.Call) and isinstance(
                    item.optional_vars, ast.Name
                ):
                    bindings.append((item.context_expr, item.optional_vars.id))
        return bindings

    @staticmethod
    def _opens_for_write(call: ast.Call, obj: TrackedObject) -> bool:
        """``open(<temp>, "w...")``-style call on the tracked temp."""
        if not (isinstance(call.func, ast.Name) and call.func.id == "open"):
            return False
        if not (
            call.args
            and isinstance(call.args[0], ast.Name)
            and call.args[0].id in obj.names
        ):
            return False
        mode = call.args[1] if len(call.args) > 1 else None
        for keyword in call.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
        return (
            isinstance(mode, ast.Constant)
            and isinstance(mode.value, str)
            and bool(_WRITE_MODE_CHARS & set(mode.value))
        )

    def events(
        self, node: CFGNode, obj: TrackedObject, ctx: TypestateContext
    ) -> list[Event]:
        events: list[Event] = []
        if _is_creation_node(node, obj):
            events.append((CREATE, obj.line, obj.col))
        handles: frozenset[str] = obj.data.get("handles", frozenset())
        targets: frozenset[str] = obj.data.get("targets", frozenset())
        for call in scope_calls(node):
            position = (call.lineno, call.col_offset)
            receiver = receiver_name(call)
            if self._opens_for_write(call, obj):
                events.append(("write", *position))
            elif receiver in handles and isinstance(call.func, ast.Attribute) \
                    and call.func.attr in _HANDLE_WRITE_METHODS:
                events.append(("write", *position))
            elif receiver in obj.names and isinstance(call.func, ast.Attribute) \
                    and call.func.attr in _PATH_WRITE_METHODS:
                events.append(("write", *position))
            elif call_matches(call, ctx.config.protocol_fsync_functions):
                mentioned: set[str] = set()
                for arg in call.args:
                    mentioned |= names_in(arg)
                if mentioned & (handles | obj.names):
                    events.append(("fsync", *position))
            elif (
                call_matches(call, ctx.config.protocol_rename_functions)
                and call.args
                and isinstance(call.args[0], ast.Name)
                and call.args[0].id in obj.names
            ):
                events.append(("rename", *position))
            elif receiver in targets and isinstance(call.func, ast.Attribute) \
                    and call.func.attr in _PATH_WRITE_METHODS:
                events.append(("target_write", *position))
            elif (
                isinstance(call.func, ast.Name)
                and call.func.id == "open"
                and call.args
                and isinstance(call.args[0], ast.Name)
                and call.args[0].id in targets
                and self._opens_for_write(
                    call,
                    TrackedObject(key="", names=targets),
                )
            ):
                events.append(("target_write", *position))
        return events


class _CheckpointBeforeCommit(ProtocolAutomaton):
    """DET017: the engine checkpoint write dominates watermark commits.

    A pseudo-object per function that commits a consumer watermark via
    a *method* call (the module-level stage helper is the sanctioned
    DET013 commit path and is exempt): every path from entry to the
    commit must pass a checkpoint write, or a crash between them makes
    the source watermark run ahead of the durable engine state and the
    refold silently skips days.
    """

    rule_id = "DET017"
    initial = "unwritten"
    transitions = {
        ("unwritten", "checkpoint"): ("written", None),
        ("unwritten", "commit"): (
            "unwritten",
            "watermark committed on a path where the engine checkpoint "
            "was never written; a crash here skips the day on refold",
        ),
        ("written", "commit"): ("written", None),
    }

    def applies_to(self, ctx: TypestateContext) -> bool:
        return ctx.config.path_in(
            ctx.path, ctx.config.incremental_runner_paths
        )

    def collect(self, cfg: CFG, ctx: TypestateContext) -> list[TrackedObject]:
        methods = ctx.config.watermark_commit_methods
        for stmt in own_statements(cfg.func):
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in methods
                ):
                    return [
                        TrackedObject(
                            key="watermark",
                            line=node.lineno,
                            col=node.col_offset,
                            at_entry=True,
                        )
                    ]
        return []

    def events(
        self, node: CFGNode, obj: TrackedObject, ctx: TypestateContext
    ) -> list[Event]:
        events: list[Event] = []
        for call in scope_calls(node):
            position = (call.lineno, call.col_offset)
            if isinstance(call.func, ast.Attribute) and (
                call.func.attr in ctx.config.watermark_commit_methods
            ):
                events.append(("commit", *position))
            elif call_matches(call, ctx.config.checkpoint_write_functions):
                events.append(("checkpoint", *position))
        return events


#: Registration order fixes diagnostic order for same-position findings.
typestate_checker(_SpanLifecycle())
typestate_checker(_TracerLifecycle())
typestate_checker(_JournalLifecycle())
typestate_checker(_AtomicWriteProtocol())
typestate_checker(_CheckpointBeforeCommit())
