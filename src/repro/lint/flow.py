"""Engine 3: interprocedural flow analysis over the project graph.

Where DET001–DET009 are per-file and syntactic, these rules follow
calls across modules:

========  =======================  ==========================================
DET010    worker-global-mutation   worker-reachable code mutating
                                   module-level state / touching the
                                   process-global obs plane without detach
DET011    digest-taint             nondeterminism sources (builtin ``hash``,
                                   duration clocks) flowing transitively
                                   into sha256/checksum/manifest sinks
DET012    stale-baseline           baseline entries whose (path, symbol) no
                                   longer exists or no longer fires
DET013    watermark-bypass         stage/engine state watermarks written
                                   outside the sanctioned commit path
========  =======================  ==========================================

DET010 is the fork-safety rule: a function reachable from a supervisor
worker entry point (``LintConfig.worker_entry_points``) that mutates
module-level state behaves differently between inline and sharded
execution — exactly the class of bug that silently diverges parallel
runs. Modules under ``worker_safe_modules`` (the obs plane, which owns
the process-global registry and its ``detach()`` discipline) are
exempt; calls *into* them from worker code are legal only when the
entry point calls ``detach()`` itself.

DET011 is a taint pass with per-function summaries, iterated to a
fixpoint over the call graph: a function's return value is *tainted*
when it derives from a nondeterminism source, and a *sink* is any
``hashlib`` constructor/update, a configured ``digest_sinks`` callable,
or a call into a function whose parameters are known to reach a sink.
The analysis is deliberately name-level and over-approximating: a
tainted name anywhere inside an expression taints the expression.
Accepted over-approximations go in the baseline with a reason, like
every other rule.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Collection, Iterable, Sequence

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.callgraph import CallGraph, _dotted_base
from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic
from repro.lint.project import (
    FunctionInfo,
    ModuleInfo,
    ProjectGraph,
    split_function_id,
)
from repro.lint.registry import make, rule

rule(
    "DET010", "worker-global-mutation", "project",
    "worker-reachable function mutates module-level state (fork safety)",
)
rule(
    "DET011", "digest-taint", "project",
    "nondeterministic value flows into a digest/checksum/manifest sink",
)
rule(
    "DET012", "stale-baseline", "project",
    "baseline entry whose (path, symbol) no longer exists or fires",
)
rule(
    "DET013", "watermark-bypass", "project",
    "watermark state mutated outside the sanctioned commit path",
)

#: The rules :func:`run_project_analysis` computes. DET012 is derived
#: from the baseline afterwards, not by the graph pass, so the runner
#: gates the (expensive) pass on these alone.
PROJECT_PASS_RULES: tuple[str, ...] = ("DET010", "DET011", "DET013")

#: Container methods that mutate their receiver in place.
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "remove", "discard",
    "pop", "popitem", "clear", "setdefault", "sort", "reverse",
    "appendleft", "extendleft", "popleft",
})

#: ``hashlib`` constructors whose input becomes a digest.
_HASHLIB_CTORS = frozenset({
    "sha256", "sha224", "sha384", "sha512", "sha1", "md5",
    "blake2b", "blake2s", "sha3_256", "sha3_512", "new",
})

#: ``time`` duration-clock reads (mirrors the DET009 list).
_DURATION_FNS = frozenset({
    "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns",
    "process_time", "process_time_ns", "thread_time", "thread_time_ns",
})


# ---------------------------------------------------------------------------
# shared per-function bookkeeping
# ---------------------------------------------------------------------------


def _own_statements(func: FunctionInfo) -> Iterable[ast.stmt]:
    """The function's body, excluding nested def/class bodies."""
    stack: list[ast.stmt] = list(func.node.body)
    while stack:
        statement = stack.pop(0)
        if isinstance(
            statement,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
        ):
            continue
        yield statement
        # Blocks (if/for/while/try/with) carry their nested statements
        # in stmt-typed child fields; except handlers and match cases
        # interpose a non-stmt node that must be descended through.
        for child in ast.iter_child_nodes(statement):
            if isinstance(child, ast.stmt):
                stack.append(child)
            elif isinstance(child, (ast.ExceptHandler, ast.match_case)):
                stack.extend(child.body)


def _walk_own(func: FunctionInfo) -> Iterable[ast.AST]:
    """Every AST node in the function body, excluding nested defs."""
    for statement in _own_statements(func):
        for node in ast.walk(statement):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                break
            yield node


def _local_names(func: FunctionInfo) -> set[str]:
    """Names bound locally inside the function (shadowing globals)."""
    names: set[str] = set()
    args = func.node.args
    for arg in (
        *args.posonlyargs, *args.args, *args.kwonlyargs,
        *( [args.vararg] if args.vararg else [] ),
        *( [args.kwarg] if args.kwarg else [] ),
    ):
        names.add(arg.arg)
    for node in _walk_own(func):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            names.add(node.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for target in ast.walk(node.target):
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
        elif isinstance(node, ast.withitem) and node.optional_vars:
            for target in ast.walk(node.optional_vars):
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.comprehension):
            for target in ast.walk(node.target):
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _global_decls(func: FunctionInfo) -> set[str]:
    """Names the function explicitly declares ``global``."""
    declared: set[str] = set()
    for node in _walk_own(func):
        if isinstance(node, ast.Global):
            declared.update(node.names)
    return declared


# ---------------------------------------------------------------------------
# DET010: worker-global-mutation
# ---------------------------------------------------------------------------


@dataclass
class _Det010Context:
    graph: ProjectGraph
    call_graph: CallGraph
    config: LintConfig
    #: function ident -> True when the function returns a module global.
    returns_global: dict[str, bool] = field(default_factory=dict)


def _path_in(config: LintConfig, rel_path: str, prefixes: tuple[str, ...]) -> bool:
    return config.path_in(rel_path, prefixes)


def _compute_returns_global(ctx: _Det010Context) -> None:
    """Which functions hand out a reference to a module-level object."""
    for func in ctx.graph.iter_functions():
        module = ctx.graph.modules[func.module]
        locals_ = _local_names(func)
        declared = _global_decls(func)
        returns = False
        for node in _walk_own(func):
            if isinstance(node, ast.Return) and isinstance(
                node.value, ast.Name
            ):
                name = node.value.id
                if name in module.global_names and (
                    name in declared or name not in locals_
                ):
                    returns = True
                    break
        ctx.returns_global[func.ident] = returns


def _module_global_ref(
    module: ModuleInfo, name: str, locals_: set[str], declared: set[str]
) -> bool:
    """Does a bare ``name`` inside this function denote a module global?"""
    if name in declared:
        return True
    return name in module.global_names and name not in locals_


def _function_mutations(
    ctx: _Det010Context, func: FunctionInfo
) -> list[tuple[ast.AST, str]]:
    """(node, description) for every module-state mutation in ``func``."""
    module = ctx.graph.modules[func.module]
    locals_ = _local_names(func)
    declared = _global_decls(func)

    #: locals aliased to module globals via ``x = default_thing()``.
    global_aliases: set[str] = set()
    for node in _walk_own(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            value = node.value
            if isinstance(target, ast.Name) and isinstance(value, ast.Call):
                if isinstance(value.func, ast.Name):
                    resolved = ctx.graph.resolve_symbol(module, value.func.id)
                elif isinstance(value.func, ast.Attribute):
                    dotted = _dotted_base(value.func.value)
                    resolved = None
                    if dotted is not None:
                        owner = ctx.graph.resolve_dotted(module, dotted)
                        if owner is not None:
                            resolved = (owner, value.func.attr)
                else:
                    resolved = None
                if resolved is not None:
                    owner_module, symbol = resolved
                    owner_info = ctx.graph.modules.get(owner_module)
                    if owner_info is not None and ctx.returns_global.get(
                        f"{owner_module}:{symbol}", False
                    ):
                        global_aliases.add(target.id)

    def is_global_name(expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Name):
            if _module_global_ref(module, expr.id, locals_, declared):
                return expr.id
            if expr.id in global_aliases:
                return expr.id
        return None

    mutations: list[tuple[ast.AST, str]] = []
    for node in _walk_own(func):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets: Sequence[ast.expr]
            if isinstance(node, ast.Assign):
                targets = node.targets
            else:
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    if target.id in declared:
                        mutations.append(
                            (node, f"assigns module global {target.id!r}")
                        )
                elif isinstance(target, (ast.Subscript, ast.Attribute)):
                    base = target.value
                    name = is_global_name(base)
                    if name is not None:
                        kind = (
                            "item" if isinstance(target, ast.Subscript)
                            else "attribute"
                        )
                        mutations.append(
                            (node, f"writes an {kind} of module global {name!r}")
                        )
                    elif isinstance(target, ast.Attribute):
                        dotted = _dotted_base(base)
                        if dotted is not None and ctx.graph.resolve_dotted(
                            module, dotted
                        ):
                            mutations.append(
                                (
                                    node,
                                    f"assigns {dotted}.{target.attr} on "
                                    "another module",
                                )
                            )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id in declared:
                    mutations.append(
                        (node, f"deletes module global {target.id!r}")
                    )
                elif isinstance(
                    target, (ast.Subscript, ast.Attribute)
                ) and is_global_name(target.value):
                    mutations.append(
                        (node, "deletes part of a module global")
                    )
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr in _MUTATING_METHODS:
                name = is_global_name(node.func.value)
                if name is not None:
                    mutations.append(
                        (
                            node,
                            f".{node.func.attr}() mutates module global "
                            f"{name!r} in place",
                        )
                    )
    return mutations


def _entry_calls_detach(ctx: _Det010Context, entry: FunctionInfo) -> bool:
    """Does the worker entry call a safe-module ``detach()`` itself?"""
    module = ctx.graph.modules[entry.module]
    for node in _walk_own(entry):
        if not (isinstance(node, ast.Call)):
            continue
        func = node.func
        target: tuple[str, str] | None = None
        if isinstance(func, ast.Name):
            target = ctx.graph.resolve_symbol(module, func.id)
        elif isinstance(func, ast.Attribute):
            dotted = _dotted_base(func.value)
            if dotted is not None:
                owner = ctx.graph.resolve_dotted(module, dotted)
                if owner is not None:
                    target = (owner, func.attr)
        if target is None:
            continue
        owner_module, symbol = target
        owner_info = ctx.graph.modules.get(owner_module)
        if (
            owner_info is not None
            and symbol == "detach"
            and _path_in(ctx.config, owner_info.path, ctx.config.worker_safe_modules)
        ):
            return True
    return False


def _safe_module_touches(
    ctx: _Det010Context, func: FunctionInfo
) -> list[tuple[ast.AST, str]]:
    """Calls from ``func`` into the process-global (safe-module) plane."""
    module = ctx.graph.modules[func.module]
    touches: list[tuple[ast.AST, str]] = []
    for node in _walk_own(func):
        if not isinstance(node, ast.Call):
            continue
        call_func = node.func
        target: tuple[str, str] | None = None
        if isinstance(call_func, ast.Name):
            target = ctx.graph.resolve_symbol(module, call_func.id)
        elif isinstance(call_func, ast.Attribute):
            dotted = _dotted_base(call_func.value)
            if dotted is not None:
                owner = ctx.graph.resolve_dotted(module, dotted)
                if owner is not None:
                    target = (owner, call_func.attr)
        if target is None:
            continue
        owner_module, symbol = target
        owner_info = ctx.graph.modules.get(owner_module)
        if (
            owner_info is not None
            and symbol != "detach"
            and symbol in owner_info.functions
            and _path_in(ctx.config, owner_info.path, ctx.config.worker_safe_modules)
        ):
            touches.append((node, f"{owner_module}.{symbol}"))
    return touches


def check_worker_global_mutation(
    graph: ProjectGraph, call_graph: CallGraph, config: LintConfig
) -> list[Diagnostic]:
    """DET010 over every configured worker entry point."""
    ctx = _Det010Context(graph=graph, call_graph=call_graph, config=config)
    _compute_returns_global(ctx)

    diagnostics: list[Diagnostic] = []
    entry_idents: list[str] = []
    for spec in config.worker_entry_points:
        ident = call_graph.resolve_entry(spec)
        if ident is not None:
            entry_idents.append(ident)
    if not entry_idents:
        return []
    parents = call_graph.reachable_from(entry_idents)

    flagged: set[tuple[str, str, int]] = set()
    for ident in sorted(parents):
        func = graph.function(ident)
        if func is None:
            continue
        module = graph.modules[func.module]
        if _path_in(config, module.path, config.worker_safe_modules):
            continue
        for node, description in _function_mutations(ctx, func):
            line = getattr(node, "lineno", func.lineno)
            key = (module.path, func.qualname, line)
            if key in flagged:
                continue
            flagged.add(key)
            chain = call_graph.chain_to(parents, ident)
            via = " -> ".join(
                split_function_id(link)[1] for link in chain[-3:]
            )
            diagnostics.append(
                make(
                    "DET010", module.path, line,
                    getattr(node, "col_offset", 0),
                    f"{description}; reachable from worker entry via "
                    f"{via} — shared-state writes diverge sharded runs "
                    "(hand state in explicitly or gate behind "
                    "runtime.detach()-style fork isolation)",
                    func.qualname,
                )
            )

    # Obs-plane touches are legal exactly when the entry detaches first.
    for entry_ident in entry_idents:
        entry = graph.function(entry_ident)
        if entry is None or _entry_calls_detach(ctx, entry):
            continue
        entry_module = graph.modules[entry.module]
        for ident in sorted(parents):
            func = graph.function(ident)
            if func is None:
                continue
            module = graph.modules[func.module]
            if _path_in(config, module.path, config.worker_safe_modules):
                continue
            touches = _safe_module_touches(ctx, func)
            if touches:
                node, touched = touches[0]
                diagnostics.append(
                    make(
                        "DET010", entry_module.path, entry.lineno, 0,
                        f"worker entry {entry.qualname} reaches "
                        f"process-global state ({touched} at "
                        f"{module.path}:{getattr(node, 'lineno', 0)}) but "
                        "never calls detach(); a forked worker inherits "
                        "the parent's registry/tracer",
                        entry.qualname,
                    )
                )
                break
    return diagnostics


# ---------------------------------------------------------------------------
# DET011: digest-taint
# ---------------------------------------------------------------------------


@dataclass
class _TaintSummary:
    """Cross-call facts about one function."""

    returns_taint: bool = False  # return derives from a source
    param_to_sink: bool = False  # some parameter reaches a sink inside
    param_to_return: bool = False  # parameters flow into the return value


@dataclass
class _ModuleAliases:
    """hashlib / time import bindings for one module."""

    hashlib_modules: set[str] = field(default_factory=set)
    hashlib_functions: set[str] = field(default_factory=set)
    time_modules: set[str] = field(default_factory=set)
    duration_functions: set[str] = field(default_factory=set)


def _module_taint_aliases(module: ModuleInfo) -> _ModuleAliases:
    aliases = _ModuleAliases()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".")[0]
                if name.name == "hashlib":
                    aliases.hashlib_modules.add(local)
                elif name.name == "time":
                    aliases.time_modules.add(local)
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module == "hashlib":
                for name in node.names:
                    if name.name in _HASHLIB_CTORS:
                        aliases.hashlib_functions.add(name.asname or name.name)
            elif node.module == "time":
                for name in node.names:
                    if name.name in _DURATION_FNS:
                        aliases.duration_functions.add(
                            name.asname or name.name
                        )
    return aliases


class _TaintPass:
    """One function's name-level forward taint propagation."""

    def __init__(
        self,
        graph: ProjectGraph,
        func: FunctionInfo,
        aliases: _ModuleAliases,
        summaries: dict[str, _TaintSummary],
        config: LintConfig,
        params_tainted: bool,
    ) -> None:
        self.graph = graph
        self.func = func
        self.module = graph.modules[func.module]
        self.aliases = aliases
        self.summaries = summaries
        self.config = config
        self.tainted: dict[str, str] = {}  # name -> provenance
        self.digest_locals: set[str] = set()
        self.returns_taint = False
        self.sink_hits: list[tuple[ast.Call, str, str]] = []
        if params_tainted:
            args = func.node.args
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
                self.tainted[arg.arg] = f"parameter {arg.arg!r}"

    # -- resolution helpers -------------------------------------------------

    def _resolve_call(self, call: ast.Call) -> tuple[str, str] | None:
        func = call.func
        if isinstance(func, ast.Name):
            nested = f"{self.func.qualname}.{func.id}"
            if nested in self.module.functions:
                return (self.module.name, nested)
            return self.graph.resolve_symbol(self.module, func.id)
        if isinstance(func, ast.Attribute):
            dotted = _dotted_base(func.value)
            if dotted is not None:
                owner = self.graph.resolve_dotted(self.module, dotted)
                if owner is not None:
                    return (owner, func.attr)
        return None

    def _summary_for(self, call: ast.Call) -> _TaintSummary | None:
        resolved = self._resolve_call(call)
        if resolved is None:
            return None
        owner_module, symbol = resolved
        owner = self.graph.modules.get(owner_module)
        if owner is None:
            return None
        if symbol in owner.classes:
            return None
        return self.summaries.get(f"{owner_module}:{symbol}")

    def _source_provenance(self, call: ast.Call) -> str | None:
        """Why this call is a nondeterminism source, or None."""
        func = call.func
        if isinstance(func, ast.Name):
            if func.id == "hash" and "__hash__" not in self.func.qualname:
                if self.graph.resolve_symbol(self.module, func.id) is None:
                    return "builtin hash()"
            if func.id in self.aliases.duration_functions:
                return f"duration clock {func.id}()"
        elif isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            base = func.value.id
            if base in self.aliases.time_modules and (
                func.attr in _DURATION_FNS
            ):
                return f"duration clock time.{func.attr}()"
        summary = self._summary_for(call)
        if summary is not None and summary.returns_taint:
            resolved = self._resolve_call(call)
            assert resolved is not None
            return f"tainted return of {resolved[0]}.{resolved[1]}()"
        return None

    def _sink_name(self, call: ast.Call) -> str | None:
        """The sink this call feeds, or None."""
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in self.aliases.hashlib_functions:
                return f"hashlib.{func.id}"
        elif isinstance(func, ast.Attribute):
            base = func.value
            if (
                isinstance(base, ast.Name)
                and base.id in self.aliases.hashlib_modules
                and func.attr in _HASHLIB_CTORS
            ):
                return f"hashlib.{func.attr}"
            if (
                isinstance(base, ast.Name)
                and base.id in self.digest_locals
                and func.attr == "update"
            ):
                return "digest.update"
        resolved = self._resolve_call(call)
        if resolved is not None:
            dotted = f"{resolved[0]}.{resolved[1]}"
            if dotted in self.config.digest_sinks:
                return dotted
        summary = self._summary_for(call)
        if summary is not None and summary.param_to_sink:
            resolved = self._resolve_call(call)
            assert resolved is not None
            return f"{resolved[0]}.{resolved[1]} (reaches a digest sink)"
        return None

    def _is_hashlib_ctor(self, call: ast.Call) -> bool:
        func = call.func
        if isinstance(func, ast.Name):
            return func.id in self.aliases.hashlib_functions
        return (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.aliases.hashlib_modules
            and func.attr in _HASHLIB_CTORS
        )

    # -- expression taint ---------------------------------------------------

    def expr_taint(self, expr: ast.expr) -> str | None:
        """Provenance when any part of ``expr`` is tainted, else None."""
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id in self.tainted:
                    return self.tainted[node.id]
            elif isinstance(node, ast.Call):
                provenance = self._source_provenance(node)
                if provenance is not None:
                    return provenance
                summary = self._summary_for(node)
                if (
                    summary is not None
                    and summary.param_to_return
                    and any(
                        self._name_taint_only(arg) for arg in node.args
                    )
                ):
                    return self._first_arg_taint(node)
        return None

    def _name_taint_only(self, expr: ast.expr) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and node.id in self.tainted:
                return True
        return False

    def _first_arg_taint(self, call: ast.Call) -> str | None:
        for arg in call.args:
            for node in ast.walk(arg):
                if isinstance(node, ast.Name) and node.id in self.tainted:
                    return self.tainted[node.id]
        return None

    # -- driver --------------------------------------------------------------

    def run(self) -> None:
        # Two passes give loop-carried taint a chance to stabilize.
        for _ in range(2):
            changed = self._pass()
            if not changed:
                break

    def _pass(self) -> bool:
        before = dict(self.tainted)
        self.sink_hits = []
        for statement in _own_statements(self.func):
            self._statement(statement)
        return self.tainted != before

    def _assign_names(self, target: ast.expr, provenance: str | None) -> None:
        # Only plain-name targets (and their tuple/list unpackings) take
        # taint. Tainting the base of ``obj.attr = value`` would smear a
        # single tainted field over the whole receiver.
        if isinstance(target, ast.Name):
            if provenance is not None:
                self.tainted[target.id] = provenance
            else:
                self.tainted.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List, ast.Starred)):
            children = (
                [target.value]
                if isinstance(target, ast.Starred)
                else target.elts
            )
            for element in children:
                self._assign_names(element, provenance)

    def _statement(self, statement: ast.stmt) -> None:
        if isinstance(statement, ast.Assign):
            provenance = self.expr_taint(statement.value)
            for target in statement.targets:
                if isinstance(target, ast.Name) and isinstance(
                    statement.value, ast.Call
                ) and self._is_hashlib_ctor(statement.value):
                    self.digest_locals.add(target.id)
                self._assign_names(target, provenance)
            self._scan_calls(statement.value)
        elif isinstance(statement, ast.AnnAssign) and statement.value:
            provenance = self.expr_taint(statement.value)
            self._assign_names(statement.target, provenance)
            self._scan_calls(statement.value)
        elif isinstance(statement, ast.AugAssign):
            provenance = self.expr_taint(statement.value) or (
                self.expr_taint(statement.target)
            )
            if provenance is not None:
                self._assign_names(statement.target, provenance)
            self._scan_calls(statement.value)
        elif isinstance(statement, (ast.For, ast.AsyncFor)):
            provenance = self.expr_taint(statement.iter)
            if provenance is not None:
                self._assign_names(statement.target, provenance)
            self._scan_calls(statement.iter)
        elif isinstance(statement, ast.Return):
            if statement.value is not None:
                if self.expr_taint(statement.value) is not None:
                    self.returns_taint = True
                self._scan_calls(statement.value)
        elif isinstance(statement, (ast.Expr, ast.Assert)):
            value = (
                statement.value
                if isinstance(statement, ast.Expr)
                else statement.test
            )
            self._scan_calls(value)
        elif isinstance(statement, (ast.If, ast.While)):
            self._scan_calls(statement.test)
        elif isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                provenance = self.expr_taint(item.context_expr)
                if item.optional_vars is not None:
                    self._assign_names(item.optional_vars, provenance)
                self._scan_calls(item.context_expr)
        elif isinstance(statement, ast.Raise) and statement.exc is not None:
            self._scan_calls(statement.exc)

    def _scan_calls(self, expr: ast.expr) -> None:
        """Record every sink call inside ``expr`` fed by tainted input."""
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            sink = self._sink_name(node)
            if sink is None:
                continue
            arguments = list(node.args) + [
                keyword.value for keyword in node.keywords
            ]
            for argument in arguments:
                provenance = self.expr_taint(argument)
                if provenance is not None:
                    self.sink_hits.append((node, sink, provenance))
                    break


def check_digest_taint(
    graph: ProjectGraph, call_graph: CallGraph, config: LintConfig
) -> list[Diagnostic]:
    """DET011: fixpoint summaries, then per-function reporting."""
    module_aliases = {
        name: _module_taint_aliases(info)
        for name, info in graph.modules.items()
    }
    summaries: dict[str, _TaintSummary] = {
        func.ident: _TaintSummary() for func in graph.iter_functions()
    }
    for _ in range(10):
        changed = False
        for func in graph.iter_functions():
            aliases = module_aliases[func.module]
            intrinsic = _TaintPass(
                graph, func, aliases, summaries, config, params_tainted=False
            )
            intrinsic.run()
            parametric = _TaintPass(
                graph, func, aliases, summaries, config, params_tainted=True
            )
            parametric.run()
            summary = summaries[func.ident]
            updated = _TaintSummary(
                returns_taint=intrinsic.returns_taint,
                param_to_sink=bool(parametric.sink_hits),
                param_to_return=parametric.returns_taint,
            )
            if updated != summary:
                summaries[func.ident] = updated
                changed = True
        if not changed:
            break

    diagnostics: list[Diagnostic] = []
    for func in graph.iter_functions():
        aliases = module_aliases[func.module]
        final = _TaintPass(
            graph, func, aliases, summaries, config, params_tainted=False
        )
        final.run()
        module = graph.modules[func.module]
        seen: set[tuple[int, str]] = set()
        for node, sink, provenance in final.sink_hits:
            line = getattr(node, "lineno", func.lineno)
            key = (line, sink)
            if key in seen:
                continue
            seen.add(key)
            diagnostics.append(
                make(
                    "DET011", module.path, line,
                    getattr(node, "col_offset", 0),
                    f"value derived from {provenance} flows into digest "
                    f"sink {sink}; digests over nondeterministic inputs "
                    "diverge across reruns — derive the input from stable "
                    "content instead",
                    func.qualname,
                )
            )
    return diagnostics


# ---------------------------------------------------------------------------
# DET012: stale-baseline
# ---------------------------------------------------------------------------


def _file_symbols(path: Path) -> set[str] | None:
    """Every def/class qualname in ``path`` (None when unparseable)."""
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except (OSError, UnicodeDecodeError, SyntaxError):
        return None
    symbols: set[str] = {"<module>"}

    def walk(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                qualname = f"{prefix}.{child.name}" if prefix else child.name
                symbols.add(qualname)
                walk(child, qualname)
            else:
                walk(child, prefix)

    walk(tree, "")
    return symbols


def stale_baseline_diagnostics(
    baseline: Baseline,
    all_diagnostics: Iterable[Diagnostic],
    scanned_paths: set[str],
    config: LintConfig,
    evaluated_rules: Collection[str] | None = None,
) -> tuple[list[Diagnostic], list[BaselineEntry]]:
    """DET012: entries that no longer anchor to anything real.

    An entry is stale when its path is gone, its symbol is no longer
    defined in the file, or the file was scanned in this run and the
    finding did not fire. Entries for files outside this run's scope
    are left alone — ``riskybiz lint one_file.py`` must not condemn
    the rest of the baseline. Likewise, "no longer fires" is only
    meaningful for rules whose engine actually ran: with
    ``evaluated_rules`` given, entries for unevaluated rules are never
    condemned on that ground (``--select DET004`` skips the project
    pass, which must not mark every live DET010 entry prunable).
    Path- and symbol-existence staleness is engine-independent and is
    still checked.
    """
    fired = {diag.fingerprint for diag in all_diagnostics}
    diagnostics: list[Diagnostic] = []
    stale: list[BaselineEntry] = []
    symbol_cache: dict[str, set[str] | None] = {}
    for entry in baseline.entries:
        if entry.fingerprint in fired:
            continue
        reason: str | None = None
        absolute = config.root / entry.path
        if not absolute.exists():
            reason = "the path no longer exists"
        elif entry.path.endswith(".py") and entry.symbol not in ("", "<module>"):
            if entry.path not in symbol_cache:
                symbol_cache[entry.path] = _file_symbols(absolute)
            symbols = symbol_cache[entry.path]
            if symbols is not None and entry.symbol not in symbols:
                reason = f"symbol {entry.symbol!r} is no longer defined there"
        if (
            reason is None
            and entry.path in scanned_paths
            and (evaluated_rules is None or entry.rule in evaluated_rules)
        ):
            reason = "the finding no longer fires"
        if reason is None:
            continue
        stale.append(entry)
        diagnostics.append(
            make(
                "DET012", entry.path, 0, 0,
                f"stale baseline entry ({entry.rule}): {reason}; run "
                "`riskybiz lint --prune-baseline` to drop it",
                entry.symbol,
            )
        )
    return diagnostics, stale


# ---------------------------------------------------------------------------
# DET013: watermark-bypass
# ---------------------------------------------------------------------------

#: The stage-state key holding per-stage watermarks. The incremental
#: engine's correctness proof hinges on watermarks moving only through
#: the never-backwards commit helper; any other write can silently
#: rewind or skip a day.
_WATERMARK_KEY = "watermarks"


def _watermark_subscript(node: ast.expr, aliases: set[str]) -> bool:
    """``<expr>["watermarks"]`` or a local alias bound to one."""
    if isinstance(node, ast.Subscript):
        index = node.slice
        return isinstance(index, ast.Constant) and index.value == _WATERMARK_KEY
    return isinstance(node, ast.Name) and node.id in aliases


def _watermark_aliases(func: FunctionInfo) -> set[str]:
    """Locals assigned from a ``<expr>["watermarks"]`` subscript."""
    aliases: set[str] = set()
    for node in _walk_own(func):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and _watermark_subscript(node.value, aliases)
        ):
            aliases.add(node.targets[0].id)
    return aliases


def check_watermark_bypass(
    graph: ProjectGraph, config: LintConfig
) -> list[Diagnostic]:
    """DET013: flag watermark-map writes outside the commit functions.

    The sanctioned writers are configured as ``module:qualname`` specs
    (``watermark_commit_functions``); every other function that assigns
    into, replaces, deletes from, or calls a mutating method on a
    ``state["watermarks"]`` mapping — directly or through a local alias
    — is reported. Purely syntactic by design: the commit path's
    never-backwards guard is the invariant, so any bypass is a finding
    regardless of reachability.
    """
    allowed = set(config.watermark_commit_functions)
    diagnostics: list[Diagnostic] = []
    for func in graph.iter_functions():
        if func.ident in allowed:
            continue
        module = graph.modules[func.module]
        aliases = _watermark_aliases(func)
        hits: list[tuple[ast.AST, str]] = []
        for node in _walk_own(func):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets: Sequence[ast.expr]
                if isinstance(node, ast.Assign):
                    targets = node.targets
                else:
                    targets = [node.target]
                for target in targets:
                    if not isinstance(target, ast.Subscript):
                        continue
                    if _watermark_subscript(target, set()):
                        hits.append((node, "replaces the watermark map"))
                    elif _watermark_subscript(target.value, aliases):
                        hits.append((node, "writes a watermark entry"))
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and (
                        _watermark_subscript(target, set())
                        or _watermark_subscript(target.value, aliases)
                    ):
                        hits.append((node, "deletes watermark state"))
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in _MUTATING_METHODS and _watermark_subscript(
                    node.func.value, aliases
                ):
                    hits.append(
                        (
                            node,
                            f".{node.func.attr}() mutates the watermark map "
                            "in place",
                        )
                    )
        for node, description in hits:
            diagnostics.append(
                make(
                    "DET013", module.path,
                    getattr(node, "lineno", func.lineno),
                    getattr(node, "col_offset", 0),
                    f"{description} outside the sanctioned commit path; "
                    "watermarks may only advance through "
                    + (
                        ", ".join(sorted(allowed))
                        if allowed
                        else "a configured commit function"
                    )
                    + " (the never-backwards guard lives there)",
                    func.qualname,
                )
            )
    return diagnostics


# ---------------------------------------------------------------------------
# entry point used by the runner
# ---------------------------------------------------------------------------


def run_project_analysis(
    config: LintConfig, graph: ProjectGraph | None = None
) -> tuple[list[Diagnostic], ProjectGraph, CallGraph]:
    """Build the graphs and run DET010, DET011, and DET013 over the project."""
    project = graph or ProjectGraph.build(config)
    call_graph = CallGraph.build(project)
    diagnostics = check_worker_global_mutation(project, call_graph, config)
    diagnostics.extend(check_digest_taint(project, call_graph, config))
    diagnostics.extend(check_watermark_bypass(project, config))
    return diagnostics, project, call_graph
