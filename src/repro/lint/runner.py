"""The lint runner: walk paths, dispatch engines, apply the baseline.

``run_lint`` is the single entry point behind both the ``riskybiz
lint`` subcommand and the test suite. Python files go through the code
engine, JSON files through the scenario engine; findings are filtered
by ``select``/``ignore``, split into new vs. baselined, and the exit
code is 1 exactly when a non-baselined ERROR remains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.code_engine import lint_code_file
from repro.lint.config import LintConfig, load_config
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import validate_rule_ids
from repro.lint.scenario_engine import lint_scenario_file


@dataclass
class LintResult:
    """Everything one lint run produced."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    baselined: list[Diagnostic] = field(default_factory=list)
    stale_baseline_entries: list[BaselineEntry] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def errors(self) -> list[Diagnostic]:
        """Non-baselined findings that fail the run."""
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def exit_code(self) -> int:
        """1 when any non-baselined error remains, else 0."""
        return 1 if self.errors else 0

    def by_rule(self, rule_id: str) -> list[Diagnostic]:
        """Non-baselined findings for one rule (test helper)."""
        return [d for d in self.diagnostics if d.rule_id == rule_id]


def _relativize(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.resolve().as_posix()


def _iter_lintable(paths: Iterable[Path], config: LintConfig) -> Iterator[Path]:
    seen: set[Path] = set()
    for path in paths:
        candidates: Iterable[Path]
        if path.is_dir():
            candidates = sorted(
                p for p in path.rglob("*") if p.suffix in (".py", ".json")
            )
        elif path.is_file():
            candidates = [path]
        else:
            raise FileNotFoundError(f"lint target does not exist: {path}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            if config.is_excluded(_relativize(candidate, config.root)):
                continue
            yield candidate


def run_lint(
    paths: Iterable[Path | str],
    *,
    root: Path | str | None = None,
    config: LintConfig | None = None,
    baseline: Baseline | None = None,
    use_baseline: bool = True,
    select: Iterable[str] = (),
    ignore: Iterable[str] = (),
) -> LintResult:
    """Lint ``paths`` and return the partitioned findings.

    ``select``/``ignore`` extend (not replace) the pyproject config;
    passing ``use_baseline=False`` reports every finding as new.
    """
    cfg = config or load_config(root)
    extra_select = tuple(select)
    extra_ignore = tuple(ignore)
    validate_rule_ids(extra_select + extra_ignore + cfg.select + cfg.ignore)
    if baseline is None and use_baseline:
        baseline = Baseline.load(cfg.baseline_path())
    elif baseline is None:
        baseline = Baseline()

    result = LintResult()
    all_diagnostics: list[Diagnostic] = []
    for file_path in _iter_lintable((Path(p) for p in paths), cfg):
        rel = _relativize(file_path, cfg.root)
        result.files_scanned += 1
        if file_path.suffix == ".py":
            found = lint_code_file(file_path, rel, cfg)
        else:
            found = lint_scenario_file(file_path, rel, cfg)
        for diag in found:
            if not cfg.rule_enabled(diag.rule_id):
                continue
            if extra_ignore and diag.rule_id in extra_ignore:
                continue
            if extra_select and diag.rule_id not in extra_select:
                continue
            all_diagnostics.append(diag)

    for diag in all_diagnostics:
        if baseline.suppresses(diag):
            result.baselined.append(diag)
        else:
            result.diagnostics.append(diag)
    result.stale_baseline_entries = baseline.unused_entries(all_diagnostics)
    return result
