"""The lint runner: walk paths, dispatch engines, apply the baseline.

``run_lint`` is the single entry point behind both the ``riskybiz
lint`` subcommand and the test suite. Python files go through the code
engine and the typestate protocol engine, JSON files through the
scenario engine, and — when the lint targets cover the configured
project roots — the whole-program flow pass (DET010/DET011/DET013)
runs once over the project graph. Engines whose every rule is
deselected are skipped entirely. Findings are filtered by
``select``/``ignore``, split into new vs. baselined, and the exit
code is 1 exactly when a non-baselined ERROR remains.

With ``jobs > 1`` the per-file engines fan out across a process pool
driven by the same :class:`~repro.runner.supervisor.RunSupervisor`
that shards detection runs: files are split into contiguous shards of
the sorted file list, each worker lints its shard, heartbeats per
file, and writes its findings to a spill file the parent merges after
a verified clean exit. Findings are sorted before reporting, so inline
and parallel runs emit byte-identical output. Wall time per file and
per run lands in the ``lint.file`` / ``lint.run`` histograms of the
process-global metrics registry.
"""

from __future__ import annotations

import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.lint import protocols as _protocols  # noqa: F401  (registers DET014-017)
from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.code_engine import lint_code_file
from repro.lint.config import LintConfig, load_config
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import RULES, validate_rule_ids
from repro.lint.scenario_engine import lint_scenario_file
from repro.lint.typestate import lint_typestate_file
from repro.obs import runtime

#: The engines dispatched per file (the project pass runs once).
_PER_FILE_ENGINES = ("code", "scenario", "typestate")


@dataclass
class LintResult:
    """Everything one lint run produced."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    baselined: list[Diagnostic] = field(default_factory=list)
    stale_baseline_entries: list[BaselineEntry] = field(default_factory=list)
    files_scanned: int = 0
    #: True when the interprocedural pass (DET010/DET011) ran.
    project_analyzed: bool = False

    @property
    def errors(self) -> list[Diagnostic]:
        """Non-baselined findings that fail the run."""
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def exit_code(self) -> int:
        """1 when any non-baselined error remains, else 0."""
        return 1 if self.errors else 0

    def by_rule(self, rule_id: str) -> list[Diagnostic]:
        """Non-baselined findings for one rule (test helper)."""
        return [d for d in self.diagnostics if d.rule_id == rule_id]


def _relativize(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.resolve().as_posix()


def _iter_lintable(paths: Iterable[Path], config: LintConfig) -> Iterator[Path]:
    seen: set[Path] = set()
    for path in paths:
        candidates: Iterable[Path]
        if path.is_dir():
            candidates = sorted(
                p for p in path.rglob("*") if p.suffix in (".py", ".json")
            )
        elif path.is_file():
            candidates = [path]
        else:
            raise FileNotFoundError(f"lint target does not exist: {path}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            if config.is_excluded(_relativize(candidate, config.root)):
                continue
            yield candidate


def _lint_one(
    file_path: Path,
    rel: str,
    cfg: LintConfig,
    engines: frozenset[str],
) -> list[Diagnostic]:
    """Run the enabled per-file engines for one path.

    ``engines`` holds the engines with at least one enabled rule; a
    ``--select`` that excludes a whole engine skips its pass entirely
    rather than computing findings the filter would drop.
    """
    diagnostics: list[Diagnostic] = []
    with runtime.timed("lint.file"):
        if file_path.suffix == ".py":
            if "code" in engines:
                diagnostics.extend(lint_code_file(file_path, rel, cfg))
            if "typestate" in engines:
                diagnostics.extend(lint_typestate_file(file_path, rel, cfg))
        elif "scenario" in engines:
            diagnostics.extend(lint_scenario_file(file_path, rel, cfg))
    return diagnostics


def _covers_project_roots(
    targets: list[Path], config: LintConfig
) -> bool:
    """Do the lint targets contain every configured project root?

    The interprocedural rules reason about reachability across the
    whole program; running them while linting a single file would
    re-derive whole-project findings on every narrow invocation, so
    they activate only when the target set covers the project roots
    (e.g. ``riskybiz lint src tests`` with ``project-paths = ["src"]``).
    """
    resolved_targets = [t.resolve() for t in targets]
    for project_path in config.project_paths:
        base = (config.root / project_path).resolve()
        if not base.is_dir():
            continue
        covered = False
        for target in resolved_targets:
            if target == base or target in base.parents:
                covered = True
                break
        if not covered:
            return False
    return True


# -- parallel execution ------------------------------------------------------


def _lint_shard_worker(
    index: int,
    shard_files: list[tuple[str, str]],
    config: LintConfig,
    engines: frozenset[str],
    out_path: str,
    heartbeats: Any,
) -> None:
    """One lint shard, in its own process.

    Module-level so it pickles under any multiprocessing start method.
    The findings go to a spill file the supervisor reads only after a
    clean (exit 0) worker exit; a crashed worker's partial file is
    never parsed because the shard is retried from scratch.
    """
    from repro.obs import runtime as obs

    # A forked worker inherits the parent's tracer and registry handle;
    # per the fork-safety discipline DET010 enforces, drop them first.
    obs.detach()

    findings: list[dict[str, object]] = []
    for absolute, rel in shard_files:
        findings.extend(
            diag.to_dict()
            for diag in _lint_one(Path(absolute), rel, config, engines)
        )
        heartbeats.put((index, rel))
    payload = json.dumps(findings, sort_keys=True)
    Path(out_path).write_text(payload, encoding="utf-8")


def _run_parallel(
    files: list[tuple[Path, str]],
    cfg: LintConfig,
    jobs: int,
    engines: frozenset[str],
) -> list[Diagnostic]:
    """Fan the per-file engines out across a supervised process pool."""
    from repro.runner.supervisor import RunSupervisor, SupervisorPolicy

    shard_count = min(jobs, len(files))
    shards: list[list[tuple[str, str]]] = [[] for _ in range(shard_count)]
    for position, (absolute, rel) in enumerate(files):
        shards[position % shard_count].append((str(absolute), rel))

    diagnostics: list[Diagnostic] = []
    with tempfile.TemporaryDirectory(prefix="riskybiz-lint-") as spill_dir:
        out_paths = [
            str(Path(spill_dir) / f"shard-{index}.json")
            for index in range(shard_count)
        ]

        def spawn(index: int, attempt: int, heartbeats: Any) -> Any:
            import multiprocessing

            process = multiprocessing.get_context().Process(
                target=_lint_shard_worker,
                args=(
                    index, shards[index], cfg, engines,
                    out_paths[index], heartbeats,
                ),
            )
            process.start()
            return process

        def on_complete(index: int) -> None:
            raw = json.loads(
                Path(out_paths[index]).read_text(encoding="utf-8")
            )
            diagnostics.extend(Diagnostic.from_dict(item) for item in raw)

        supervisor = RunSupervisor(SupervisorPolicy(workers=jobs))
        supervisor.run_processes(
            list(range(shard_count)), spawn, on_complete=on_complete
        )
    return diagnostics


# -- the runner --------------------------------------------------------------


def run_lint(
    paths: Iterable[Path | str],
    *,
    root: Path | str | None = None,
    config: LintConfig | None = None,
    baseline: Baseline | None = None,
    use_baseline: bool = True,
    select: Iterable[str] = (),
    ignore: Iterable[str] = (),
    jobs: int = 1,
    project_analysis: bool | None = None,
) -> LintResult:
    """Lint ``paths`` and return the partitioned findings.

    ``select``/``ignore`` extend (not replace) the pyproject config;
    passing ``use_baseline=False`` reports every finding as new.
    ``jobs`` > 1 shards the per-file engines across worker processes.
    ``project_analysis`` forces the interprocedural pass on or off;
    the default (None) enables it when the targets cover the project
    roots.
    """
    cfg = config or load_config(root)
    extra_select = tuple(select)
    extra_ignore = tuple(ignore)
    validate_rule_ids(extra_select + extra_ignore + cfg.select + cfg.ignore)
    if baseline is None and use_baseline:
        baseline = Baseline.load(cfg.baseline_path())
    elif baseline is None:
        baseline = Baseline()

    def enabled(rule_id: str) -> bool:
        if not cfg.rule_enabled(rule_id):
            return False
        if extra_ignore and rule_id in extra_ignore:
            return False
        return not extra_select or rule_id in extra_select

    result = LintResult()
    with runtime.timed("lint.run"):
        targets = [Path(p) for p in paths]
        files = [
            (file_path, _relativize(file_path, cfg.root))
            for file_path in _iter_lintable(targets, cfg)
        ]
        result.files_scanned = len(files)
        runtime.counter("lint.files").inc(len(files))

        # Engines with at least one enabled rule run; the others are
        # skipped wholesale, so e.g. ``--select DET004`` pays for
        # neither the typestate fixpoint nor the scenario pass.
        engines = frozenset(
            engine
            for engine in _PER_FILE_ENGINES
            if any(
                enabled(rule_id)
                for rule_id, entry in RULES.items()
                if entry.engine == engine
            )
        )

        #: Engine output is pre-filter — DET012 staleness must see
        #: findings for rules the caller deselected, or narrowing
        #: ``--select`` would condemn perfectly live baseline entries.
        raw_diagnostics: list[Diagnostic]
        if jobs > 1 and len(files) > 1:
            raw_diagnostics = _run_parallel(files, cfg, jobs, engines)
        else:
            raw_diagnostics = []
            for file_path, rel in files:
                raw_diagnostics.extend(_lint_one(file_path, rel, cfg, engines))

        from repro.lint.flow import (
            PROJECT_PASS_RULES,
            run_project_analysis,
            stale_baseline_diagnostics,
        )

        run_project = (
            project_analysis
            if project_analysis is not None
            else any(enabled(rule_id) for rule_id in PROJECT_PASS_RULES)
            and _covers_project_roots(targets, cfg)
        )
        if run_project:
            with runtime.timed("lint.project"):
                project_diags, _, _ = run_project_analysis(cfg)
            raw_diagnostics.extend(project_diags)
            result.project_analyzed = True

        if use_baseline and baseline.entries:
            # A skipped engine evaluated nothing: its rules' baseline
            # entries must not be condemned as "no longer fires".
            evaluated_rules = frozenset(
                rule_id
                for rule_id, entry in RULES.items()
                if entry.engine in engines
                or (entry.engine == "project" and run_project)
            )
            scanned = {rel for _, rel in files}
            stale_diags, stale_entries = stale_baseline_diagnostics(
                baseline,
                raw_diagnostics,
                scanned,
                cfg,
                evaluated_rules=evaluated_rules,
            )
            result.stale_baseline_entries = stale_entries
            if enabled("DET012"):
                raw_diagnostics.extend(stale_diags)

        for diag in sorted(raw_diagnostics, key=Diagnostic.sort_key):
            if not enabled(diag.rule_id):
                continue
            if baseline.suppresses(diag):
                result.baselined.append(diag)
            else:
                result.diagnostics.append(diag)
        runtime.counter("lint.findings").inc(len(result.diagnostics))
    return result
