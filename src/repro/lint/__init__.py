"""``repro.lint``: two-layer static analysis for the reproduction.

Engine 1 (:mod:`repro.lint.code_engine`) enforces determinism
discipline on the Python tree — seeded named RNG streams, simtime-only
clocks, order-stable iteration. Engine 2
(:mod:`repro.lint.scenario_engine`) verifies EPP referential integrity
(RFC 5731/5732) in scenario and world JSON before anything runs.
Engine 3 (:mod:`repro.lint.flow`) is whole-program: it builds an
import/symbol graph (:mod:`repro.lint.project`) and a conservative
call graph (:mod:`repro.lint.callgraph`) over the configured project
roots and runs the interprocedural fork-safety and digest-taint rules
across module boundaries. Engine 4 (:mod:`repro.lint.typestate`) is
path-sensitive: it builds per-function control-flow graphs with
exception and ``finally`` edges (:mod:`repro.lint.cfg`) and runs a
worklist fixpoint over the declarative protocol automata in
:mod:`repro.lint.protocols` — span/tracer lifecycles, journal
discipline, the temp→fsync→rename atomic-write order, and the
checkpoint-before-watermark-commit invariant. All engines share one
diagnostic model, rule registry, pyproject config, and
baseline-suppression file; ``riskybiz lint`` is the CLI front end and
:mod:`repro.lint.fixes` supplies the ``--fix`` rewrite engine.
"""

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.callgraph import CallGraph
from repro.lint.cfg import CFG, CFGNode, build_cfg, function_cfgs
from repro.lint.code_engine import CodeContext, FixCandidate, lint_code_source
from repro.lint.config import LintConfig, load_config
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.fixes import FileFix, apply_fixes, fix_source, plan_fixes
from repro.lint.flow import run_project_analysis, stale_baseline_diagnostics
from repro.lint.project import ProjectGraph
from repro.lint.registry import (
    RULES,
    Rule,
    catalogue,
    code_checker,
    rule,
    scenario_checker,
    typestate_checker,
)
from repro.lint.typestate import (
    ProtocolAutomaton,
    TrackedObject,
    TypestateContext,
    lint_typestate_source,
)
from repro.lint import protocols as _protocols  # noqa: F401  (registers DET014-017)
from repro.lint.reporters import render_json, render_text
from repro.lint.runner import LintResult, run_lint
from repro.lint.scenario_engine import (
    WORLD_FORMAT,
    ScenarioContext,
    classify_document,
    lint_scenario_data,
)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "CFG",
    "CFGNode",
    "CallGraph",
    "CodeContext",
    "Diagnostic",
    "FileFix",
    "FixCandidate",
    "LintConfig",
    "LintResult",
    "ProjectGraph",
    "ProtocolAutomaton",
    "RULES",
    "Rule",
    "ScenarioContext",
    "Severity",
    "TrackedObject",
    "TypestateContext",
    "WORLD_FORMAT",
    "apply_fixes",
    "build_cfg",
    "catalogue",
    "classify_document",
    "code_checker",
    "fix_source",
    "function_cfgs",
    "lint_code_source",
    "lint_scenario_data",
    "lint_typestate_source",
    "load_config",
    "plan_fixes",
    "render_json",
    "render_text",
    "rule",
    "run_lint",
    "run_project_analysis",
    "scenario_checker",
    "stale_baseline_diagnostics",
    "typestate_checker",
]
