"""``repro.lint``: two-layer static analysis for the reproduction.

Engine 1 (:mod:`repro.lint.code_engine`) enforces determinism
discipline on the Python tree — seeded named RNG streams, simtime-only
clocks, order-stable iteration. Engine 2
(:mod:`repro.lint.scenario_engine`) verifies EPP referential integrity
(RFC 5731/5732) in scenario and world JSON before anything runs. Both
share one diagnostic model, rule registry, pyproject config, and
baseline-suppression file; ``riskybiz lint`` is the CLI front end.
"""

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.code_engine import CodeContext, lint_code_source
from repro.lint.config import LintConfig, load_config
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import (
    RULES,
    Rule,
    catalogue,
    code_checker,
    rule,
    scenario_checker,
)
from repro.lint.reporters import render_json, render_text
from repro.lint.runner import LintResult, run_lint
from repro.lint.scenario_engine import (
    WORLD_FORMAT,
    ScenarioContext,
    classify_document,
    lint_scenario_data,
)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "CodeContext",
    "Diagnostic",
    "LintConfig",
    "LintResult",
    "RULES",
    "Rule",
    "ScenarioContext",
    "Severity",
    "WORLD_FORMAT",
    "catalogue",
    "classify_document",
    "code_checker",
    "lint_code_source",
    "lint_scenario_data",
    "load_config",
    "render_json",
    "render_text",
    "rule",
    "run_lint",
    "scenario_checker",
]
