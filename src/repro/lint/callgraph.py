"""A conservative call graph over the project graph.

Edges are resolved without type inference, in decreasing order of
precision:

* bare-name calls (``f()``) through the module's own definitions and
  its ``from mod import f`` bindings, following one-level re-exports;
* dotted calls (``mod.f()``, ``pkg.sub.f()``) through module aliases;
* constructor calls (``C()``) link to ``C.__init__`` and record the
  local variable's class, so later ``obj.method()`` calls on that
  variable resolve precisely;
* ``self.method()`` / ``cls.method()`` inside a class link to that
  class's method;
* any remaining ``obj.method()`` whose receiver cannot be typed falls
  back to *every* project class defining ``method`` — an
  over-approximation, never an omission, which is the right bias for
  reachability-gated rules like DET010.

Reachability is a plain BFS; :meth:`CallGraph.chain_to` reconstructs
one witness path for diagnostics.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

from repro.lint.project import (
    FunctionInfo,
    ModuleInfo,
    ProjectGraph,
    function_id,
)


def _dotted_base(node: ast.expr) -> str | None:
    """The textual dotted form of an attribute-chain base, if simple."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


class _CallCollector(ast.NodeVisitor):
    """Resolve every call expression inside one function body."""

    def __init__(
        self,
        graph: ProjectGraph,
        module: ModuleInfo,
        func: FunctionInfo,
        method_index: dict[str, list[str]],
    ) -> None:
        self.graph = graph
        self.module = module
        self.func = func
        self.method_index = method_index
        self.callees: set[str] = set()
        #: local variable -> (module, class) from constructor assignments.
        self.local_classes: dict[str, tuple[str, str]] = {}
        self._prime_local_classes()

    # -- constructor tracking ------------------------------------------------

    def _class_of_call(self, call: ast.Call) -> tuple[str, str] | None:
        """(module, class) when ``call`` constructs a project class."""
        target: tuple[str, str] | None = None
        if isinstance(call.func, ast.Name):
            target = self.graph.resolve_symbol(self.module, call.func.id)
        elif isinstance(call.func, ast.Attribute):
            dotted = _dotted_base(call.func.value)
            if dotted is not None:
                module_name = self.graph.resolve_dotted(self.module, dotted)
                if module_name is not None:
                    target = (module_name, call.func.attr)
        if target is None:
            return None
        module_name, symbol = target
        owner = self.graph.modules.get(module_name)
        if owner is not None and symbol in owner.classes:
            return (module_name, symbol)
        return None

    def _prime_local_classes(self) -> None:
        """One pass recording ``var = ClassName(...)`` bindings."""
        for node in ast.walk(self.func.node):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = node.value
            # ``x = Cls(...)`` and the common ``x = x or Cls(...)`` guard.
            calls: list[ast.Call] = []
            if isinstance(value, ast.Call):
                calls.append(value)
            elif isinstance(value, ast.BoolOp):
                calls.extend(v for v in value.values if isinstance(v, ast.Call))
            for call in calls:
                cls = self._class_of_call(call)
                if cls is not None:
                    self.local_classes[target.id] = cls

    # -- edge resolution -----------------------------------------------------

    def _link(self, module_name: str, qualname: str) -> bool:
        owner = self.graph.modules.get(module_name)
        if owner is not None and qualname in owner.functions:
            self.callees.add(function_id(module_name, qualname))
            return True
        return False

    def _link_class(self, module_name: str, class_name: str) -> None:
        """A constructor call reaches ``__init__`` (when defined)."""
        self._link(module_name, f"{class_name}.__init__")

    def _resolve_name_call(self, name: str) -> None:
        # A nested def shadows outer bindings inside its parent.
        nested = f"{self.func.qualname}.{name}"
        if nested in self.module.functions:
            self.callees.add(function_id(self.module.name, nested))
            return
        target = self.graph.resolve_symbol(self.module, name)
        if target is None:
            return
        module_name, symbol = target
        owner = self.graph.modules.get(module_name)
        if owner is None:
            return
        if symbol in owner.classes:
            self._link_class(module_name, symbol)
        else:
            self._link(module_name, symbol)

    def _resolve_attribute_call(self, func: ast.Attribute) -> None:
        attr = func.attr
        base = func.value
        # self.method() / cls.method() inside a class body.
        if (
            isinstance(base, ast.Name)
            and base.id in ("self", "cls")
            and self.func.class_name
        ):
            if self._link(
                self.func.module, f"{self.func.class_name}.{attr}"
            ):
                return
        # Receiver tracked to a class by a constructor assignment.
        if isinstance(base, ast.Name) and base.id in self.local_classes:
            module_name, class_name = self.local_classes[base.id]
            if self._link(module_name, f"{class_name}.{attr}"):
                return
        # Dotted module call: mod.f(), pkg.sub.f(), alias.f().
        dotted = _dotted_base(base)
        if dotted is not None:
            module_name = self.graph.resolve_dotted(self.module, dotted)
            if module_name is not None:
                owner = self.graph.modules[module_name]
                if attr in owner.classes:
                    self._link_class(module_name, attr)
                    return
                if self._link(module_name, attr):
                    return
            elif isinstance(base, ast.Name) and (
                base.id in self.module.module_aliases
            ):
                return  # a module we don't model; not a project method
        # Fallback: every project class defining this method name.
        for ident in self.method_index.get(attr, ()):
            self.callees.add(ident)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name):
            self._resolve_name_call(node.func.id)
        elif isinstance(node.func, ast.Attribute):
            self._resolve_attribute_call(node.func)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        """Address-taken functions (callbacks, process targets) count.

        ``ctx.Process(target=worker)`` or ``run(on_complete=journal)``
        execute the referenced function somewhere we cannot see; treating
        every function-valued reference as an edge keeps reachability an
        over-approximation instead of a hole.
        """
        if isinstance(node.ctx, ast.Load):
            self._resolve_name_call(node.id)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs get their own call-graph node

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass


@dataclass
class CallGraph:
    """Function-level edges over a :class:`ProjectGraph`."""

    graph: ProjectGraph
    edges: dict[str, set[str]] = field(default_factory=dict)
    #: method name -> every ``module:Class.method`` id with that name.
    method_index: dict[str, list[str]] = field(default_factory=dict)

    @classmethod
    def build(cls, graph: ProjectGraph) -> "CallGraph":
        method_index: dict[str, list[str]] = {}
        for func in graph.iter_functions():
            if func.class_name is not None:
                method_index.setdefault(func.name, []).append(func.ident)
        call_graph = cls(graph=graph, method_index=method_index)
        for func in graph.iter_functions():
            module = graph.modules[func.module]
            collector = _CallCollector(graph, module, func, method_index)
            for statement in func.node.body:
                collector.visit(statement)
            call_graph.edges[func.ident] = collector.callees
        return call_graph

    def resolve_entry(self, spec: str) -> str | None:
        """Resolve an entry-point spec ``module:qualname`` to a node id."""
        if ":" not in spec:
            return None
        module, _, qualname = spec.partition(":")
        info = self.graph.modules.get(module)
        if info is not None and qualname in info.functions:
            return function_id(module, qualname)
        return None

    def reachable_from(self, entries: Iterable[str]) -> dict[str, str | None]:
        """BFS closure: node id -> parent id (None for the entries)."""
        parents: dict[str, str | None] = {}
        queue: deque[str] = deque()
        for entry in entries:
            if entry not in parents:
                parents[entry] = None
                queue.append(entry)
        while queue:
            current = queue.popleft()
            for callee in sorted(self.edges.get(current, ())):
                if callee not in parents:
                    parents[callee] = current
                    queue.append(callee)
        return parents

    @staticmethod
    def chain_to(parents: dict[str, str | None], ident: str) -> list[str]:
        """One witness call chain from an entry down to ``ident``."""
        chain = [ident]
        seen = {ident}
        parent = parents.get(ident)
        while parent is not None and parent not in seen:
            chain.append(parent)
            seen.add(parent)
            parent = parents.get(parent)
        return list(reversed(chain))

    def to_dict(self) -> dict[str, object]:
        """JSON form for ``riskybiz lint --graph json``."""
        return {
            "modules": {
                name: {
                    "path": info.path,
                    "functions": sorted(info.functions),
                    "globals": sorted(info.global_names),
                }
                for name, info in sorted(self.graph.modules.items())
            },
            "edges": [
                [caller, callee]
                for caller in sorted(self.edges)
                for callee in sorted(self.edges[caller])
            ],
            "parse_failures": dict(sorted(self.graph.parse_failures.items())),
        }
