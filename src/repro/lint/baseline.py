"""Baseline suppression: known findings, each with a written reason.

The baseline is a checked-in JSON file listing findings that are
accepted rather than fixed. Entries match diagnostics by ``(rule,
path, symbol)`` — not line numbers — so they survive unrelated edits.
Every entry must carry a non-empty ``reason``; an unexplained
suppression is itself an error, which keeps the file honest.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.lint.diagnostics import Diagnostic

#: Current baseline file format version.
BASELINE_VERSION = 1


@dataclass(frozen=True, slots=True)
class BaselineEntry:
    """One accepted finding."""

    rule: str
    path: str
    symbol: str
    reason: str

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        """The identity this entry suppresses."""
        return (self.rule, self.path, self.symbol)

    def to_dict(self) -> dict[str, str]:
        """JSON form."""
        return {
            "rule": self.rule,
            "path": self.path,
            "symbol": self.symbol,
            "reason": self.reason,
        }


@dataclass
class Baseline:
    """The set of accepted findings."""

    entries: tuple[BaselineEntry, ...] = ()
    _index: set[tuple[str, str, str]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._index = {entry.fingerprint for entry in self.entries}

    def suppresses(self, diagnostic: Diagnostic) -> bool:
        """True if ``diagnostic`` matches a baseline entry."""
        return diagnostic.fingerprint in self._index

    def unused_entries(
        self, diagnostics: Iterable[Diagnostic]
    ) -> list[BaselineEntry]:
        """Entries matching none of ``diagnostics`` (stale suppressions)."""
        seen = {diag.fingerprint for diag in diagnostics}
        return [e for e in self.entries if e.fingerprint not in seen]

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.is_file():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(data, dict) or "entries" not in data:
            raise ValueError(f"{path}: baseline must be an object with 'entries'")
        version = data.get("version", BASELINE_VERSION)
        if version != BASELINE_VERSION:
            raise ValueError(f"{path}: unsupported baseline version {version!r}")
        entries: list[BaselineEntry] = []
        for index, raw in enumerate(data["entries"]):
            if not isinstance(raw, dict):
                raise ValueError(f"{path}: entry {index} is not an object")
            try:
                entry = BaselineEntry(
                    rule=raw["rule"],
                    path=raw["path"],
                    symbol=raw.get("symbol", ""),
                    reason=raw["reason"],
                )
            except KeyError as missing:
                raise ValueError(
                    f"{path}: entry {index} is missing {missing}"
                ) from None
            if not entry.reason.strip():
                raise ValueError(
                    f"{path}: entry {index} ({entry.rule} at {entry.path}) "
                    "has an empty reason — every suppression must be justified"
                )
            entries.append(entry)
        return cls(entries=tuple(entries))

    def save(self, path: Path) -> None:
        """Write the baseline, sorted for stable diffs."""
        ordered = sorted(self.entries, key=lambda e: e.fingerprint)
        payload = {
            "version": BASELINE_VERSION,
            "entries": [entry.to_dict() for entry in ordered],
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def from_diagnostics(
        cls,
        diagnostics: Iterable[Diagnostic],
        reason: str = "recorded by --write-baseline; replace with a real justification",
    ) -> "Baseline":
        """A baseline accepting every given diagnostic (deduplicated)."""
        entries: dict[tuple[str, str, str], BaselineEntry] = {}
        for diag in diagnostics:
            entries[diag.fingerprint] = BaselineEntry(
                rule=diag.rule_id,
                path=diag.path,
                symbol=diag.symbol,
                reason=reason,
            )
        return cls(entries=tuple(entries.values()))

    def merged_with(self, other: "Baseline") -> "Baseline":
        """This baseline plus ``other``'s entries (other wins on clashes)."""
        merged: dict[tuple[str, str, str], BaselineEntry] = {
            entry.fingerprint: entry for entry in self.entries
        }
        for entry in other.entries:
            merged[entry.fingerprint] = entry
        return Baseline(entries=tuple(merged.values()))
