"""Engine 1: determinism discipline, enforced statically on the AST.

The reproduction's headline numbers depend on bit-identical reruns, so
every stochastic or time-dependent code path must draw from seeded,
named RNG streams and ``repro.simtime``. These rules catch the ways
that discipline silently erodes:

========  =======================  ==========================================
DET000    parse-error              file could not be parsed
DET001    unseeded-rng             global/unseeded ``random`` use
DET002    wall-clock               ``time.time()``/``datetime.now()`` reads
DET003    fault-stream-rng         fault layer bypassing the stream registry
DET004    set-iteration            set iteration order reaching ordered output
DET005    float-equality           ``==``/``!=`` against float literals
DET006    mutable-default          mutable default argument values
DET007    process-hash             builtin ``hash()`` outside ``__hash__``
DET008    non-atomic-write         raw file write in the durability layer
DET009    telemetry-read           raw duration-clock read outside ``repro.obs``
========  =======================  ==========================================

Checks are deliberately syntactic (no type inference beyond local
set-literal tracking): they over-approximate rarely and every accepted
over-approximation goes in the baseline with a reason.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import code_checker, make, rule

rule("DET000", "parse-error", "code", "file could not be parsed as Python")
rule(
    "DET001", "unseeded-rng", "code",
    "unseeded random.Random() or module-level random.* call",
)
rule(
    "DET002", "wall-clock", "code",
    "wall-clock read (time.time/datetime.now); use repro.simtime",
)
rule(
    "DET003", "fault-stream-rng", "code",
    "fault-layer RNG constructed directly; use repro.faults.rng.stream_rng",
)
rule(
    "DET004", "set-iteration", "code",
    "iteration over a set where order can leak into output",
)
rule(
    "DET005", "float-equality", "code",
    "float literal compared with == / != in analysis code",
)
rule(
    "DET006", "mutable-default", "code",
    "mutable default argument value",
)
rule(
    "DET007", "process-hash", "code",
    "builtin hash() varies per process (PYTHONHASHSEED); use a stable digest",
)
rule(
    "DET008", "non-atomic-write", "code",
    "raw file write in storage/runner code; route through repro.store.atomic",
)
rule(
    "DET009", "telemetry-read", "code",
    "raw duration-clock / tracemalloc read; route through repro.obs",
)

#: ``open()`` mode characters that make the call a write.
_WRITE_MODE_CHARS = frozenset("wax+")

#: Functions on the ``random`` module that draw from the shared global RNG.
_MODULE_RNG_FNS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "triangular", "betavariate", "binomialvariate",
    "expovariate", "gammavariate", "gauss", "lognormvariate",
    "normalvariate", "vonmisesvariate", "paretovariate", "weibullvariate",
    "getrandbits", "randbytes", "seed",
})

#: ``time`` module functions that read the wall clock.
_TIME_FNS = frozenset({"time", "time_ns", "localtime", "gmtime", "ctime", "asctime"})

#: ``time`` module functions that read duration clocks (DET009). These
#: are deterministic-content-safe but belong to the telemetry layer:
#: scattered reads are how wall-clock data leaks into run artifacts.
_DURATION_FNS = frozenset({
    "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns",
    "process_time", "process_time_ns", "thread_time", "thread_time_ns",
})

#: ``datetime.datetime`` / ``datetime.date`` constructors of "now".
_DATETIME_NOW = frozenset({"now", "today", "utcnow"})
_DATE_NOW = frozenset({"today"})

#: Builtin calls that materialize their argument's iteration order.
_ORDER_SENSITIVE_BUILTINS = frozenset({"list", "tuple", "iter", "enumerate", "reversed"})


@dataclass(frozen=True)
class CodeContext:
    """Where a module sits, and which path-scoped rules apply to it."""

    path: str
    config: LintConfig

    @property
    def in_analysis(self) -> bool:
        """True under a path where float equality is forbidden."""
        return self.config.path_in(self.path, self.config.analysis_paths)

    @property
    def in_faults(self) -> bool:
        """True under the fault-injection layer."""
        return self.config.path_in(self.path, self.config.fault_paths)

    @property
    def is_rng_module(self) -> bool:
        """True for the module(s) allowed to build stream RNGs directly."""
        return self.path in self.config.fault_rng_modules

    @property
    def in_atomic(self) -> bool:
        """True under a path whose writes must be crash-safe."""
        return self.config.path_in(self.path, self.config.atomic_paths)

    @property
    def is_atomic_module(self) -> bool:
        """True for the module(s) allowed to write files directly."""
        return self.path in self.config.atomic_write_modules

    @property
    def in_telemetry_scope(self) -> bool:
        """True under a path where raw duration-clock reads are policed."""
        return self.config.path_in(self.path, self.config.telemetry_paths)

    @property
    def is_telemetry_module(self) -> bool:
        """True under the module tree allowed to read clocks directly."""
        return self.config.path_in(self.path, self.config.telemetry_modules)


@dataclass(frozen=True)
class FixCandidate:
    """One mechanically fixable finding, with the AST nodes the fixer needs.

    ``data`` is rule-specific:

    * DET004 — ``{"wrap": expr}``: the set-valued expression to wrap in
      ``sorted(...)``;
    * DET006 — ``{"func": def_node, "default": expr, "arg": name}``: one
      mutable default and the parameter it belongs to;
    * DET007 — ``{"name": name_node}``: the ``hash`` name to replace
      with ``stable_hash``.
    """

    rule_id: str
    diagnostic: Diagnostic
    data: dict[str, object]


@dataclass
class _Aliases:
    """Import bindings relevant to the determinism rules."""

    random_modules: set[str] = field(default_factory=set)
    random_functions: set[str] = field(default_factory=set)
    random_class: set[str] = field(default_factory=set)
    time_modules: set[str] = field(default_factory=set)
    time_functions: set[str] = field(default_factory=set)
    duration_functions: set[str] = field(default_factory=set)
    tracemalloc_modules: set[str] = field(default_factory=set)
    tracemalloc_functions: set[str] = field(default_factory=set)
    datetime_modules: set[str] = field(default_factory=set)
    #: local name -> "datetime" | "date"
    datetime_classes: dict[str, str] = field(default_factory=dict)


def _collect_aliases(tree: ast.Module) -> _Aliases:
    aliases = _Aliases()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".")[0]
                if name.name == "random":
                    aliases.random_modules.add(local)
                elif name.name == "time":
                    aliases.time_modules.add(local)
                elif name.name == "tracemalloc":
                    aliases.tracemalloc_modules.add(local)
                elif name.name == "datetime":
                    aliases.datetime_modules.add(local)
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module == "random":
                for name in node.names:
                    local = name.asname or name.name
                    if name.name == "Random":
                        aliases.random_class.add(local)
                    elif name.name in _MODULE_RNG_FNS:
                        aliases.random_functions.add(local)
            elif node.module == "time":
                for name in node.names:
                    if name.name in _TIME_FNS:
                        aliases.time_functions.add(name.asname or name.name)
                    elif name.name in _DURATION_FNS:
                        aliases.duration_functions.add(name.asname or name.name)
            elif node.module == "tracemalloc":
                for name in node.names:
                    aliases.tracemalloc_functions.add(name.asname or name.name)
            elif node.module == "datetime":
                for name in node.names:
                    if name.name in ("datetime", "date"):
                        aliases.datetime_classes[name.asname or name.name] = name.name
    return aliases


class _DeterminismVisitor(ast.NodeVisitor):
    """One traversal applying every determinism rule."""

    def __init__(self, ctx: CodeContext, aliases: _Aliases) -> None:
        self.ctx = ctx
        self.aliases = aliases
        self.diagnostics: list[Diagnostic] = []
        self.fix_candidates: list[FixCandidate] = []
        self._symbols: list[str] = []
        #: Per-function scopes mapping local names to "is set-valued".
        self._set_scopes: list[dict[str, bool]] = [{}]

    # -- helpers -----------------------------------------------------------

    @property
    def symbol(self) -> str:
        return ".".join(self._symbols) if self._symbols else "<module>"

    def _emit(self, rule_id: str, node: ast.AST, message: str) -> Diagnostic:
        diagnostic = make(
            rule_id,
            self.ctx.path,
            getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0),
            message,
            self.symbol,
        )
        self.diagnostics.append(diagnostic)
        return diagnostic

    def _fixable(
        self, diagnostic: Diagnostic, **data: object
    ) -> None:
        self.fix_candidates.append(
            FixCandidate(diagnostic.rule_id, diagnostic, data)
        )

    def _is_setish(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_setish(node.left) or self._is_setish(node.right)
        if isinstance(node, ast.Name):
            for scope in reversed(self._set_scopes):
                if node.id in scope:
                    return scope[node.id]
        return False

    def _describe(self, node: ast.expr) -> str:
        try:
            text = ast.unparse(node)
        except Exception:  # pragma: no cover - unparse is total on 3.9+
            return "expression"
        return text if len(text) <= 40 else text[:37] + "..."

    # -- scope / symbol bookkeeping ---------------------------------------

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._check_mutable_defaults(node)
        self._symbols.append(node.name)
        self._set_scopes.append({})
        self.generic_visit(node)
        self._set_scopes.pop()
        self._symbols.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._symbols.append(node.name)
        self.generic_visit(node)
        self._symbols.pop()

    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            self._set_scopes[-1][node.targets[0].id] = self._is_setish(node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and node.value is not None:
            self._set_scopes[-1][node.target.id] = self._is_setish(node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Name) and self._is_setish(node.value):
            self._set_scopes[-1][node.target.id] = True
        self.generic_visit(node)

    # -- DET001 / DET002 / DET003 / DET007: calls --------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._check_random_call(node)
        self._check_wall_clock(node)
        self._check_telemetry_read(node)
        self._check_hash(node)
        self._check_order_sensitive_call(node)
        self._check_raw_write(node)
        self.generic_visit(node)

    def _check_random_call(self, node: ast.Call) -> None:
        func = node.func
        is_random_ctor = False
        if isinstance(func, ast.Name) and func.id in self.aliases.random_class:
            is_random_ctor = True
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.aliases.random_modules
        ):
            if func.attr == "Random" or func.attr == "SystemRandom":
                is_random_ctor = True
            elif func.attr in _MODULE_RNG_FNS:
                self._emit(
                    "DET001", node,
                    f"random.{func.attr}() draws from the shared global RNG; "
                    "use a seeded random.Random or a named stream",
                )
                return
        if isinstance(func, ast.Name) and func.id in self.aliases.random_functions:
            self._emit(
                "DET001", node,
                f"{func.id}() (from random) draws from the shared global RNG; "
                "use a seeded random.Random or a named stream",
            )
            return
        if not is_random_ctor:
            return
        if not node.args and not node.keywords:
            self._emit(
                "DET001", node,
                "random.Random() without a seed is wall-entropy seeded; "
                "pass an explicit seed",
            )
        elif self.ctx.in_faults and not self.ctx.is_rng_module:
            self._emit(
                "DET003", node,
                "fault-layer code must obtain RNGs from "
                "repro.faults.rng.stream_rng / FaultStreams, not construct "
                "random.Random directly (cross-stream independence)",
            )

    def _check_wall_clock(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in self.aliases.time_functions:
            self._emit(
                "DET002", node,
                f"{func.id}() (from time) reads the wall clock; "
                "simulation code must use repro.simtime day indices",
            )
            return
        if not isinstance(func, ast.Attribute):
            return
        base = func.value
        if isinstance(base, ast.Name):
            if base.id in self.aliases.time_modules and func.attr in _TIME_FNS:
                self._emit(
                    "DET002", node,
                    f"time.{func.attr}() reads the wall clock; "
                    "simulation code must use repro.simtime day indices",
                )
                return
            cls = self.aliases.datetime_classes.get(base.id)
            if cls == "datetime" and func.attr in _DATETIME_NOW:
                self._emit(
                    "DET002", node,
                    f"datetime.{func.attr}() reads the wall clock; "
                    "use repro.simtime.to_date(day) instead",
                )
                return
            if cls == "date" and func.attr in _DATE_NOW:
                self._emit(
                    "DET002", node,
                    "date.today() reads the wall clock; "
                    "use repro.simtime.to_date(day) instead",
                )
                return
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id in self.aliases.datetime_modules
        ):
            if base.attr == "datetime" and func.attr in _DATETIME_NOW:
                self._emit(
                    "DET002", node,
                    f"datetime.datetime.{func.attr}() reads the wall clock; "
                    "use repro.simtime.to_date(day) instead",
                )
            elif base.attr == "date" and func.attr in _DATE_NOW:
                self._emit(
                    "DET002", node,
                    "datetime.date.today() reads the wall clock; "
                    "use repro.simtime.to_date(day) instead",
                )

    def _check_telemetry_read(self, node: ast.Call) -> None:
        """DET009: confine duration clocks and tracemalloc to repro.obs.

        Duration clocks don't threaten determinism by themselves, but a
        raw read is one assignment away from a timing field in a run
        artifact — and then resumed runs stop being bit-identical. So
        every read funnels through :mod:`repro.obs`: ``repro.obs.clock``
        for the clocks, ``repro.obs.profiling`` for tracemalloc, which
        keep measured durations in telemetry-only fields.
        """
        if not self.ctx.in_telemetry_scope or self.ctx.is_telemetry_module:
            return
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in self.aliases.duration_functions:
                self._emit(
                    "DET009", node,
                    f"{func.id}() (from time) is a raw duration-clock read; "
                    "use repro.obs.clock (keeps timings in telemetry-only "
                    "fields)",
                )
            elif func.id in self.aliases.tracemalloc_functions:
                self._emit(
                    "DET009", node,
                    f"{func.id}() (from tracemalloc) outside the telemetry "
                    "layer; use repro.obs.profiling.profile_stage",
                )
            return
        if not (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
        ):
            return
        base = func.value.id
        if base in self.aliases.time_modules and func.attr in _DURATION_FNS:
            self._emit(
                "DET009", node,
                f"time.{func.attr}() is a raw duration-clock read; use "
                "repro.obs.clock (keeps timings in telemetry-only fields)",
            )
        elif base in self.aliases.tracemalloc_modules:
            self._emit(
                "DET009", node,
                f"tracemalloc.{func.attr}() outside the telemetry layer; "
                "use repro.obs.profiling.profile_stage",
            )

    def _check_hash(self, node: ast.Call) -> None:
        func = node.func
        if not (isinstance(func, ast.Name) and func.id == "hash"):
            return
        if "__hash__" in self._symbols:
            return  # defining object identity in-process is the one valid use
        diagnostic = self._emit(
            "DET007", node,
            "builtin hash() is randomized per process for str/bytes "
            "(PYTHONHASHSEED); derive values from a stable digest such as "
            "repro.faults.rng.stable_hash",
        )
        self._fixable(diagnostic, name=func)

    # -- DET008: raw writes in the durability layer -------------------------

    def _check_raw_write(self, node: ast.Call) -> None:
        """Flag writes that bypass the atomic-write helper.

        Scoped to the storage/runner/detection layers, where a
        half-written manifest, checkpoint, or journal would be read back
        later; everything there must go through
        :mod:`repro.store.atomic` (or be an explicitly allowed module,
        or carry a baselined justification).
        """
        if not self.ctx.in_atomic or self.ctx.is_atomic_module:
            return
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in (
            "write_text", "write_bytes",
        ):
            self._emit(
                "DET008", node,
                f".{func.attr}() is not crash-safe (a kill mid-write leaves "
                "a torn file); use repro.store.atomic.atomic_write_*",
            )
            return
        if isinstance(func, ast.Name) and func.id == "open":
            mode_index = 1  # builtin open(file, mode)
        elif isinstance(func, ast.Attribute) and func.attr == "open":
            mode_index = 0  # Path.open(mode)
        else:
            return
        mode: str | None = None
        if (
            len(node.args) > mode_index
            and isinstance(node.args[mode_index], ast.Constant)
            and isinstance(node.args[mode_index].value, str)
        ):
            mode = node.args[mode_index].value
        for keyword in node.keywords:
            if (
                keyword.arg == "mode"
                and isinstance(keyword.value, ast.Constant)
                and isinstance(keyword.value.value, str)
            ):
                mode = keyword.value.value
        if mode is not None and any(ch in _WRITE_MODE_CHARS for ch in mode):
            self._emit(
                "DET008", node,
                f"open(..., {mode!r}) writes in place (not crash-safe); "
                "use repro.store.atomic.atomic_write_*",
            )

    def _check_order_sensitive_call(self, node: ast.Call) -> None:
        func = node.func
        sink: str | None = None
        if isinstance(func, ast.Name) and func.id in _ORDER_SENSITIVE_BUILTINS:
            sink = func.id
        elif isinstance(func, ast.Attribute) and func.attr == "join":
            sink = "join"
        if sink is None or not node.args:
            return
        arg = node.args[0]
        if self._is_setish(arg):
            diagnostic = self._emit(
                "DET004", node,
                f"{sink}() materializes the iteration order of a set "
                f"({self._describe(arg)}); wrap it in sorted()",
            )
            self._fixable(diagnostic, wrap=arg)

    # -- DET004: loops and comprehensions ----------------------------------

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        for gen in node.generators:
            self._check_iteration(gen.iter)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        for gen in node.generators:
            self._check_iteration(gen.iter)
        self.generic_visit(node)

    def _check_iteration(self, iter_node: ast.expr) -> None:
        if self._is_setish(iter_node):
            diagnostic = self._emit(
                "DET004", iter_node,
                f"iterating a set ({self._describe(iter_node)}) leaks "
                "hash-randomized order into the result; wrap it in sorted()",
            )
            self._fixable(diagnostic, wrap=iter_node)

    # -- DET005: float equality ---------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        if self.ctx.in_analysis:
            operands = [node.left, *node.comparators]
            has_float = any(
                isinstance(op, ast.Constant) and isinstance(op.value, float)
                for op in operands
            )
            has_eq = any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops)
            if has_float and has_eq:
                self._emit(
                    "DET005", node,
                    "exact ==/!= against a float literal in analysis code; "
                    "use math.isclose or an integer representation",
                )
        self.generic_visit(node)

    # -- DET006: mutable defaults -------------------------------------------

    def _check_mutable_defaults(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        positional = [*node.args.posonlyargs, *node.args.args]
        pairs: list[tuple[ast.arg, ast.expr]] = list(
            zip(positional[len(positional) - len(node.args.defaults):],
                node.args.defaults)
        )
        pairs.extend(
            (arg, default)
            for arg, default in zip(node.args.kwonlyargs, node.args.kw_defaults)
            if default is not None
        )
        for arg, default in pairs:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set")
            )
            if mutable:
                diagnostic = self._emit(
                    "DET006", default,
                    f"mutable default argument in {node.name}(); defaults are "
                    "shared across calls — use None and create inside",
                )
                self._fixable(
                    diagnostic, func=node, default=default, arg=arg.arg
                )


@code_checker
def check_determinism(tree: ast.Module, ctx: CodeContext) -> list[Diagnostic]:
    """The built-in determinism rule pack (DET001–DET009)."""
    visitor = _DeterminismVisitor(ctx, _collect_aliases(tree))
    visitor.visit(tree)
    return visitor.diagnostics


def lint_code_source(
    source: str, path: str, config: LintConfig | None = None
) -> list[Diagnostic]:
    """Lint one module's source text; ``path`` scopes path-based rules."""
    from repro.lint.registry import CODE_CHECKERS

    cfg = config or LintConfig()
    ctx = CodeContext(path=path, config=cfg)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            make(
                "DET000", path, error.lineno or 0, error.offset or 0,
                f"could not parse: {error.msg}", "<module>",
            )
        ]
    diagnostics: list[Diagnostic] = []
    for checker in CODE_CHECKERS:
        diagnostics.extend(checker(tree, ctx))
    return diagnostics


def collect_fix_candidates(
    source: str, path: str, config: LintConfig | None = None
) -> list[FixCandidate]:
    """The mechanically fixable findings in one module's source text.

    Unlike :func:`lint_code_source` this runs only the built-in
    determinism pack (plugins do not describe their fixes) and returns
    candidates carrying live AST nodes, so callers must keep the parsed
    source around while applying them.
    """
    cfg = config or LintConfig()
    ctx = CodeContext(path=path, config=cfg)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return []
    visitor = _DeterminismVisitor(ctx, _collect_aliases(tree))
    visitor.visit(tree)
    return visitor.fix_candidates


def lint_code_file(
    file_path: Path, rel_path: str, config: LintConfig
) -> list[Diagnostic]:
    """Lint one ``.py`` file on disk."""
    try:
        source = file_path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as error:
        return [make("DET000", rel_path, 0, 0, f"could not read: {error}")]
    return lint_code_source(source, rel_path, config)


def iter_python_sources(root: Path) -> Iterator[Path]:
    """Every ``.py`` file under ``root`` (sorted for stable output)."""
    yield from sorted(root.rglob("*.py"))
