"""Per-function control-flow graphs with exception and ``finally`` edges.

The typestate engine (:mod:`repro.lint.typestate`) reasons about
*every* path through a function — including the ones chaos testing
rarely exercises: an exception thrown mid-statement, a ``return`` that
unwinds a ``with`` block, a ``finally`` that swallows an in-flight
exception by returning. This module builds that graph from the AST,
once per function:

* every statement that can raise gets an ``exception`` edge to the
  innermost handler — an except dispatch node, a ``finally`` copy, or
  the synthetic raise-exit;
* ``with`` blocks get explicit ``with-enter``/``with-exit`` nodes, and
  the body's exception/return/break/continue continuations are routed
  through dedicated ``with-exit`` copies, modelling the guaranteed
  ``__exit__`` call on unwinding;
* ``finally`` bodies are duplicated per continuation (normal,
  exception, return, break, continue), each copy built against the
  *outer* control context, so a ``return`` inside ``finally``
  correctly swallows the exception it interrupted.

Each node carries a ``scope``: the AST subtrees actually evaluated at
that point (an ``if`` node holds only its test, a ``for`` node its
target and iterable). Consumers that scan for events must walk the
scope, never the full statement, or they would see code from branches
the node does not execute. Nested ``def``/``class`` bodies are opaque
to the enclosing graph; every function gets its own CFG.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Iterable

#: Edge kinds.
NORMAL = "normal"
EXCEPTION = "exception"

#: try statement types (``except*`` groups build identically).
_TRY_TYPES: tuple[type[ast.stmt], ...] = (ast.Try,) + (
    (ast.TryStar,) if hasattr(ast, "TryStar") else ()
)

#: Statements whose node is opaque (nested bodies never run here).
_OPAQUE = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)

#: Statements that cannot raise: no exception edge.
_NO_RAISE = (ast.Pass, ast.Break, ast.Continue, ast.Global, ast.Nonlocal)


@dataclass
class CFGNode:
    """One program point: a statement, a branch test, or synthetic."""

    index: int
    #: ``entry`` | ``exit`` | ``raise-exit`` | ``stmt`` | ``with-enter``
    #: | ``with-exit`` | ``except-dispatch`` | ``handler`` | ``finally``
    #: | ``join``
    kind: str
    label: str = ""
    line: int = 0
    col: int = 0
    ast_node: ast.AST | None = None
    #: AST subtrees evaluated at this node (the event scope).
    scope: tuple[ast.AST, ...] = ()
    #: Out-edges: ``(successor index, edge kind)``.
    succs: list[tuple[int, str]] = field(default_factory=list)


@dataclass
class CFG:
    """The control-flow graph of one function."""

    name: str
    func: ast.FunctionDef | ast.AsyncFunctionDef
    nodes: list[CFGNode]
    entry: int
    exit: int
    #: Where escaping exceptions land; unreachable in functions whose
    #: every exception is swallowed (e.g. ``return`` inside ``finally``).
    raise_exit: int

    def preds(self) -> dict[int, list[tuple[int, str]]]:
        """In-edges per node: ``index -> [(predecessor, edge kind)]``."""
        incoming: dict[int, list[tuple[int, str]]] = {
            node.index: [] for node in self.nodes
        }
        for node in self.nodes:
            for target, edge_kind in node.succs:
                incoming[target].append((node.index, edge_kind))
        return incoming

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly dump for ``riskybiz lint --graph cfg``."""
        return {
            "function": self.name,
            "entry": self.entry,
            "exit": self.exit,
            "raise_exit": self.raise_exit,
            "nodes": [
                {
                    "index": node.index,
                    "kind": node.kind,
                    "label": node.label,
                    "line": node.line,
                }
                for node in self.nodes
            ],
            "edges": sorted(
                [node.index, target, edge_kind]
                for node in self.nodes
                for target, edge_kind in node.succs
            ),
        }


@dataclass(frozen=True)
class _Env:
    """Where control transfers land in the current syntactic context."""

    exc: int
    ret: int
    brk: int | None = None
    cont: int | None = None


def _escape_kinds(bodies: Iterable[list[ast.stmt]]) -> set[str]:
    """Which of return/break/continue escape these statement lists.

    ``break``/``continue`` bound to a loop *inside* the scanned region
    do not escape it; nested function bodies never run here at all.
    """
    found: set[str] = set()

    def visit(stmt: ast.stmt, in_loop: bool) -> None:
        if isinstance(stmt, ast.Return):
            found.add("return")
            return
        if isinstance(stmt, ast.Break):
            if not in_loop:
                found.add("break")
            return
        if isinstance(stmt, ast.Continue):
            if not in_loop:
                found.add("continue")
            return
        if isinstance(stmt, _OPAQUE):
            return
        deeper = in_loop or isinstance(stmt, (ast.For, ast.AsyncFor, ast.While))
        for _, value in ast.iter_fields(stmt):
            if isinstance(value, list):
                for child in value:
                    if isinstance(child, ast.stmt):
                        visit(child, deeper)

    for body in bodies:
        for stmt in body:
            visit(stmt, False)
    return found


class _Builder:
    """Builds one function's CFG via a running frontier of open ends."""

    def __init__(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef, qualname: str
    ) -> None:
        self.func = func
        self.qualname = qualname
        self.nodes: list[CFGNode] = []
        self.entry = self._node("entry", label="entry", ast_node=func)
        self.exit = self._node("exit", label="exit", ast_node=func)
        self.raise_exit = self._node(
            "raise-exit", label="raise-exit", ast_node=func
        )

    # -- graph primitives ---------------------------------------------------

    def _node(
        self,
        kind: str,
        label: str = "",
        ast_node: ast.AST | None = None,
        scope: tuple[ast.AST, ...] = (),
    ) -> int:
        line = int(getattr(ast_node, "lineno", 0) or 0)
        col = int(getattr(ast_node, "col_offset", 0) or 0)
        if not line and scope:
            line = int(getattr(scope[0], "lineno", 0) or 0)
            col = int(getattr(scope[0], "col_offset", 0) or 0)
        index = len(self.nodes)
        self.nodes.append(
            CFGNode(index, kind, label, line, col, ast_node, scope)
        )
        return index

    def _edge(self, src: int, dst: int, kind: str = NORMAL) -> None:
        if (dst, kind) not in self.nodes[src].succs:
            self.nodes[src].succs.append((dst, kind))

    def _link(self, frontier: list[int], dst: int) -> None:
        for src in frontier:
            self._edge(src, dst)

    # -- statement dispatch -------------------------------------------------

    def build(self) -> CFG:
        env = _Env(exc=self.raise_exit, ret=self.exit)
        frontier = self._stmts(self.func.body, [self.entry], env)
        self._link(frontier, self.exit)
        return CFG(
            self.qualname,
            self.func,
            self.nodes,
            self.entry,
            self.exit,
            self.raise_exit,
        )

    def _stmts(
        self, body: list[ast.stmt], frontier: list[int], env: _Env
    ) -> list[int]:
        for stmt in body:
            frontier = self._stmt(stmt, frontier, env)
        return frontier

    def _stmt(
        self, stmt: ast.stmt, frontier: list[int], env: _Env
    ) -> list[int]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier, env)
        if isinstance(stmt, ast.While):
            return self._loop(stmt, (stmt.test,), frontier, env)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._loop(stmt, (stmt.target, stmt.iter), frontier, env)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, 0, frontier, env)
        if isinstance(stmt, _TRY_TYPES):
            return self._try(stmt, frontier, env)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, frontier, env)
        return self._simple(stmt, frontier, env)

    def _simple(
        self, stmt: ast.stmt, frontier: list[int], env: _Env
    ) -> list[int]:
        scope: tuple[ast.AST, ...] = (stmt,)
        if isinstance(stmt, _OPAQUE):
            scope = tuple(stmt.decorator_list)
        node = self._node(
            "stmt",
            label=type(stmt).__name__.lower(),
            ast_node=stmt,
            scope=scope,
        )
        self._link(frontier, node)
        if not isinstance(stmt, _NO_RAISE):
            self._edge(node, env.exc, EXCEPTION)
        if isinstance(stmt, ast.Return):
            self._edge(node, env.ret)
            return []
        if isinstance(stmt, ast.Raise):
            return []
        if isinstance(stmt, ast.Break):
            if env.brk is not None:
                self._edge(node, env.brk)
            return []
        if isinstance(stmt, ast.Continue):
            if env.cont is not None:
                self._edge(node, env.cont)
            return []
        return [node]

    def _if(self, stmt: ast.If, frontier: list[int], env: _Env) -> list[int]:
        test = self._node(
            "stmt", label="if", ast_node=stmt, scope=(stmt.test,)
        )
        self._link(frontier, test)
        self._edge(test, env.exc, EXCEPTION)
        out = self._stmts(stmt.body, [test], env)
        if stmt.orelse:
            out += self._stmts(stmt.orelse, [test], env)
        else:
            out.append(test)
        return out

    def _loop(
        self,
        stmt: ast.While | ast.For | ast.AsyncFor,
        scope: tuple[ast.AST, ...],
        frontier: list[int],
        env: _Env,
    ) -> list[int]:
        label = "while" if isinstance(stmt, ast.While) else "for"
        head = self._node("stmt", label=label, ast_node=stmt, scope=scope)
        after = self._node("join", label=f"{label}-exit", ast_node=stmt)
        self._link(frontier, head)
        self._edge(head, env.exc, EXCEPTION)
        body_env = _Env(exc=env.exc, ret=env.ret, brk=after, cont=head)
        body_out = self._stmts(stmt.body, [head], body_env)
        self._link(body_out, head)
        if stmt.orelse:
            # else runs when the loop exhausts; break bypasses it.
            else_out = self._stmts(stmt.orelse, [head], env)
            self._link(else_out, after)
        else:
            self._edge(head, after)
        return [after]

    def _with(
        self,
        stmt: ast.With | ast.AsyncWith,
        item_index: int,
        frontier: list[int],
        env: _Env,
    ) -> list[int]:
        item = stmt.items[item_index]
        enter = self._node(
            "with-enter",
            label="with-enter",
            ast_node=item,
            scope=(item.context_expr,),
        )
        self._link(frontier, enter)
        self._edge(enter, env.exc, EXCEPTION)

        def exit_copy(continuation: int | None, edge_kind: str) -> int | None:
            if continuation is None:
                return None
            node = self._node(
                "with-exit", label="with-exit", ast_node=item,
                scope=(item.context_expr,),
            )
            self._edge(node, continuation, edge_kind)
            return node

        exit_exc = exit_copy(env.exc, EXCEPTION)
        exit_ret = exit_copy(env.ret, NORMAL)
        assert exit_exc is not None and exit_ret is not None
        inner = _Env(
            exc=exit_exc,
            ret=exit_ret,
            brk=exit_copy(env.brk, NORMAL),
            cont=exit_copy(env.cont, NORMAL),
        )
        if item_index + 1 < len(stmt.items):
            body_out = self._with(stmt, item_index + 1, [enter], inner)
        else:
            body_out = self._stmts(stmt.body, [enter], inner)
        exit_norm = self._node(
            "with-exit", label="with-exit", ast_node=item,
            scope=(item.context_expr,),
        )
        self._link(body_out, exit_norm)
        return [exit_norm]

    def _try(self, stmt: ast.stmt, frontier: list[int], env: _Env) -> list[int]:
        assert isinstance(stmt, _TRY_TYPES)
        body: list[ast.stmt] = stmt.body  # type: ignore[attr-defined]
        handlers: list[ast.ExceptHandler] = stmt.handlers  # type: ignore[attr-defined]
        orelse: list[ast.stmt] = stmt.orelse  # type: ignore[attr-defined]
        finalbody: list[ast.stmt] = stmt.finalbody  # type: ignore[attr-defined]
        if not finalbody:
            return self._try_except(
                stmt, body, handlers, orelse, frontier, env
            )

        after = self._node("join", label="after-try", ast_node=stmt)

        def finally_copy(
            tag: str, continuation: int | None, edge_kind: str
        ) -> int | None:
            """One duplicate of the finally body, under the OUTER env."""
            if continuation is None:
                return None
            marker = self._node(
                "finally", label=f"finally-{tag}", ast_node=stmt
            )
            out = self._stmts(finalbody, [marker], env)
            tail = self._node("join", label=f"finally-{tag}-end", ast_node=stmt)
            self._link(out, tail)
            self._edge(tail, continuation, edge_kind)
            return marker

        escapes = _escape_kinds(
            [body, orelse] + [handler.body for handler in handlers]
        )
        f_exc = finally_copy("exception", env.exc, EXCEPTION)
        assert f_exc is not None
        inner = _Env(
            exc=f_exc,
            ret=(
                finally_copy("return", env.ret, NORMAL) or env.ret
                if "return" in escapes
                else env.ret
            ),
            brk=(
                finally_copy("break", env.brk, NORMAL)
                if "break" in escapes
                else env.brk
            ),
            cont=(
                finally_copy("continue", env.cont, NORMAL)
                if "continue" in escapes
                else env.cont
            ),
        )
        if handlers:
            body_out = self._try_except(
                stmt, body, handlers, orelse, frontier, inner
            )
        else:
            body_out = self._stmts(body, frontier, inner)
        f_norm = finally_copy("normal", after, NORMAL)
        assert f_norm is not None
        self._link(body_out, f_norm)
        return [after]

    def _try_except(
        self,
        stmt: ast.stmt,
        body: list[ast.stmt],
        handlers: list[ast.ExceptHandler],
        orelse: list[ast.stmt],
        frontier: list[int],
        env: _Env,
    ) -> list[int]:
        if not handlers:
            out = self._stmts(body, frontier, env)
            if orelse:
                out = self._stmts(orelse, out, env)
            return out
        dispatch = self._node(
            "except-dispatch", label="except-dispatch", ast_node=stmt
        )
        # Conservatively, an exception may match no handler and escape.
        self._edge(dispatch, env.exc, EXCEPTION)
        inner = _Env(exc=dispatch, ret=env.ret, brk=env.brk, cont=env.cont)
        body_out = self._stmts(body, frontier, inner)
        out: list[int] = []
        for handler in handlers:
            scope = (handler.type,) if handler.type is not None else ()
            node = self._node(
                "handler",
                label=f"except:{handler.name or ''}",
                ast_node=handler,
                scope=scope,
            )
            self._edge(dispatch, node)
            # Handler bodies (and re-raises) unwind to the outer context.
            self._edge(node, env.exc, EXCEPTION)
            out += self._stmts(handler.body, [node], env)
        if orelse:
            out += self._stmts(orelse, body_out, env)
        else:
            out += body_out
        return out

    def _match(
        self, stmt: ast.Match, frontier: list[int], env: _Env
    ) -> list[int]:
        subject = self._node(
            "stmt", label="match", ast_node=stmt, scope=(stmt.subject,)
        )
        self._link(frontier, subject)
        self._edge(subject, env.exc, EXCEPTION)
        out: list[int] = [subject]  # no case may match
        for case in stmt.cases:
            scope = (case.guard,) if case.guard is not None else ()
            node = self._node(
                "stmt", label="case", ast_node=case.pattern, scope=scope
            )
            self._edge(subject, node)
            self._edge(node, env.exc, EXCEPTION)
            out += self._stmts(case.body, [node], env)
        return out


def build_cfg(
    func: ast.FunctionDef | ast.AsyncFunctionDef, qualname: str | None = None
) -> CFG:
    """The CFG of one function definition."""
    return _Builder(func, qualname or func.name).build()


def function_cfgs(tree: ast.Module) -> list[CFG]:
    """A CFG per function/method in ``tree``, dotted-qualname keyed.

    Qualnames match the baseline anchor style used everywhere else in
    the linter: ``Class.method``, ``outer.inner`` for closures.
    """
    graphs: list[CFG] = []

    def walk(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{child.name}" if prefix else child.name
                graphs.append(build_cfg(child, qualname))
                walk(child, qualname)
            elif isinstance(child, ast.ClassDef):
                qualname = f"{prefix}.{child.name}" if prefix else child.name
                walk(child, qualname)
            else:
                walk(child, prefix)

    walk(tree, "")
    return graphs
