"""Lint configuration, read from ``[tool.riskybiz.lint]`` in pyproject.toml.

Everything has a working default, so the linter runs configuration-free
on any checkout; the pyproject table only *narrows* behaviour (rule
selection, extra exclusions, a different baseline path). Path options
are repo-root-relative, compared as path prefixes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path, PurePosixPath
from typing import Any

try:  # Python >= 3.11
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - 3.10 fallback, no toml parser
    tomllib = None  # type: ignore[assignment]


@dataclass(frozen=True)
class LintConfig:
    """Resolved lint settings for one repository root."""

    root: Path = field(default_factory=Path.cwd)
    #: Baseline file, root-relative.
    baseline: str = "lint-baseline.json"
    #: If non-empty, run only these rule ids.
    select: tuple[str, ...] = ()
    #: Rule ids to skip entirely.
    ignore: tuple[str, ...] = ()
    #: Root-relative path prefixes never scanned.
    exclude: tuple[str, ...] = (
        ".git",
        "__pycache__",
        "build",
        "dist",
    )
    #: Paths where float-equality comparisons are forbidden (DET005).
    analysis_paths: tuple[str, ...] = ("src/repro/analysis",)
    #: Paths where direct ``random.Random`` construction is forbidden
    #: in favour of the named-stream registry (DET003).
    fault_paths: tuple[str, ...] = ("src/repro/faults",)
    #: The modules allowed to construct stream RNGs directly.
    fault_rng_modules: tuple[str, ...] = ("src/repro/faults/rng.py",)
    #: Paths whose manifest/checkpoint/journal writes must route through
    #: :mod:`repro.store.atomic` (DET008).
    atomic_paths: tuple[str, ...] = (
        "src/repro/store",
        "src/repro/runner",
        "src/repro/detection",
    )
    #: The modules allowed to perform raw file writes: the atomic helper
    #: itself, and the append-only journal (appends cannot temp-rename).
    atomic_write_modules: tuple[str, ...] = (
        "src/repro/store/atomic.py",
        "src/repro/runner/journal.py",
    )
    #: Paths where raw duration-clock / tracemalloc reads are forbidden
    #: outside the telemetry modules (DET009).
    telemetry_paths: tuple[str, ...] = ("src/repro",)
    #: The modules (prefix match) allowed to read duration clocks and
    #: tracemalloc directly: the obs layer itself.
    telemetry_modules: tuple[str, ...] = ("src/repro/obs",)
    #: Roots (relative to ``root``) the project graph is built from. The
    #: interprocedural rules (DET010–DET012) see exactly these trees.
    project_paths: tuple[str, ...] = ("src",)
    #: Worker-process entry points, as ``module:qualname`` specs. DET010
    #: polices everything reachable from these through the call graph.
    worker_entry_points: tuple[str, ...] = (
        "repro.runner.execution:_shard_worker",
        "repro.lint.runner:_lint_shard_worker",
    )
    #: Paths (prefix match) exempt from DET010: the modules that *are*
    #: the process-global state, with their own fork-safety discipline.
    worker_safe_modules: tuple[str, ...] = ("src/repro/obs",)
    #: Dotted project functions treated as digest/manifest sinks by
    #: DET011, in addition to ``hashlib`` constructors.
    digest_sinks: tuple[str, ...] = (
        "repro.faults.rng.stable_hash",
        "repro.store.atomic.write_checked_json",
        "repro.store.artifacts.content_digest",
    )
    #: The only functions (``module:qualname`` specs) allowed to write
    #: the incremental engine's ``state["watermarks"]`` mapping (DET013).
    watermark_commit_functions: tuple[str, ...] = (
        "repro.detection.incremental:commit_watermark",
    )
    #: Span-context factory names (bare or attribute calls) whose
    #: results DET014 tracks through enter/exit.
    span_factories: tuple[str, ...] = ("span",)
    #: Tracer class names: construction (or a classmethod constructor)
    #: starts a DET014 open/closed lifecycle.
    tracer_classes: tuple[str, ...] = ("Tracer",)
    #: Journal class names for the DET015 open/closed lifecycle.
    journal_classes: tuple[str, ...] = ("RunJournal",)
    #: Method names that close a tracked handle (DET014/DET015).
    protocol_close_methods: tuple[str, ...] = ("close",)
    #: Journal event names that rewrite resume history; appending them
    #: outside the reconcile functions below is a DET015 finding.
    journal_reconcile_events: tuple[str, ...] = (
        "engine-reset",
        "shard-reset",
    )
    #: The functions (``module:qualname`` specs) sanctioned to append
    #: reconcile events: the resume/verify paths that own recovery.
    journal_reconcile_functions: tuple[str, ...] = (
        "repro.runner.execution:_load_partial_state",
        "repro.runner.execution:_verified_completed_shards",
        "repro.runner.execution:_restore_engine",
    )
    #: Paths where DET016 polices manual temp-file dances. Wider than
    #: ``atomic_paths``: a hand-rolled temp write anywhere in the
    #: package must follow the full protocol or route through
    #: :mod:`repro.store.atomic`.
    atomic_protocol_paths: tuple[str, ...] = ("src/repro",)
    #: Names/suffixes that mark an expression as a temp-file path:
    #: entries starting with ``.`` match string-literal suffixes, the
    #: rest match variable names.
    atomic_temp_markers: tuple[str, ...] = ("TMP_SUFFIX", ".tmp")
    #: Calls DET016 accepts as the durability barrier (dotted specs
    #: require the full attribute chain).
    protocol_fsync_functions: tuple[str, ...] = ("os.fsync",)
    #: Calls DET016/the atomic protocol accept as the publishing rename.
    protocol_rename_functions: tuple[str, ...] = ("os.replace",)
    #: Calls that durably write the incremental engine checkpoint;
    #: DET017 requires one on every path before a watermark commit.
    checkpoint_write_functions: tuple[str, ...] = ("atomic_write_bytes",)
    #: Method names that commit a consumer watermark (DET017 tracks
    #: attribute calls only; the module-level DET013 helper is exempt).
    watermark_commit_methods: tuple[str, ...] = ("commit_watermark",)
    #: Paths where the DET017 checkpoint-before-commit ordering holds.
    incremental_runner_paths: tuple[str, ...] = (
        "src/repro/runner",
        "src/repro/detection",
    )

    def baseline_path(self) -> Path:
        """Absolute path of the configured baseline file."""
        return self.root / self.baseline

    def is_excluded(self, rel_path: str) -> bool:
        """True if ``rel_path`` (posix, root-relative) is excluded."""
        parts = PurePosixPath(rel_path).parts
        for prefix in self.exclude:
            prefix_parts = PurePosixPath(prefix).parts
            if parts[: len(prefix_parts)] == prefix_parts:
                return True
        # Exclude cache dirs at any depth, not only at the root.
        return "__pycache__" in parts

    def rule_enabled(self, rule_id: str) -> bool:
        """Apply ``select``/``ignore`` to one rule id."""
        if rule_id in self.ignore:
            return False
        return not self.select or rule_id in self.select

    def path_in(self, rel_path: str, prefixes: tuple[str, ...]) -> bool:
        """True if ``rel_path`` sits under any of ``prefixes``."""
        parts = PurePosixPath(rel_path).parts
        for prefix in prefixes:
            prefix_parts = PurePosixPath(prefix).parts
            if parts[: len(prefix_parts)] == prefix_parts:
                return True
        return False


def _as_str_tuple(value: Any, option: str) -> tuple[str, ...]:
    if not isinstance(value, list) or not all(
        isinstance(item, str) for item in value
    ):
        raise ValueError(f"lint option {option!r} must be a list of strings")
    return tuple(value)


def load_config(root: Path | str | None = None) -> LintConfig:
    """The lint config for ``root`` (defaults merged with pyproject)."""
    base = LintConfig(root=Path(root) if root is not None else Path.cwd())
    pyproject = base.root / "pyproject.toml"
    if tomllib is None or not pyproject.is_file():
        return base
    with pyproject.open("rb") as handle:
        data = tomllib.load(handle)
    table = data.get("tool", {}).get("riskybiz", {}).get("lint", {})
    if not isinstance(table, dict):
        raise ValueError("[tool.riskybiz.lint] must be a table")
    updates: dict[str, Any] = {}
    if "baseline" in table:
        if not isinstance(table["baseline"], str):
            raise ValueError("lint option 'baseline' must be a string")
        updates["baseline"] = table["baseline"]
    for option, attr in (
        ("select", "select"),
        ("ignore", "ignore"),
        ("exclude", "exclude"),
        ("analysis-paths", "analysis_paths"),
        ("fault-paths", "fault_paths"),
        ("fault-rng-modules", "fault_rng_modules"),
        ("atomic-paths", "atomic_paths"),
        ("atomic-write-modules", "atomic_write_modules"),
        ("telemetry-paths", "telemetry_paths"),
        ("telemetry-modules", "telemetry_modules"),
        ("project-paths", "project_paths"),
        ("worker-entry-points", "worker_entry_points"),
        ("worker-safe-modules", "worker_safe_modules"),
        ("digest-sinks", "digest_sinks"),
        ("watermark-commit-functions", "watermark_commit_functions"),
        ("span-factories", "span_factories"),
        ("tracer-classes", "tracer_classes"),
        ("journal-classes", "journal_classes"),
        ("protocol-close-methods", "protocol_close_methods"),
        ("journal-reconcile-events", "journal_reconcile_events"),
        ("journal-reconcile-functions", "journal_reconcile_functions"),
        ("atomic-protocol-paths", "atomic_protocol_paths"),
        ("atomic-temp-markers", "atomic_temp_markers"),
        ("protocol-fsync-functions", "protocol_fsync_functions"),
        ("protocol-rename-functions", "protocol_rename_functions"),
        ("checkpoint-write-functions", "checkpoint_write_functions"),
        ("watermark-commit-methods", "watermark_commit_methods"),
        ("incremental-runner-paths", "incremental_runner_paths"),
    ):
        if option in table:
            updates[attr] = _as_str_tuple(table[option], option)
    return replace(base, **updates) if updates else base
