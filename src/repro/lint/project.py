"""The project graph: every module under the configured source roots.

Per-file AST rules (DET001–DET009) cannot see a worker-executed
function mutating a module-level global three imports away. This module
supplies the missing whole-program view: it parses every Python file
under ``LintConfig.project_paths``, assigns each one a dotted module
name, and records the facts the interprocedural passes need —

* module-level bound names (the "globals" DET010 polices),
* top-level functions and class methods (the call-graph nodes),
* import bindings, resolved to project modules where possible, so a
  call through ``from repro.obs import runtime as obs`` still lands on
  ``repro.obs.runtime``.

The graph is purely syntactic — no imports are executed — and building
it is deterministic: files are visited in sorted order and every
collection it exposes iterates in insertion (= sorted) order.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Iterator

from repro.lint.config import LintConfig

#: Separator between a module name and a symbol qualname in function ids.
SYMBOL_SEP = ":"


def function_id(module: str, qualname: str) -> str:
    """The canonical id of one function: ``module:Qual.name``."""
    return f"{module}{SYMBOL_SEP}{qualname}"


def split_function_id(ident: str) -> tuple[str, str]:
    """Inverse of :func:`function_id`."""
    module, _, qualname = ident.partition(SYMBOL_SEP)
    return module, qualname


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method defined in a project module."""

    module: str
    qualname: str  # "func" or "Class.method" (nested defs dotted likewise)
    node: ast.FunctionDef | ast.AsyncFunctionDef = field(compare=False)
    lineno: int
    class_name: str | None = None

    @property
    def ident(self) -> str:
        return function_id(self.module, self.qualname)

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class ModuleInfo:
    """Everything the flow passes need to know about one module."""

    name: str  # dotted module name, e.g. "repro.detection.pipeline"
    path: str  # root-relative posix path, e.g. "src/repro/.../pipeline.py"
    tree: ast.Module = field(repr=False)
    #: Names bound by module-level assignments (the mutable-state surface).
    global_names: set[str] = field(default_factory=set)
    #: qualname -> FunctionInfo for every function/method in the module.
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: class name -> method names defined directly on the class.
    classes: dict[str, set[str]] = field(default_factory=dict)
    #: local name -> dotted module it refers to (``import x.y as z``,
    #: ``from pkg import submodule``).
    module_aliases: dict[str, str] = field(default_factory=dict)
    #: local name -> (module, symbol) for ``from mod import symbol``.
    symbol_aliases: dict[str, tuple[str, str]] = field(default_factory=dict)

    def symbol_names(self) -> set[str]:
        """Every qualname a baseline entry could anchor to in this module."""
        names: set[str] = {"<module>"}
        names.update(self.functions)
        names.update(self.classes)
        return names


def _module_name_for(rel_to_root: PurePosixPath) -> str | None:
    """Dotted module name for one source file, or None for non-modules."""
    parts = list(rel_to_root.parts)
    if not parts or not parts[-1].endswith(".py"):
        return None
    parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts.pop()
    if not parts:
        return None
    return ".".join(parts)


class _SymbolCollector(ast.NodeVisitor):
    """Collect functions, classes, and module globals for one module."""

    def __init__(self, info: ModuleInfo) -> None:
        self.info = info
        self._stack: list[str] = []
        self._class_stack: list[str] = []

    def _qualname(self, name: str) -> str:
        return ".".join([*self._stack, name])

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        qualname = self._qualname(node.name)
        class_name = self._class_stack[-1] if self._class_stack else None
        self.info.functions[qualname] = FunctionInfo(
            module=self.info.name,
            qualname=qualname,
            node=node,
            lineno=node.lineno,
            class_name=class_name,
        )
        if class_name is not None and len(self._stack) == 1:
            self.info.classes.setdefault(class_name, set()).add(node.name)
        self._stack.append(node.name)
        self._class_stack.append("")  # nested defs are not methods
        for child in node.body:
            self.visit(child)
        self._class_stack.pop()
        self._stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.info.classes.setdefault(node.name, set())
        self._stack.append(node.name)
        self._class_stack.append(node.name)
        for child in node.body:
            self.visit(child)
        self._class_stack.pop()
        self._stack.pop()

    # -- module-level state -------------------------------------------------

    def _record_global_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.info.global_names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_global_target(element)

    def visit_Assign(self, node: ast.Assign) -> None:
        if not self._stack:
            for target in node.targets:
                self._record_global_target(target)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if not self._stack:
            self._record_global_target(node.target)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if not self._stack:
            self._record_global_target(node.target)


def _collect_imports(info: ModuleInfo) -> None:
    """Record module/symbol import bindings (top-level and nested)."""
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.asname is not None:
                    info.module_aliases[name.asname] = name.name
                else:
                    # ``import a.b.c`` binds ``a``; attribute chains are
                    # resolved against the full dotted path at call sites.
                    info.module_aliases.setdefault(
                        name.name.split(".")[0], name.name.split(".")[0]
                    )
        elif isinstance(node, ast.ImportFrom) and node.module is not None:
            base = node.module
            if node.level:  # relative import: resolve against this package
                package_parts = info.name.split(".")
                anchor = package_parts[: len(package_parts) - node.level]
                base = ".".join([*anchor, node.module]) if anchor else node.module
            for name in node.names:
                local = name.asname or name.name
                info.symbol_aliases[local] = (base, name.name)


@dataclass
class ProjectGraph:
    """All modules under the project roots, keyed by dotted name."""

    root: Path
    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    #: root-relative posix path -> module name (reverse index).
    by_path: dict[str, str] = field(default_factory=dict)
    #: files that failed to parse (path -> error text).
    parse_failures: dict[str, str] = field(default_factory=dict)

    @classmethod
    def build(cls, config: LintConfig) -> "ProjectGraph":
        """Parse every module under ``config.project_paths``."""
        graph = cls(root=config.root)
        for project_path in config.project_paths:
            base = config.root / project_path
            if not base.is_dir():
                continue
            for file_path in sorted(base.rglob("*.py")):
                rel = file_path.relative_to(config.root).as_posix()
                if config.is_excluded(rel):
                    continue
                rel_to_base = PurePosixPath(
                    file_path.relative_to(base).as_posix()
                )
                module_name = _module_name_for(rel_to_base)
                if module_name is None:
                    continue
                try:
                    source = file_path.read_text(encoding="utf-8")
                    tree = ast.parse(source, filename=rel)
                except (OSError, UnicodeDecodeError, SyntaxError) as error:
                    graph.parse_failures[rel] = str(error)
                    continue
                info = ModuleInfo(name=module_name, path=rel, tree=tree)
                _SymbolCollector(info).visit(tree)
                _collect_imports(info)
                graph.modules[module_name] = info
                graph.by_path[rel] = module_name
        return graph

    # -- lookups -------------------------------------------------------------

    def module_for_path(self, rel_path: str) -> ModuleInfo | None:
        name = self.by_path.get(rel_path)
        return self.modules.get(name) if name is not None else None

    def function(self, ident: str) -> FunctionInfo | None:
        module, qualname = split_function_id(ident)
        info = self.modules.get(module)
        return info.functions.get(qualname) if info is not None else None

    def iter_functions(self) -> Iterator[FunctionInfo]:
        for name in sorted(self.modules):
            module = self.modules[name]
            for qualname in sorted(module.functions):
                yield module.functions[qualname]

    def resolve_symbol(
        self, module: ModuleInfo, name: str
    ) -> tuple[str, str] | None:
        """Resolve a bare name in ``module`` to ``(module_name, symbol)``.

        Follows one level of ``from mod import symbol`` re-export: if the
        alias target is itself a project module that re-imports the
        symbol, the chain is walked until it lands on a definition (or
        leaves the project).
        """
        seen: set[tuple[str, str]] = set()
        current: tuple[str, str] | None = None
        if name in module.functions or name in module.classes:
            current = (module.name, name)
        elif name in module.symbol_aliases:
            current = module.symbol_aliases[name]
        while current is not None and current not in seen:
            seen.add(current)
            target_module, symbol = current
            target = self.modules.get(target_module)
            if target is None:
                return current  # outside the project; caller decides
            if symbol in target.functions or symbol in target.classes:
                return current
            if symbol in target.module_aliases:
                return None  # actually a module alias, not a symbol
            if symbol in target.symbol_aliases:
                current = target.symbol_aliases[symbol]
                continue
            return current
        return current

    def resolve_dotted(self, module: ModuleInfo, dotted: str) -> str | None:
        """Resolve a dotted expression prefix to a project module name.

        ``dotted`` is the textual form of an attribute chain base, e.g.
        ``obs`` (alias) or ``repro.obs.runtime`` (plain import).
        """
        parts = dotted.split(".")
        head = parts[0]
        if head in module.module_aliases:
            resolved = ".".join([module.module_aliases[head], *parts[1:]])
        elif head in module.symbol_aliases:
            target_module, symbol = module.symbol_aliases[head]
            # ``from pkg import submodule`` binds a module, not a symbol.
            resolved = ".".join([f"{target_module}.{symbol}", *parts[1:]])
        else:
            resolved = dotted
        return resolved if resolved in self.modules else None
