"""One-call convenience API: simulate, detect, analyze.

:func:`reproduce` runs the whole paper reproduction — build the
ecosystem, run the nine-year simulation, run the §3 detection pipeline
over the observable data, and prepare the §4–§7 analyses — returning
everything as one bundle. Results are cached in the process-wide
content-addressed artifact cache (keyed by scenario digest + options,
bounded LRU), so tests, benchmarks, and examples in the same process
share the expensive work without the cache growing without bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.study import StudyAnalysis
from repro.detection.pipeline import DetectionPipeline, PipelineResult
from repro.ecosystem.config import default_scenario
from repro.ecosystem.world import WorldResult, run_default_world
from repro.store.artifacts import ArtifactKey, default_cache, scenario_digest


@dataclass
class ReproBundle:
    """A finished reproduction: world + detection + analysis."""

    world: WorldResult
    pipeline: PipelineResult
    study: StudyAnalysis

    @property
    def zonedb(self):
        """The longitudinal zone database (the CAIDA-DZDB substitute)."""
        return self.world.zonedb

    @property
    def whois(self):
        """The WHOIS history archive (the DomainTools substitute)."""
        return self.world.whois


def reproduce(
    seed: int = 2021,
    scale: float = 1.0,
    *,
    mine_patterns: bool = False,
    use_cache: bool = True,
) -> ReproBundle:
    """Run the full reproduction pipeline (cached per scenario digest).

    ``mine_patterns`` additionally runs the §3.2.2 substring miner over
    the candidate set (slower; the discovered-pattern list is only
    needed when inspecting the discovery stage itself). Mined and
    unmined bundles cache under distinct keys, so neither variant ever
    bypasses the cache.
    """
    config = default_scenario(seed)
    if scale != 1.0:
        config = config.scaled(scale)
    key = ArtifactKey.build(
        "bundle", scenario_digest(config), {"mine_patterns": mine_patterns}
    )
    cache = default_cache()
    if use_cache:
        cached = cache.get(key)
        if cached is not None:
            return cached
    world = run_default_world(seed=seed, scale=scale, use_cache=use_cache)
    pipeline = DetectionPipeline(
        world.zonedb, world.whois, mine_patterns=mine_patterns
    ).run()
    study = StudyAnalysis(pipeline, world.zonedb, world.whois)
    bundle = ReproBundle(world=world, pipeline=pipeline, study=study)
    if use_cache:
        # Memory-only: bundles hold live World objects; disk persistence
        # is for the standalone dataset/pipeline artifacts the CLI writes.
        cache.put(key, bundle, memory_only=True)
    return bundle
