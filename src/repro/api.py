"""One-call convenience API: simulate, detect, analyze.

:func:`reproduce` runs the whole paper reproduction — build the
ecosystem, run the nine-year simulation, run the §3 detection pipeline
over the observable data, and prepare the §4–§7 analyses — returning
everything as one bundle. Results are memoized per (seed, scale) so
tests, benchmarks, and examples in the same process share the expensive
work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.study import StudyAnalysis
from repro.detection.pipeline import DetectionPipeline, PipelineResult
from repro.ecosystem.world import WorldResult, run_default_world


@dataclass
class ReproBundle:
    """A finished reproduction: world + detection + analysis."""

    world: WorldResult
    pipeline: PipelineResult
    study: StudyAnalysis

    @property
    def zonedb(self):
        """The longitudinal zone database (the CAIDA-DZDB substitute)."""
        return self.world.zonedb

    @property
    def whois(self):
        """The WHOIS history archive (the DomainTools substitute)."""
        return self.world.whois


_BUNDLE_CACHE: dict[tuple[int, float], ReproBundle] = {}


def reproduce(
    seed: int = 2021,
    scale: float = 1.0,
    *,
    mine_patterns: bool = False,
    use_cache: bool = True,
) -> ReproBundle:
    """Run the full reproduction pipeline (memoized per seed/scale).

    ``mine_patterns`` additionally runs the §3.2.2 substring miner over
    the candidate set (slower; the discovered-pattern list is only
    needed when inspecting the discovery stage itself).
    """
    key = (seed, scale)
    if use_cache and not mine_patterns and key in _BUNDLE_CACHE:
        return _BUNDLE_CACHE[key]
    world = run_default_world(seed=seed, scale=scale, use_cache=use_cache)
    pipeline = DetectionPipeline(
        world.zonedb, world.whois, mine_patterns=mine_patterns
    ).run()
    study = StudyAnalysis(pipeline, world.zonedb, world.whois)
    bundle = ReproBundle(world=world, pipeline=pipeline, study=study)
    if use_cache and not mine_patterns:
        _BUNDLE_CACHE[key] = bundle
    return bundle
