"""The durable run journal: append-only, checksummed JSONL.

One journal records one run's progress as a sequence of events —
``run-start``, ``shard-start``, ``shard-complete`` (with the completed
checkpoint's digests), ``merge-start``, ``run-complete`` — each on its
own line:

    {"checksum": "<sha256 of the rest>", "payload": {...},
     "run_id": "run-…", "seq": 3, "type": "shard-complete"}

Appends are durable (write → flush → fsync) and every record carries a
SHA-256 over its own canonical body, so on reopen the journal can tell
exactly which events survived a crash:

* a *torn tail* — a final line cut short by a killed writer, or a
  final record whose checksum does not verify — is dropped: the event
  it described never durably happened, so the work is simply redone;
* corruption anywhere *before* the tail (a bad record followed by good
  ones) means the file was damaged after the fact and raises
  :class:`JournalCorruption` — resuming from a lying journal would
  silently skip work.

Timestamps are deliberately absent: the journal orders events by
sequence number only, so its bytes are a pure function of what the run
did (wall-clock reads are banned repo-wide by lint rule ``DET002``).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.store.atomic import canonical_json, fsync_directory

#: Format tag recorded by the run-start event.
JOURNAL_FORMAT = "riskybiz-journal/1"


class JournalCorruption(Exception):
    """A journal record before the tail failed verification."""


def _record_checksum(body: dict[str, Any]) -> str:
    return hashlib.sha256(canonical_json(body).encode("utf-8")).hexdigest()


@dataclass(frozen=True, slots=True)
class JournalRecord:
    """One verified journal event."""

    seq: int
    run_id: str
    type: str
    payload: dict[str, Any]

    def body(self) -> dict[str, Any]:
        """The checksummed portion of the record."""
        return {
            "seq": self.seq,
            "run_id": self.run_id,
            "type": self.type,
            "payload": self.payload,
        }


def _parse_line(line: str) -> JournalRecord | None:
    """The verified record on ``line``, or ``None`` if it fails."""
    try:
        document = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(document, dict):
        return None
    recorded = document.get("checksum")
    body = {k: v for k, v in document.items() if k != "checksum"}
    if not isinstance(recorded, str) or _record_checksum(body) != recorded:
        return None
    try:
        return JournalRecord(
            seq=int(body["seq"]),
            run_id=str(body["run_id"]),
            type=str(body["type"]),
            payload=dict(body["payload"]),
        )
    except (KeyError, TypeError, ValueError):
        return None


class RunJournal:
    """Append-only journal for one run, checksummed per record.

    Construct with :meth:`create` for a fresh run or :meth:`open` to
    replay an existing file (dropping a torn tail, raising
    :class:`JournalCorruption` on earlier damage). The ``torn_writer``
    hook exists for chaos testing: given the encoded record it may
    return a cut position, in which case only that prefix is written
    (durably — the fragment must survive, that is the point) and the
    writer dies via :class:`~repro.faults.process.ChaosKill`,
    simulating a crash mid-append.
    """

    def __init__(
        self,
        path: str | Path,
        run_id: str,
        records: list[JournalRecord] | None = None,
        *,
        torn_writer: "Callable[[bytes], int | None] | None" = None,
    ) -> None:
        self.path = Path(path)
        self.run_id = run_id
        self.records: list[JournalRecord] = list(records or ())
        self.torn_writer = torn_writer

    # -- construction --------------------------------------------------------

    @classmethod
    def create(cls, path: str | Path, run_id: str) -> "RunJournal":
        """Start a fresh journal (the file must not already exist)."""
        target = Path(path)
        if target.exists():
            raise FileExistsError(f"journal already exists: {target}")
        target.parent.mkdir(parents=True, exist_ok=True)
        journal = cls(target, run_id)
        journal.append("run-start", format=JOURNAL_FORMAT, run_id_echo=run_id)
        return journal

    @classmethod
    def open(cls, path: str | Path) -> "RunJournal":
        """Replay an existing journal, recovering from a torn tail."""
        target = Path(path)
        raw_lines = target.read_text(encoding="utf-8").split("\n")
        if raw_lines and raw_lines[-1] == "":
            raw_lines.pop()
        records: list[JournalRecord] = []
        dropped_tail = False
        for index, line in enumerate(raw_lines):
            record = _parse_line(line)
            if record is None or record.seq != len(records):
                if index == len(raw_lines) - 1:
                    dropped_tail = True
                    break
                raise JournalCorruption(
                    f"{target}: record {index} failed verification with "
                    "valid records after it — journal damaged, not torn"
                )
            records.append(record)
        if not records:
            raise JournalCorruption(f"{target}: no verifiable records")
        if records[0].type != "run-start":
            raise JournalCorruption(f"{target}: first record is not run-start")
        journal = cls(target, records[0].run_id, records)
        if dropped_tail:
            journal._truncate_to_verified(raw_lines)
        return journal

    def _truncate_to_verified(self, raw_lines: list[str]) -> None:
        """Rewrite the file to contain exactly the verified records.

        Only the torn tail is dropped; every verified line is kept
        byte-for-byte. The rewrite itself is crash-safe because a
        re-crash mid-truncate just leaves another torn tail.
        """
        verified = raw_lines[: len(self.records)]
        with open(self.path, "w", encoding="utf-8") as handle:
            handle.write("".join(line + "\n" for line in verified))
            handle.flush()
            os.fsync(handle.fileno())

    # -- appends -------------------------------------------------------------

    def append(self, event_type: str, **payload: Any) -> JournalRecord:
        """Durably append one event; returns the written record."""
        record = JournalRecord(
            seq=len(self.records),
            run_id=self.run_id,
            type=event_type,
            payload=payload,
        )
        body = record.body()
        document = dict(body)
        document["checksum"] = _record_checksum(body)
        line = json.dumps(document, sort_keys=True) + "\n"
        data = line.encode("utf-8")
        cut = self.torn_writer(data) if self.torn_writer is not None else None
        with open(self.path, "ab") as handle:
            handle.write(data if cut is None else data[:cut])
            handle.flush()
            os.fsync(handle.fileno())
        fsync_directory(self.path.parent)
        if cut is not None:
            # Chaos: the torn fragment is on disk; the writer is now dead.
            from repro.faults.process import ChaosKill

            raise ChaosKill("torn", f"journal-append:{event_type}")
        self.records.append(record)
        return record

    # -- replay queries ------------------------------------------------------

    def events(self, event_type: str | None = None) -> Iterator[JournalRecord]:
        """Verified events, optionally filtered by type."""
        for record in self.records:
            if event_type is None or record.type == event_type:
                yield record

    def last(self, event_type: str) -> JournalRecord | None:
        """The most recent event of ``event_type``, if any."""
        for record in reversed(self.records):
            if record.type == event_type:
                return record
        return None

    def completed_shards(self) -> dict[int, dict[str, Any]]:
        """Shard index → completion payload, for every durable shard."""
        done: dict[int, dict[str, Any]] = {}
        for record in self.events("shard-complete"):
            done[int(record.payload["shard"])] = record.payload
        return done

    def completed_stages(self, shard: int) -> list[str]:
        """Stages journaled durable for ``shard``, in completion order."""
        stages: list[str] = []
        for record in self.events("stage-complete"):
            if int(record.payload["shard"]) == shard:
                stages.append(str(record.payload["stage"]))
        return stages

    @property
    def run_complete(self) -> JournalRecord | None:
        """The run-complete event, if the run durably finished."""
        return self.last("run-complete")
