"""Seeded kill-and-resume trials: crash anywhere, resume, compare bits.

The harness is the executable claim behind the crash-safety design: a
supervised run killed at *randomized* stage, journal-append, and
torn-write boundaries — repeatedly, up to a kill budget — and resumed
after each death must produce a result **bit-identical** (equal
semantic digest, which covers every reported field) to the same run
left uninterrupted, on both store backends. Afterward the run
directory and dataset must verify clean: no quarantined-and-forgotten
state, no checkpoint the journal lies about.

Everything is seeded: the world, the fault streams, and the kill
schedule, so a failing trial replays exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.faults.process import ChaosKill, ChaosMonkey, ProcessChaosConfig
from repro.runner.execution import run_supervised_detection
from repro.runner.journal import RunJournal
from repro.runner.supervisor import SupervisorPolicy

if TYPE_CHECKING:
    from repro.whois.archive import WhoisArchive
    from repro.zonedb.database import ZoneDatabase

#: Backends a trial can exercise.
BACKENDS = ("memory", "sqlite")


@dataclass
class ChaosTrialReport:
    """Everything one kill-and-resume trial observed."""

    backend: str
    shards: int
    kills: int
    kill_sites: list[tuple[str, str]]
    resumes: int
    baseline_digest: str
    chaos_digest: str
    verify_issues: list[str] = field(default_factory=list)
    #: Canonical trace-content digests (None when tracing was off).
    baseline_trace_digest: str | None = None
    chaos_trace_digest: str | None = None

    @property
    def bit_identical(self) -> bool:
        """Did the interrupted run reproduce the uninterrupted result?"""
        return self.baseline_digest == self.chaos_digest

    @property
    def traces_identical(self) -> bool:
        """Did the interrupted run's trace converge on the same content?

        Compares the canonical span view (deterministic content fields
        only); vacuously True when the trial ran without tracing.
        """
        if self.baseline_trace_digest is None:
            return True
        return self.baseline_trace_digest == self.chaos_trace_digest

    @property
    def passed(self) -> bool:
        """Identical output and a clean post-trial verification."""
        return (
            self.bit_identical
            and self.traces_identical
            and not self.verify_issues
        )


def _build_inputs(
    scale: float, seed: int, backend: str, workdir: Path
) -> tuple["ZoneDatabase", "WhoisArchive", Path | None]:
    """World inputs for one trial, routed through the requested backend.

    ``memory`` analyzes the in-process world directly; ``sqlite`` round-
    trips it through an on-disk dataset + WHOIS dump, the way the CLI
    tool chain does, so the trial also covers the dataset write/open
    integrity path.
    """
    from repro.ecosystem.config import default_scenario
    from repro.ecosystem.world import World

    config = default_scenario(seed)
    if scale != 1.0:
        config = config.scaled(scale)
    world = World(config).run()
    if backend == "memory":
        return world.zonedb, world.whois, None
    if backend != "sqlite":
        raise ValueError(f"unknown backend {backend!r} (want one of {BACKENDS})")
    from repro.store.artifacts import scenario_digest
    from repro.store.dataset import open_dataset, write_dataset
    from repro.whois.archive import WhoisArchive

    dataset_path = write_dataset(
        world.zonedb,
        workdir / "dataset.sqlite",
        scenario_digest=scenario_digest(config),
    )
    world.whois.dump(workdir / "whois.jsonl")
    return (
        open_dataset(dataset_path),
        WhoisArchive.load(workdir / "whois.jsonl"),
        dataset_path,
    )


def run_kill_resume_trial(
    *,
    workdir: str | Path,
    scale: float = 0.1,
    seed: int = 2021,
    backend: str = "memory",
    shards: int = 4,
    chaos_seed: int = 0,
    max_kills: int = 5,
    kill_worker_rate: float = 0.35,
    kill_supervisor_rate: float = 0.25,
    torn_write_rate: float = 0.25,
    mine_patterns: bool = True,
    trace: bool = False,
) -> ChaosTrialReport:
    """One seeded chaos trial; see the module docstring for the claim.

    The same :class:`~repro.faults.process.ChaosMonkey` (and therefore
    the same kill budget and RNG streams) persists across the simulated
    deaths, so a trial injects up to ``max_kills`` kills at
    stream-determined boundaries and then lets the run finish. The
    baseline and the chaos run share one world build.
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    zonedb, whois, dataset_path = _build_inputs(scale, seed, backend, workdir)
    policy = SupervisorPolicy(workers=0, seed=chaos_seed)

    baseline = run_supervised_detection(
        zonedb,
        whois,
        run_dir=workdir / "baseline",
        shards=shards,
        mine_patterns=mine_patterns,
        policy=policy,
        trace=trace,
    )

    monkey = ChaosMonkey(
        ProcessChaosConfig(
            seed=chaos_seed,
            kill_worker_rate=kill_worker_rate,
            kill_supervisor_rate=kill_supervisor_rate,
            torn_write_rate=torn_write_rate,
            max_kills=max_kills,
        )
    )
    chaos_dir = workdir / "chaos"
    resumes = 0
    resume_id: str | None = None
    supervised = None
    # Each caught ChaosKill spends exactly one kill from the budget, so
    # the loop is bounded by max_kills + the final uninterrupted pass.
    for _attempt in range(max_kills + 2):
        try:
            supervised = run_supervised_detection(
                zonedb,
                whois,
                run_dir=chaos_dir,
                shards=shards,
                mine_patterns=mine_patterns,
                policy=policy,
                chaos=monkey,
                resume=resume_id,
                trace=trace,
            )
            break
        except ChaosKill:
            resumes += 1
            resume_id = RunJournal.open(chaos_dir / "journal.jsonl").run_id
    if supervised is None:  # pragma: no cover - budget math prevents this
        raise RuntimeError(
            f"chaos trial did not finish within {max_kills + 2} attempts"
        )

    issues = _post_trial_verification(chaos_dir, dataset_path)
    baseline_trace = chaos_trace = None
    if trace:
        from repro.obs.tracer import read_trace, trace_content_digest
        from repro.runner.execution import TRACE_NAME

        baseline_trace = trace_content_digest(
            read_trace(workdir / "baseline" / TRACE_NAME)
        )
        chaos_trace = trace_content_digest(read_trace(chaos_dir / TRACE_NAME))
    return ChaosTrialReport(
        backend=backend,
        shards=shards,
        kills=monkey.kills,
        kill_sites=list(monkey.kill_sites),
        resumes=resumes,
        baseline_digest=baseline.result_digest,
        chaos_digest=supervised.result_digest,
        verify_issues=issues,
        baseline_trace_digest=baseline_trace,
        chaos_trace_digest=chaos_trace,
    )


def _post_trial_verification(
    chaos_dir: Path, dataset_path: Path | None
) -> list[str]:
    """Run the verify-data checks the CLI would, as issue strings."""
    from repro.store.verify import verify_dataset, verify_run_dir

    issues: list[Any] = list(verify_run_dir(chaos_dir))
    if dataset_path is not None:
        issues.extend(verify_dataset(dataset_path))
    return [str(issue) for issue in issues]
