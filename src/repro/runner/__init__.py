"""The execution plane: supervised runs, journaling, and crash safety.

The detection methodology at production scale is a long-lived,
multi-stage job over years of zone snapshots. This package supervises
it:

* :mod:`repro.runner.journal` — :class:`~repro.runner.journal.RunJournal`,
  an append-only, per-record-checksummed JSONL log of every stage and
  shard boundary a run durably completed, tolerant of torn tail writes;
* :mod:`repro.runner.supervisor` —
  :class:`~repro.runner.supervisor.RunSupervisor`, which executes shard
  tasks inline or across a pool of worker processes with heartbeats,
  hang detection, and retry-with-exponential-backoff on crash;
* :mod:`repro.runner.execution` — the supervised detection run:
  journaled shard execution, checkpoint digests, and
  ``riskybiz detect --resume <run-id>`` semantics — plus the
  incremental run (``riskybiz advance``), which folds per-day delta
  batches into a journaled standing engine instead of re-running the
  batch pipeline;
* :mod:`repro.runner.chaos_harness` — the seeded kill-and-resume
  harness proving a run killed at randomized boundaries and resumed is
  bit-identical to an uninterrupted one.

Every on-disk write in this package goes through
:mod:`repro.store.atomic` (enforced by lint rule ``DET008``), so a
killed run can always be replayed from its journal: work either
durably completed — checkpoint on disk, digest journaled — or it is
restarted from the last durable boundary.
"""

from repro.runner.journal import (
    JournalCorruption,
    JournalRecord,
    RunJournal,
)
from repro.runner.supervisor import (
    RunFailed,
    RunSupervisor,
    ShardOutcome,
    SupervisorPolicy,
)
from repro.runner.execution import (
    IncrementalRunResult,
    SupervisedResult,
    compute_run_id,
    result_fingerprint,
    run_incremental_detection,
    run_supervised_detection,
)
from repro.runner.chaos_harness import ChaosTrialReport, run_kill_resume_trial

__all__ = [
    "ChaosTrialReport",
    "IncrementalRunResult",
    "JournalCorruption",
    "JournalRecord",
    "RunFailed",
    "RunJournal",
    "RunSupervisor",
    "ShardOutcome",
    "SupervisedResult",
    "SupervisorPolicy",
    "compute_run_id",
    "result_fingerprint",
    "run_incremental_detection",
    "run_kill_resume_trial",
    "run_supervised_detection",
]
