"""RunSupervisor: shard execution with heartbeats, timeouts, retries.

The supervisor owns the *liveness* half of crash safety (the journal
owns durability). It executes shard tasks either inline — sequentially
in this process, the mode the chaos harness drives deterministically —
or across a pool of worker processes, each of which:

* sends a heartbeat on a shared queue at every stage boundary;
* is declared *hung* when no heartbeat arrives within the policy's
  timeout while the process is still alive, and is then terminated;
* is declared *crashed* when it exits non-zero (a real SIGKILL shows
  up here as exit 137);
* is retried with exponential backoff plus seeded jitter (a named
  stream per the :mod:`repro.faults.rng` conventions), up to the
  policy's retry budget, after which :class:`RunFailed` is raised.

The supervisor never interprets shard *results* — workers persist
their own checkpoints durably; the caller journals completions after
verifying them. That split means a worker that dies after its
checkpoint rename but before exiting cleanly costs only a redundant
re-run, never a corrupt dataset.

Timeouts use the monotonic duration clock via :mod:`repro.obs.clock`
— a duration source, not a wall clock, so it is exempt from lint rule
``DET002``; routing it through ``repro.obs`` keeps rule ``DET009``
(telemetry reads confined to the obs layer) satisfied. Retries, hangs,
and heartbeats are also mirrored into the obs metrics registry and, when
a run is traced, emitted as trace events — the journal stays the source
of truth for durability, the trace for operational history.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.faults.rng import stream_rng
from repro.obs import clock, runtime


class RunFailed(Exception):
    """A shard exhausted its retry budget (or could not be scheduled)."""


@dataclass(frozen=True)
class SupervisorPolicy:
    """Retry, backoff, and liveness knobs for one supervised run."""

    #: Worker processes to run concurrently (0 = inline execution).
    workers: int = 0
    #: Re-attempts per shard after the first try.
    max_retries: int = 2
    #: First-retry backoff, in seconds.
    backoff_base_s: float = 0.05
    #: Backoff growth factor per attempt.
    backoff_factor: float = 2.0
    #: Backoff ceiling, in seconds.
    backoff_max_s: float = 2.0
    #: Declare a worker hung after this long without a heartbeat.
    heartbeat_timeout_s: float = 60.0
    #: Queue poll granularity, in seconds.
    poll_interval_s: float = 0.02
    #: Seed for the backoff-jitter stream.
    seed: int = 0

    def backoff_for(self, attempt: int, jitter: float) -> float:
        """Backoff before re-attempt ``attempt`` (1-based), jittered.

        ``jitter`` in [0, 1) scales the delay through [0.5, 1.5), so
        simultaneous crashes do not retry in lockstep.
        """
        base = self.backoff_base_s * (self.backoff_factor ** (attempt - 1))
        return min(base, self.backoff_max_s) * (0.5 + jitter)


@dataclass
class ShardOutcome:
    """How one shard's execution went."""

    index: int
    attempts: int = 0
    crashes: list[str] = field(default_factory=list)

    @property
    def retried(self) -> bool:
        return self.attempts > 1


@dataclass
class _Active:
    """Bookkeeping for one live worker process."""

    process: Any
    attempt: int
    last_beat: float


class RunSupervisor:
    """Executes a set of shard tasks under one :class:`SupervisorPolicy`."""

    def __init__(self, policy: SupervisorPolicy | None = None) -> None:
        self.policy = policy or SupervisorPolicy()
        self._jitter_rng = stream_rng(self.policy.seed, "supervisor.backoff")

    # -- inline mode ---------------------------------------------------------

    def run_inline(
        self,
        indices: list[int],
        execute: Callable[[int], None],
        *,
        on_complete: Callable[[int], None] | None = None,
    ) -> dict[int, ShardOutcome]:
        """Run shards sequentially in-process, retrying on ``Exception``.

        ``BaseException`` (including a simulated
        :class:`~repro.faults.process.ChaosKill`) propagates untouched:
        a killed process does not get to retry itself.
        """
        outcomes: dict[int, ShardOutcome] = {}
        for index in indices:
            outcome = ShardOutcome(index=index)
            outcomes[index] = outcome
            while True:
                outcome.attempts += 1
                try:
                    execute(index)
                except Exception as error:
                    reason = f"{type(error).__name__}: {error}"
                    outcome.crashes.append(reason)
                    runtime.counter("supervisor.crashes").inc()
                    if outcome.attempts > self.policy.max_retries:
                        raise RunFailed(
                            f"shard {index} failed after "
                            f"{outcome.attempts} attempt(s): {error}"
                        ) from error
                    runtime.counter("supervisor.retries").inc()
                    runtime.trace_event(
                        "supervisor.retry",
                        shard=index,
                        attempt=outcome.attempts + 1,
                        reason=reason,
                    )
                    time.sleep(
                        self.policy.backoff_for(
                            outcome.attempts, self._jitter_rng.random()
                        )
                    )
                    continue
                break
            if on_complete is not None:
                on_complete(index)
        return outcomes

    # -- process-pool mode ---------------------------------------------------

    def run_processes(
        self,
        indices: list[int],
        spawn: Callable[[int, int, Any], Any],
        *,
        on_complete: Callable[[int], None] | None = None,
    ) -> dict[int, ShardOutcome]:
        """Run shards across a worker-process pool with liveness checks.

        ``spawn(index, attempt, heartbeat_queue)`` must return a started
        ``multiprocessing.Process`` whose target periodically puts
        ``(index, token)`` tuples on the queue and exits 0 on success.
        ``on_complete(index)`` runs in the supervisor after a clean exit
        (the caller verifies the shard's durable output and journals it
        there).
        """
        policy = self.policy
        if policy.workers < 1:
            raise ValueError("run_processes requires a positive worker count")
        ctx = multiprocessing.get_context()
        heartbeats: Any = ctx.Queue()
        pending: list[tuple[int, int]] = [(index, 1) for index in indices]
        delayed: list[tuple[float, int, int]] = []  # (ready_at, index, attempt)
        active: dict[int, _Active] = {}
        outcomes = {index: ShardOutcome(index=index) for index in indices}
        try:
            while pending or delayed or active:
                now = clock.monotonic()
                ready = [entry for entry in delayed if entry[0] <= now]
                delayed = [entry for entry in delayed if entry[0] > now]
                pending.extend((index, attempt) for _, index, attempt in ready)
                while pending and len(active) < policy.workers:
                    index, attempt = pending.pop(0)
                    outcomes[index].attempts = attempt
                    process = spawn(index, attempt, heartbeats)
                    active[index] = _Active(
                        process=process, attempt=attempt, last_beat=now
                    )
                self._drain_heartbeats(heartbeats, active)
                self._reap(active, delayed, outcomes, on_complete)
                if not active and not pending and delayed:
                    time.sleep(
                        max(0.0, min(e[0] for e in delayed) - clock.monotonic())
                    )
        finally:
            for entry in active.values():  # only reached when raising
                entry.process.terminate()
            heartbeats.close()
            heartbeats.cancel_join_thread()
        return outcomes

    def _drain_heartbeats(self, heartbeats: Any, active: dict[int, _Active]) -> None:
        """Block briefly for one heartbeat, then drain any backlog."""
        import queue as queue_module

        block = True
        while True:
            try:
                index, _token = heartbeats.get(
                    timeout=self.policy.poll_interval_s if block else 0
                )
            except queue_module.Empty:
                return
            except (EOFError, OSError):  # pragma: no cover - queue torn down
                return
            block = False
            runtime.counter("supervisor.heartbeats").inc()
            entry = active.get(index)
            if entry is not None:
                entry.last_beat = clock.monotonic()

    def _reap(
        self,
        active: dict[int, _Active],
        delayed: list[tuple[float, int, int]],
        outcomes: dict[int, ShardOutcome],
        on_complete: Callable[[int], None] | None,
    ) -> None:
        """Handle exits and hangs; reschedule or fail accordingly."""
        now = clock.monotonic()
        for index in sorted(active):
            entry = active[index]
            process = entry.process
            if not process.is_alive():
                process.join()
                del active[index]
                if process.exitcode == 0:
                    if on_complete is not None:
                        on_complete(index)
                    continue
                runtime.counter("supervisor.crashes").inc()
                self._schedule_retry(
                    index, entry.attempt,
                    f"exit code {process.exitcode}",
                    delayed, outcomes,
                )
            elif now - entry.last_beat > self.policy.heartbeat_timeout_s:
                process.terminate()
                process.join()
                del active[index]
                runtime.counter("supervisor.hangs").inc()
                runtime.trace_event(
                    "supervisor.hang", shard=index, attempt=entry.attempt
                )
                self._schedule_retry(
                    index, entry.attempt, "heartbeat timeout", delayed, outcomes
                )

    def _schedule_retry(
        self,
        index: int,
        attempt: int,
        reason: str,
        delayed: list[tuple[float, int, int]],
        outcomes: dict[int, ShardOutcome],
    ) -> None:
        outcomes[index].crashes.append(reason)
        if attempt > self.policy.max_retries:
            raise RunFailed(
                f"shard {index} failed after {attempt} attempt(s): {reason}"
            )
        runtime.counter("supervisor.retries").inc()
        runtime.trace_event(
            "supervisor.retry", shard=index, attempt=attempt + 1, reason=reason
        )
        backoff = self.policy.backoff_for(attempt, self._jitter_rng.random())
        delayed.append((clock.monotonic() + backoff, index, attempt + 1))
