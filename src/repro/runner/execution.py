"""Supervised detection runs: journaled, checkpointed, resumable.

This module ties the supervisor and the journal to the detection
pipeline. One *supervised run* lives in a run directory::

    <run_dir>/journal.jsonl                    append-only run journal
    <run_dir>/checkpoints/shard-NNNN-of-NNNN.pkl   per-shard state
    <run_dir>/result.pkl + result.json         merged result + manifest

Durability protocol, per shard stage::

    run stage  →  atomic checkpoint write  →  journal stage-complete

so every crash window converges on resume:

* killed before the checkpoint write — the stage's work is in memory
  only; the checkpoint still describes the previous stage; redo it;
* killed between checkpoint and journal append — the checkpoint is
  *ahead* of the journal; resume reconciles by journaling the stages
  the checkpoint proves complete (flagged ``reconciled``);
* a torn journal append — the fragment fails verification and is
  dropped on reopen, identical to the previous window.

Checkpoints and the merged result are content-verified on resume: a
file whose SHA-256 does not match what the journal recorded is
quarantined and its work recomputed — the journal never lies about
what durably exists. Run IDs are deterministic digests of the run's
inputs, so ``--resume`` can also detect an input switcheroo.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.detection.incremental import (
    ENGINE_WATERMARK,
    IncrementalDetectionEngine,
    dump_engine_state,
    load_engine_state,
)
from repro.detection.pipeline import (
    DetectionPipeline,
    PipelineResult,
    dump_pipeline_state,
    load_pipeline_state,
)
from repro.obs import profiling
from repro.obs import runtime as obs
from repro.obs.tracer import Tracer
from repro.runner.journal import RunJournal
from repro.runner.supervisor import (
    RunFailed,
    RunSupervisor,
    ShardOutcome,
    SupervisorPolicy,
)
from repro.store.artifacts import content_digest
from repro.store.atomic import (
    atomic_write_bytes,
    file_sha256,
    load_checked_json,
    quarantine,
    write_checked_json,
)
from repro.store.dataset import SCENARIO_DIGEST_KEY, DeltaView, ShardSpec

if TYPE_CHECKING:
    from repro.faults.process import ChaosMonkey
    from repro.whois.archive import WhoisArchive
    from repro.zonedb.database import ZoneDatabase

#: Format tag carried by the result manifest sidecar.
RESULT_FORMAT = "riskybiz-run-result/1"

#: Filenames inside a run directory.
JOURNAL_NAME = "journal.jsonl"
RESULT_NAME = "result.pkl"
RESULT_MANIFEST_NAME = "result.json"
CHECKPOINT_DIR_NAME = "checkpoints"
TRACE_NAME = "trace.jsonl"
METRICS_NAME = "metrics.json"
ENGINE_CHECKPOINT_NAME = "engine-state.pkl"
ENGINE_STORE_NAME = "engine-store.sqlite"


def compute_run_id(fingerprint: dict[str, Any]) -> str:
    """Deterministic run ID for a run-input fingerprint.

    Same dataset + same options ⇒ same ID, so a resume against changed
    inputs is caught as an ID mismatch instead of producing a franken-run.
    """
    return "run-" + content_digest(fingerprint)[:12]


def result_fingerprint(result: PipelineResult) -> dict[str, Any]:
    """A canonical, JSON-able fingerprint of a pipeline result.

    Semantic (field values), not representational (pickle bytes), so it
    is stable across processes, hash seeds, and pickle protocols. Two
    results fingerprint equal iff every output the paper reports from
    them is equal.
    """
    return {
        "funnel": asdict(result.funnel),
        "sacrificial": [asdict(entry) for entry in result.sacrificial],
        "matches": [asdict(match) for match in result.matches],
        "candidates": [
            [c.name, c.first_seen, list(c.referencing_domains)]
            for c in result.candidates
        ],
        "mined": [[p.substring, p.support] for p in result.mined_patterns],
    }


def result_digest(result: PipelineResult) -> str:
    """SHA-256 digest of :func:`result_fingerprint`."""
    return content_digest(result_fingerprint(result))


def state_digest(state: dict[str, Any]) -> str:
    """Semantic digest of one shard's checkpointable state.

    Journaled at every stage boundary; like :func:`result_fingerprint`
    it digests field values, not pickle bytes, so digests agree between
    the process that wrote a checkpoint and the one that resumes it.
    """
    fingerprint: dict[str, Any] = {
        "done": sorted(state.get("done", ())),
        "funnel": asdict(state["funnel"]),
    }
    for key in ("candidates", "stage1", "remaining"):
        if key in state:
            fingerprint[key] = [
                [c.name, c.first_seen, list(c.referencing_domains)]
                for c in state[key]
            ]
    if "sacrificial" in state:
        fingerprint["sacrificial"] = {
            name: asdict(entry) for name, entry in state["sacrificial"].items()
        }
    if "matches" in state:
        fingerprint["matches"] = [asdict(match) for match in state["matches"]]
    return content_digest(fingerprint)


@dataclass
class SupervisedResult:
    """What a supervised run produced, plus how it got there."""

    run_id: str
    result: PipelineResult
    result_digest: str
    run_dir: Path
    journal_path: Path
    resumed: bool = False
    #: Per-shard execution outcomes (empty when replayed from a
    #: durably-complete journal without re-executing anything).
    outcomes: dict[int, ShardOutcome] = field(default_factory=dict)


def _boundary(chaos: "ChaosMonkey | None", site: str, label: str) -> None:
    """Hit a chaos boundary if a monkey is riding along."""
    if chaos is None:
        return
    if site == "worker":
        chaos.worker_boundary(label)
    else:
        chaos.supervisor_boundary(label)


def _note_shard_reset(index: int, reason: str) -> None:
    """Mirror a journaled shard-reset into metrics and the trace."""
    obs.counter("runner.shard_resets").inc()
    obs.trace_event("runner.shard-reset", shard=index, reason=reason)


def _load_partial_state(
    journal: RunJournal,
    pipeline: DetectionPipeline,
    shard: ShardSpec,
    path: Path,
) -> dict[str, Any]:
    """The resumable state for an unfinished shard, reconciled.

    Source of truth is the checkpoint file (it is written before the
    journal entry); the journal is cross-checked against it:

    * checkpoint ahead of journal — journal the proven stages
      (``reconciled``) and continue from the checkpoint;
    * checkpoint behind the journal, unreadable, or missing while the
      journal claims progress — the durable artifact is gone or lying;
      quarantine it, journal a ``shard-reset``, start the shard over.
    """
    journaled = set(journal.completed_stages(shard.index))
    if not path.exists():
        if journaled:
            journal.append(
                "shard-reset", shard=shard.index, reason="checkpoint-missing"
            )
            _note_shard_reset(shard.index, "checkpoint-missing")
        return pipeline.new_shard_state()
    try:
        state = load_pipeline_state(path.read_bytes())
        done = set(state["done"])
    except Exception:
        quarantine(path)
        journal.append(
            "shard-reset", shard=shard.index, reason="checkpoint-unreadable"
        )
        _note_shard_reset(shard.index, "checkpoint-unreadable")
        return pipeline.new_shard_state()
    if not journaled <= done:
        quarantine(path)
        journal.append(
            "shard-reset", shard=shard.index, reason="checkpoint-behind-journal"
        )
        _note_shard_reset(shard.index, "checkpoint-behind-journal")
        return pipeline.new_shard_state()
    for stage in pipeline.SHARD_STAGES:
        if stage in done and stage not in journaled:
            journal.append(
                "stage-complete",
                shard=shard.index,
                stage=stage,
                state_digest=state_digest(state),
                checkpoint_sha256=file_sha256(path),
                reconciled=True,
            )
    return state


def _verified_completed_shards(
    journal: RunJournal,
    pipeline: DetectionPipeline,
    checkpoint_dir: Path,
    shards: int,
) -> set[int]:
    """Journal-complete shards whose checkpoints verify on disk.

    A shard-complete record whose checkpoint is missing or hashes wrong
    is demoted: the file is quarantined, a ``shard-reset`` journaled,
    and the shard re-executed (stages are deterministic, so redoing is
    always safe).
    """
    verified: set[int] = set()
    for index, payload in journal.completed_shards().items():
        if not 0 <= index < shards:
            continue
        path = pipeline.shard_checkpoint_path(
            checkpoint_dir, ShardSpec(index, shards)
        )
        if path.exists() and file_sha256(path) == payload.get("checkpoint_sha256"):
            verified.add(index)
            continue
        if path.exists():
            quarantine(path)
        journal.append(
            "shard-reset", shard=index, reason="completed-checkpoint-mismatch"
        )
        _note_shard_reset(index, "completed-checkpoint-mismatch")
    return verified


def _load_completed_result(
    run_dir: Path, payload: dict[str, Any]
) -> PipelineResult | None:
    """The durably-journaled merged result, verified, or None.

    None means the result artifact was missing or failed verification;
    the corrupt files are quarantined and the caller re-merges from the
    (independently verified) shard checkpoints.
    """
    result_path = run_dir / RESULT_NAME
    manifest_path = run_dir / RESULT_MANIFEST_NAME
    if not result_path.exists():
        return None
    data = result_path.read_bytes()
    if hashlib.sha256(data).hexdigest() != payload.get("result_sha256"):
        quarantine(result_path)
        if manifest_path.exists():
            quarantine(manifest_path)
        return None
    try:
        result: PipelineResult = pickle.loads(data)
    except Exception:
        quarantine(result_path)
        return None
    if result_digest(result) != payload.get("result_digest"):
        quarantine(result_path)
        return None
    if manifest_path.exists() and load_checked_json(manifest_path) is None:
        # Manifest corrupt (now quarantined): rewrite it from the
        # verified result rather than leaving the run dir inconsistent.
        _write_result_manifest(run_dir, payload["run_id"], data, result)
    return result


def _write_result_manifest(
    run_dir: Path, run_id: str, data: bytes, result: PipelineResult
) -> dict[str, Any]:
    manifest = {
        "format": RESULT_FORMAT,
        "run_id": run_id,
        "result": RESULT_NAME,
        "result_sha256": hashlib.sha256(data).hexdigest(),
        "result_digest": result_digest(result),
        "sacrificial_total": result.funnel.sacrificial_total,
    }
    write_checked_json(run_dir / RESULT_MANIFEST_NAME, manifest)
    return manifest


# -- worker-process entry point ---------------------------------------------


def _shard_worker(
    index: int,
    shards: int,
    dataset_path: str,
    whois_path: str | None,
    checkpoint_dir: str,
    mine_patterns: bool,
    heartbeats: Any,
    chaos_seed: int | None,
    kill_rate: float,
) -> None:
    """One shard, in its own process: open data, resume, checkpoint.

    Module-level so it pickles under any multiprocessing start method.
    The worker never touches the journal — the journal has exactly one
    writer, the supervisor, which records the completion only after
    verifying the checkpoint this worker left behind.

    Chaos (when ``chaos_seed`` is not None) uses a per-shard seed and
    ``os._exit(137)`` at stage boundaries, so the supervisor sees a
    genuine SIGKILL-style crash; the supervisor only arms it on a
    shard's first attempt, so retries always make progress.
    """
    from repro.store.dataset import open_dataset
    from repro.whois.archive import WhoisArchive

    # A forked worker inherits the supervisor's open tracer; the trace
    # has one writer (the supervisor), so drop the inherited handle.
    obs.detach()

    monkey = None
    if chaos_seed is not None and kill_rate > 0:
        from repro.faults.process import ChaosMonkey, ProcessChaosConfig
        from repro.faults.rng import stable_hash

        monkey = ChaosMonkey(
            ProcessChaosConfig(
                seed=stable_hash(f"{chaos_seed}:worker:{index}"),
                kill_worker_rate=kill_rate,
                max_kills=1,
            )
        )
    zonedb = open_dataset(dataset_path)
    whois = WhoisArchive.load(whois_path) if whois_path else WhoisArchive()
    pipeline = DetectionPipeline(
        zonedb, whois, mine_patterns=mine_patterns, shards=shards
    )
    shard = ShardSpec(index, shards)
    path = pipeline.shard_checkpoint_path(Path(checkpoint_dir), shard)
    state = pipeline.new_shard_state()
    if path.exists():
        try:
            state = load_pipeline_state(path.read_bytes())
        except Exception:
            state = pipeline.new_shard_state()

    def after_stage(stage: str, st: dict[str, Any]) -> None:
        if monkey is not None:
            monkey.exit_if(f"shard-{index}:{stage}")
        atomic_write_bytes(path, dump_pipeline_state(st))
        heartbeats.put((index, stage))

    pipeline.run_shard_stages(shard, state, after_stage=after_stage)


# -- the supervised run ------------------------------------------------------


def _write_metrics_snapshot(run_dir: Path) -> Path:
    """Write the global metrics registry as ``metrics.json`` (atomic)."""
    snapshot = obs.metrics().snapshot()
    path = run_dir / METRICS_NAME
    atomic_write_bytes(
        path,
        (json.dumps(snapshot, indent=2, sort_keys=True) + "\n").encode("utf-8"),
    )
    return path


def run_supervised_detection(
    zonedb: "ZoneDatabase",
    whois: "WhoisArchive",
    *,
    run_dir: str | Path,
    shards: int = 1,
    mine_patterns: bool = True,
    options: dict[str, Any] | None = None,
    policy: SupervisorPolicy | None = None,
    chaos: "ChaosMonkey | None" = None,
    resume: str | None = None,
    dataset_path: str | Path | None = None,
    whois_path: str | Path | None = None,
    trace: bool = False,
    profile: bool = False,
) -> SupervisedResult:
    """Run the detection pipeline under supervision, journaled in ``run_dir``.

    Fresh run: ``run_dir`` must hold no journal; one is created under a
    deterministic run ID. Resume: pass ``resume=<run-id>`` (from the
    journal, or ``riskybiz detect``'s output); the journal is replayed
    and exactly the work that did not durably complete is re-executed —
    finishing a run twice returns the recorded result without running
    anything.

    ``policy.workers == 0`` executes shards inline (the deterministic
    mode the chaos harness drives); ``workers > 0`` fans out worker
    processes under the :class:`RunSupervisor` liveness loop, which
    requires ``dataset_path`` so workers can reopen the data themselves.

    ``chaos`` arms the execution-plane fault injectors at every stage,
    journal-append, and merge boundary (see :mod:`repro.faults.process`).

    ``trace`` emits a span/event trace to ``<run_dir>/trace.jsonl`` and a
    metrics snapshot to ``<run_dir>/metrics.json`` (deterministic span
    IDs; wall durations confined to telemetry-only fields — see
    :mod:`repro.obs.tracer`). ``profile`` additionally records per-stage
    durations and ``tracemalloc`` peaks into the metrics snapshot.
    """
    policy = policy or SupervisorPolicy()
    run_dir = Path(run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)
    journal_path = run_dir / JOURNAL_NAME
    checkpoint_dir = run_dir / CHECKPOINT_DIR_NAME
    checkpoint_dir.mkdir(parents=True, exist_ok=True)
    options = dict(options or {})
    run_id = compute_run_id(
        {
            "scenario_digest": zonedb.store.get_meta(SCENARIO_DIGEST_KEY),
            "shards": shards,
            "mine_patterns": mine_patterns,
            "options": options,
        }
    )

    resumed = journal_path.exists()
    if resumed:
        if resume is None:
            raise RunFailed(
                f"{run_dir} already holds a journal; pass resume=<run-id> "
                "(or point at a fresh run directory)"
            )
        journal = RunJournal.open(journal_path)
        if journal.run_id != resume:
            raise RunFailed(
                f"journal belongs to {journal.run_id}, not {resume}"
            )
        if journal.run_id != run_id:
            raise RunFailed(
                f"run inputs changed: journal is {journal.run_id}, these "
                f"inputs fingerprint to {run_id}"
            )
    else:
        if resume is not None:
            raise RunFailed(f"nothing to resume in {run_dir}")
        journal = RunJournal.create(journal_path, run_id)
    if chaos is not None:
        journal.torn_writer = chaos.torn_write
    if journal.last("run-config") is None:
        journal.append(
            "run-config",
            shards=shards,
            mine_patterns=mine_patterns,
            options=options,
            workers=policy.workers,
        )

    tracer = (
        Tracer.open_or_create(run_dir / TRACE_NAME, run_id) if trace else None
    )
    if trace or profile:
        # The snapshot written at run end must cover exactly this run,
        # not whatever the process-global registry accumulated before.
        obs.reset_metrics()
    if profile:
        profiling.enable()
    try:
        with obs.observing(tracer):
            return _execute_supervised(
                zonedb=zonedb,
                whois=whois,
                journal=journal,
                run_dir=run_dir,
                journal_path=journal_path,
                checkpoint_dir=checkpoint_dir,
                run_id=run_id,
                shards=shards,
                mine_patterns=mine_patterns,
                policy=policy,
                chaos=chaos,
                dataset_path=dataset_path,
                whois_path=whois_path,
                resumed=resumed,
                tracer=tracer,
            )
    finally:
        if profile:
            profiling.disable()
        if tracer is not None:
            tracer.close()


def _execute_supervised(
    *,
    zonedb: "ZoneDatabase",
    whois: "WhoisArchive",
    journal: RunJournal,
    run_dir: Path,
    journal_path: Path,
    checkpoint_dir: Path,
    run_id: str,
    shards: int,
    mine_patterns: bool,
    policy: SupervisorPolicy,
    chaos: "ChaosMonkey | None",
    dataset_path: str | Path | None,
    whois_path: str | Path | None,
    resumed: bool,
    tracer: Tracer | None,
) -> SupervisedResult:
    """The journal-driven execution body of :func:`run_supervised_detection`.

    Runs with the caller's tracer (possibly None) installed as the
    active one; every span and event below no-ops when tracing is off.
    The outermost ``run`` span closes only when the run completes, so a
    kill anywhere inside leaves a start-without-end — the same shape the
    journal's crash windows have.
    """
    with obs.span("run", shards=shards) as run_span:
        complete_record = journal.run_complete
        if complete_record is not None:
            replayed = _load_completed_result(run_dir, complete_record.payload)
            if replayed is not None:
                run_span.set(
                    result_digest=str(complete_record.payload["result_digest"])
                )
                if tracer is not None:
                    _write_metrics_snapshot(run_dir)
                return SupervisedResult(
                    run_id=run_id,
                    result=replayed,
                    result_digest=str(
                        complete_record.payload["result_digest"]
                    ),
                    run_dir=run_dir,
                    journal_path=journal_path,
                    resumed=True,
                )

        pipeline = DetectionPipeline(
            zonedb, whois, mine_patterns=mine_patterns, shards=shards
        )
        done = _verified_completed_shards(
            journal, pipeline, checkpoint_dir, shards
        )
        todo = [index for index in range(shards) if index not in done]
        supervisor = RunSupervisor(policy)
        outcomes: dict[int, ShardOutcome] = {}

        def on_complete(index: int) -> None:
            shard = ShardSpec(index, shards)
            path = pipeline.shard_checkpoint_path(checkpoint_dir, shard)
            state = load_pipeline_state(path.read_bytes())
            _boundary(chaos, "supervisor", f"shard-complete:{index}")
            journal.append(
                "shard-complete",
                shard=index,
                state_digest=state_digest(state),
                checkpoint_sha256=file_sha256(path),
            )
            obs.counter("runner.shards_completed").inc()

        if todo:
            if policy.workers == 0:

                def execute(index: int) -> None:
                    shard = ShardSpec(index, shards)
                    path = pipeline.shard_checkpoint_path(
                        checkpoint_dir, shard
                    )
                    with obs.span(f"shard-{index}", shard=index) as shard_span:
                        state = _load_partial_state(
                            journal, pipeline, shard, path
                        )
                        _boundary(chaos, "supervisor", f"shard-start:{index}")
                        journal.append(
                            "shard-start",
                            shard=index,
                            resumed_stages=sorted(state["done"]),
                        )

                        def after_stage(stage: str, st: dict[str, Any]) -> None:
                            _boundary(chaos, "worker", f"shard-{index}:{stage}")
                            atomic_write_bytes(path, dump_pipeline_state(st))
                            _boundary(
                                chaos,
                                "supervisor",
                                f"stage-complete:{index}:{stage}",
                            )
                            journal.append(
                                "stage-complete",
                                shard=index,
                                stage=stage,
                                state_digest=state_digest(st),
                                checkpoint_sha256=file_sha256(path),
                            )

                        pipeline.run_shard_stages(
                            shard, state, after_stage=after_stage
                        )
                        shard_span.set(stages=sorted(state["done"]))

                outcomes = supervisor.run_inline(
                    todo, execute, on_complete=on_complete
                )
            else:
                if dataset_path is None:
                    raise RunFailed(
                        "process-pool execution needs dataset_path so workers "
                        "can reopen the dataset"
                    )
                chaos_seed = chaos.config.seed if chaos is not None else None
                kill_rate = (
                    chaos.config.kill_worker_rate if chaos is not None else 0.0
                )

                def spawn(index: int, attempt: int, heartbeats: Any) -> Any:
                    import multiprocessing

                    journal.append("shard-start", shard=index, attempt=attempt)
                    obs.trace_event(
                        "supervisor.spawn", shard=index, attempt=attempt
                    )
                    process = multiprocessing.get_context().Process(
                        target=_shard_worker,
                        args=(
                            index,
                            shards,
                            str(dataset_path),
                            str(whois_path) if whois_path else None,
                            str(checkpoint_dir),
                            mine_patterns,
                            heartbeats,
                            chaos_seed if attempt == 1 else None,
                            kill_rate,
                        ),
                    )
                    process.start()
                    return process

                outcomes = supervisor.run_processes(
                    todo, spawn, on_complete=on_complete
                )

        _boundary(chaos, "supervisor", "merge-start")
        journal.append("merge-start", shards=shards)
        with obs.span("merge", shards=shards):
            states = [
                load_pipeline_state(
                    pipeline.shard_checkpoint_path(
                        checkpoint_dir, ShardSpec(index, shards)
                    ).read_bytes()
                )
                for index in range(shards)
            ]
            result = pipeline.merge_shard_states(states)
        data = pickle.dumps(result)
        atomic_write_bytes(run_dir / RESULT_NAME, data)
        manifest = _write_result_manifest(run_dir, run_id, data, result)
        _boundary(chaos, "supervisor", "run-complete")
        journal.append(
            "run-complete",
            run_id=run_id,
            result_sha256=manifest["result_sha256"],
            result_digest=manifest["result_digest"],
        )
        run_span.set(result_digest=str(manifest["result_digest"]))
        if tracer is not None:
            _write_metrics_snapshot(run_dir)
        return SupervisedResult(
            run_id=run_id,
            result=result,
            result_digest=str(manifest["result_digest"]),
            run_dir=run_dir,
            journal_path=journal_path,
            resumed=resumed,
            outcomes=outcomes,
        )


# -- the incremental run -----------------------------------------------------


@dataclass
class IncrementalRunResult:
    """What an incremental run produced, plus how far it advanced."""

    run_id: str
    result: PipelineResult
    result_digest: str
    run_dir: Path
    journal_path: Path
    #: The engine watermark after draining (last folded batch day).
    watermark: int | None
    #: Day batches folded by *this* invocation (0 when already current).
    days_advanced: int = 0
    #: Delta events applied by this invocation.
    deltas_applied: int = 0
    resumed: bool = False
    #: The watermark adopted from the durable checkpoint on resume.
    restored_watermark: int | None = None


def _note_engine_reset(reason: str) -> None:
    """Mirror a journaled engine-reset into metrics and the trace."""
    obs.counter("runner.engine_resets").inc()
    obs.trace_event("runner.engine-reset", reason=reason)


def _restore_engine(
    journal: RunJournal,
    engine: IncrementalDetectionEngine,
    zonedb: "ZoneDatabase",
    path: Path,
) -> int | None:
    """Adopt the durable engine checkpoint, reconciled with the journal.

    The checkpoint is written before its ``day-advanced`` record, so it
    is the source of truth and the journal is cross-checked against it:

    * checkpoint ahead of the journal (crash in the append window) —
      journal the day the checkpoint proves folded (``reconciled``);
    * checkpoint behind the journal, unreadable, or missing while the
      journal claims days, or hashing differently from what the journal
      recorded for the same day — the durable artifact is gone or
      lying; quarantine it, journal an ``engine-reset``, and refold the
      whole stream (advancing is deterministic, so redoing is safe).

    Returns the restored watermark (None when starting from scratch).
    The engine is only mutated once the checkpoint has fully verified,
    so every reset path leaves it fresh.
    """
    reset_after = -1
    for record in journal.events("engine-reset"):
        reset_after = record.seq
    journaled_day: int | None = None
    journaled_sha: str | None = None
    for record in journal.events("day-advanced"):
        if record.seq > reset_after:
            journaled_day = int(record.payload["day"])
            journaled_sha = record.payload.get("checkpoint_sha256")
    if not path.exists():
        if journaled_day is not None:
            journal.append("engine-reset", reason="checkpoint-missing")
            _note_engine_reset("checkpoint-missing")
        return None
    try:
        data = path.read_bytes()
        watermark = load_engine_state(data)["watermarks"].get(ENGINE_WATERMARK)
    except Exception:
        quarantine(path)
        journal.append("engine-reset", reason="checkpoint-unreadable")
        _note_engine_reset("checkpoint-unreadable")
        return None
    if journaled_day is not None:
        if watermark is None or watermark < journaled_day:
            quarantine(path)
            journal.append("engine-reset", reason="checkpoint-behind-journal")
            _note_engine_reset("checkpoint-behind-journal")
            return None
        if watermark == journaled_day and file_sha256(path) != journaled_sha:
            quarantine(path)
            journal.append("engine-reset", reason="checkpoint-mismatch")
            _note_engine_reset("checkpoint-mismatch")
            return None
    elif watermark is None:
        return None
    engine.restore(zonedb, data)
    if journaled_day is None or watermark > journaled_day:
        journal.append(
            "day-advanced",
            day=watermark,
            checkpoint_sha256=file_sha256(path),
            reconciled=True,
        )
    return watermark


def run_incremental_detection(
    zonedb: "ZoneDatabase",
    whois: "WhoisArchive",
    *,
    run_dir: str | Path,
    until: int | None = None,
    backend: str = "memory",
    mine_patterns: bool = True,
    options: dict[str, Any] | None = None,
    chaos: "ChaosMonkey | None" = None,
    resume: str | None = None,
    consumer: str | None = None,
    trace: bool = False,
    profile: bool = False,
) -> IncrementalRunResult:
    """Advance an incremental detection run to the end of the delta stream.

    Instead of re-running the batch pipeline, an
    :class:`~repro.detection.incremental.IncrementalDetectionEngine`
    folds every recorded day batch past its watermark into standing
    state, journaled per day::

        fold day  →  atomic engine checkpoint  →  journal day-advanced

    so a crash anywhere resumes at the last durable day, never earlier
    (and never refolds a day twice). The run directory holds one
    engine checkpoint (``checkpoints/engine-state.pkl``) that always
    describes the journal's newest ``day-advanced`` record — the same
    checkpoint-ahead reconciliation the batch runner uses.

    Unlike a batch run, an incremental run is durable *across*
    invocations: call again (with ``resume=<run-id>``) after the source
    dataset grows and exactly the new days are folded. ``until`` caps
    the horizon without entering the run fingerprint, so one standing
    run can advance day by day. With ``consumer`` set, the source
    store's per-consumer watermark is committed after each durable day.

    The produced result is bit-identical (same result digest) to a
    fresh batch run over the same history — that invariant is what the
    ``incremental-equivalence`` CI job asserts on both backends.
    """
    run_dir = Path(run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)
    journal_path = run_dir / JOURNAL_NAME
    checkpoint_dir = run_dir / CHECKPOINT_DIR_NAME
    checkpoint_dir.mkdir(parents=True, exist_ok=True)
    checkpoint_path = checkpoint_dir / ENGINE_CHECKPOINT_NAME
    options = dict(options or {})
    run_id = compute_run_id(
        {
            "scenario_digest": zonedb.store.get_meta(SCENARIO_DIGEST_KEY),
            "mode": "incremental",
            "backend": backend,
            "mine_patterns": mine_patterns,
            "options": options,
        }
    )

    resumed = journal_path.exists()
    if resumed:
        if resume is None:
            raise RunFailed(
                f"{run_dir} already holds a journal; pass resume=<run-id> "
                "(or point at a fresh run directory)"
            )
        journal = RunJournal.open(journal_path)
        if journal.run_id != resume:
            raise RunFailed(
                f"journal belongs to {journal.run_id}, not {resume}"
            )
        if journal.run_id != run_id:
            raise RunFailed(
                f"run inputs changed: journal is {journal.run_id}, these "
                f"inputs fingerprint to {run_id}"
            )
    else:
        if resume is not None:
            raise RunFailed(f"nothing to resume in {run_dir}")
        journal = RunJournal.create(journal_path, run_id)
    if chaos is not None:
        journal.torn_writer = chaos.torn_write
    if journal.last("run-config") is None:
        journal.append(
            "run-config",
            mode="incremental",
            backend=backend,
            mine_patterns=mine_patterns,
            options=options,
        )

    tracer = (
        Tracer.open_or_create(run_dir / TRACE_NAME, run_id) if trace else None
    )
    if trace or profile:
        obs.reset_metrics()
    if profile:
        profiling.enable()
    try:
        with obs.observing(tracer):
            return _execute_incremental(
                zonedb=zonedb,
                whois=whois,
                journal=journal,
                run_dir=run_dir,
                journal_path=journal_path,
                checkpoint_path=checkpoint_path,
                run_id=run_id,
                until=until,
                backend=backend,
                mine_patterns=mine_patterns,
                chaos=chaos,
                consumer=consumer,
                resumed=resumed,
                tracer=tracer,
            )
    finally:
        if profile:
            profiling.disable()
        if tracer is not None:
            tracer.close()


def _execute_incremental(
    *,
    zonedb: "ZoneDatabase",
    whois: "WhoisArchive",
    journal: RunJournal,
    run_dir: Path,
    journal_path: Path,
    checkpoint_path: Path,
    run_id: str,
    until: int | None,
    backend: str,
    mine_patterns: bool,
    chaos: "ChaosMonkey | None",
    consumer: str | None,
    resumed: bool,
    tracer: Tracer | None,
) -> IncrementalRunResult:
    """The journal-driven drain loop of :func:`run_incremental_detection`."""
    with obs.span("run", mode="incremental") as run_span:
        store_path: Path | None = None
        if backend == "sqlite":
            # The private store is rebuilt by deterministic replay; only
            # the engine-state checkpoint is a durable artifact. A stale
            # store from an earlier invocation must not be replayed into.
            store_path = run_dir / ENGINE_STORE_NAME
            for leftover in (
                store_path,
                store_path.with_name(store_path.name + "-wal"),
                store_path.with_name(store_path.name + "-shm"),
            ):
                leftover.unlink(missing_ok=True)
        engine = IncrementalDetectionEngine(
            whois,
            backend=backend,
            store_path=store_path,
            mine_patterns=mine_patterns,
        )
        restored = (
            _restore_engine(journal, engine, zonedb, checkpoint_path)
            if resumed
            else None
        )
        days = 0
        deltas = 0
        # The source-side watermark is shared by consumer *name*, so a
        # fresh run directory refolding already-consumed days must not
        # drag it backwards — only ever advance it.
        source_mark = (
            zonedb.watermark(consumer) if consumer is not None else None
        )
        view = DeltaView(zonedb, since=engine.watermark, until=until)
        for batch_day, events in view.batches():
            applied = engine.advance(batch_day, events)
            _boundary(chaos, "worker", f"day:{batch_day}")
            atomic_write_bytes(checkpoint_path, dump_engine_state(engine))
            _boundary(chaos, "supervisor", f"day-advanced:{batch_day}")
            journal.append(
                "day-advanced",
                day=batch_day,
                deltas_applied=applied,
                checkpoint_sha256=file_sha256(checkpoint_path),
            )
            if consumer is not None and (
                source_mark is None or batch_day > source_mark
            ):
                zonedb.commit_watermark(consumer, batch_day)
                source_mark = batch_day
            days += 1
            deltas += applied
        if days == 0:
            complete = journal.run_complete
            if (
                complete is not None
                and complete.payload.get("watermark") == engine.watermark
            ):
                replayed = _load_completed_result(run_dir, complete.payload)
                if replayed is not None:
                    digest = str(complete.payload["result_digest"])
                    run_span.set(result_digest=digest, days=0)
                    if tracer is not None:
                        _write_metrics_snapshot(run_dir)
                    return IncrementalRunResult(
                        run_id=run_id,
                        result=replayed,
                        result_digest=digest,
                        run_dir=run_dir,
                        journal_path=journal_path,
                        watermark=engine.watermark,
                        resumed=True,
                        restored_watermark=restored,
                    )
        result = engine.result()
        data = pickle.dumps(result)
        atomic_write_bytes(run_dir / RESULT_NAME, data)
        manifest = _write_result_manifest(run_dir, run_id, data, result)
        _boundary(chaos, "supervisor", "run-complete")
        journal.append(
            "run-complete",
            run_id=run_id,
            watermark=engine.watermark,
            days_advanced=days,
            result_sha256=manifest["result_sha256"],
            result_digest=manifest["result_digest"],
        )
        run_span.set(
            result_digest=str(manifest["result_digest"]), days=days
        )
        if tracer is not None:
            _write_metrics_snapshot(run_dir)
        return IncrementalRunResult(
            run_id=run_id,
            result=result,
            result_digest=str(manifest["result_digest"]),
            run_dir=run_dir,
            journal_path=journal_path,
            watermark=engine.watermark,
            days_advanced=days,
            deltas_applied=deltas,
            resumed=resumed,
            restored_watermark=restored,
        )
