"""Authoritative nameserver behaviours.

A behaviour decides how the server listening behind a nameserver host
name reacts to a query: answer authoritatively, stay silent (the typical
state of a sacrificial name — §3.1's unresolvability property), or
answer only for selected sources (the ethics control of the paper's
§6.1 experiment: respond if and only if the query originates from the
researchers' own /24, during the test window).

Every behaviour records the queries it receives; the query log is what
"we observed incoming queries for the domains" (§6.1) maps onto.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field

from repro.dnscore.names import Name
from repro.dnscore.records import RRType


class TransientServerFailure(Exception):
    """A query failed for a reason that may not recur.

    Raised by behaviours standing in for flaky-but-alive servers:
    ``kind`` is ``"timeout"``, ``"servfail"``, or ``"slow"``. A slow
    failure carries the answer the server *would* have produced plus its
    latency; the resolver accepts it when the latency fits the current
    attempt's timeout budget. Stock behaviours never raise this, so
    resolvers without fault injection never see it.
    """

    def __init__(
        self,
        kind: str,
        *,
        latency_ms: int = 0,
        answer: list[str] | None = None,
    ) -> None:
        super().__init__(kind)
        self.kind = kind
        self.latency_ms = latency_ms
        self.answer = answer


@dataclass(frozen=True, slots=True)
class QueryRecord:
    """One query received by a server."""

    day: int
    qname: str
    qtype: RRType
    source_ip: str


@dataclass
class NameserverBehavior:
    """Base behaviour: never answers, but logs every query."""

    query_log: list[QueryRecord] = field(default_factory=list)

    def handle(
        self, day: int, qname: str, qtype: RRType, source_ip: str
    ) -> list[str] | None:
        """Process one query; returns rdata list or None for no response."""
        self.query_log.append(QueryRecord(day, Name(qname).text, qtype, source_ip))
        return self.answer(day, Name(qname).text, qtype, source_ip)

    def answer(
        self, day: int, qname: str, qtype: RRType, source_ip: str
    ) -> list[str] | None:
        """Behaviour-specific answer; None means no response."""
        return None

    def queries_for(self, qname: str) -> list[QueryRecord]:
        """Logged queries for one name."""
        text = Name(qname).text
        return [q for q in self.query_log if q.qname == text]

    def purge_logs(self) -> int:
        """Delete all logged queries (the §8 ethics requirement).

        Returns how many records were destroyed.
        """
        count = len(self.query_log)
        self.query_log.clear()
        return count


@dataclass
class SilentBehavior(NameserverBehavior):
    """Never responds — a freshly created sacrificial name."""


@dataclass
class AnsweringBehavior(NameserverBehavior):
    """Answers authoritatively from a static record table.

    ``records`` maps (owner name, type) to rdata lists. Unknown names get
    no response (None) rather than NXDOMAIN, which is how parked/lame
    servers typically fail.
    """

    records: dict[tuple[str, RRType], list[str]] = field(default_factory=dict)

    def add_record(self, owner: str, rtype: RRType, rdata: str) -> None:
        """Install one record."""
        key = (Name(owner).text, rtype)
        self.records.setdefault(key, []).append(rdata)

    def answer(
        self, day: int, qname: str, qtype: RRType, source_ip: str
    ) -> list[str] | None:
        return self.records.get((qname, qtype))


@dataclass
class ParkingBehavior(NameserverBehavior):
    """Answers *every* name with the parking farm's address.

    The dominant monetization the paper observed (§6.2): hijacked
    domains resolve to a parking page with topic links. One address per
    operator; every hijacked domain under the operator's nameservers
    lands there.
    """

    parking_address: str = "203.0.113.10"

    def answer(
        self, day: int, qname: str, qtype: RRType, source_ip: str
    ) -> list[str] | None:
        if qtype is RRType.A:
            return [self.parking_address]
        return None


@dataclass
class RedirectBehavior(NameserverBehavior):
    """Answers every name with the operator's own site address.

    The phonesear.ch model (§6.2): hijacked domains redirect to the
    operator's destination site, feeding an SEO strategy — so every
    victim resolves to exactly the address the operator's apex resolves
    to.
    """

    destination_address: str = "203.0.113.80"

    def answer(
        self, day: int, qname: str, qtype: RRType, source_ip: str
    ) -> list[str] | None:
        if qtype is RRType.A:
            return [self.destination_address]
        return None


@dataclass
class ScopedBehavior(NameserverBehavior):
    """Answers only for sources inside a network, during a window.

    Wraps an inner behaviour; queries from outside the scope (or outside
    the day window) are logged but receive no response — exactly the
    §6.1 control: "return an A record if and only if the request
    originated from our client IP address during a short testing
    window".
    """

    inner: AnsweringBehavior = field(default_factory=AnsweringBehavior)
    allowed_network: str = "198.51.100.0/24"
    window_start: int = 0
    window_end: int | None = None

    def answer(
        self, day: int, qname: str, qtype: RRType, source_ip: str
    ) -> list[str] | None:
        if day < self.window_start:
            return None
        if self.window_end is not None and day >= self.window_end:
            return None
        network = ipaddress.ip_network(self.allowed_network)
        if ipaddress.ip_address(source_ip) not in network:
            return None
        return self.inner.answer(day, qname, qtype, source_ip)
