"""Iterative DNS resolution over the simulated ecosystem.

Models enough of RFC 1034/1035 resolution semantics to demonstrate the
paper's hijack mechanics end-to-end: root → TLD referral → nameserver
address resolution (glue or recursion) → authoritative query, with
nameserver *behaviours* (answering, silent, scoped) standing in for real
server operation. Used by the §6.1 controlled-experiment reproduction
and by resolution-level tests of lame delegation.
"""

from repro.resolver.server import (
    AnsweringBehavior,
    NameserverBehavior,
    QueryRecord,
    ScopedBehavior,
    SilentBehavior,
    TransientServerFailure,
)
from repro.resolver.resolver import (
    IterativeResolver,
    Resolution,
    ResolutionStatus,
    WireExchange,
)

__all__ = [
    "AnsweringBehavior",
    "NameserverBehavior",
    "QueryRecord",
    "ScopedBehavior",
    "SilentBehavior",
    "TransientServerFailure",
    "IterativeResolver",
    "Resolution",
    "ResolutionStatus",
    "WireExchange",
]
