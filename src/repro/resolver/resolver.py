"""The iterative resolver: root → TLD → authoritative, over zone history.

Resolution consults the longitudinal zone database for delegations and
glue *as of a given day*, then queries whatever behaviour is attached to
each nameserver host name. This reproduces the operational consequences
the paper cares about:

* a domain delegated to a sacrificial name with no attached server is
  **lame** — referral exists, nobody answers;
* once a hijacker registers the sacrificial domain and attaches a
  server, the same query path silently lands on hijacker infrastructure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.dnscore.names import Name
from repro.dnscore.psl import PublicSuffixList, default_psl
from repro.dnscore.records import ResourceRecord, RRType
from repro.dnscore.wire import Message, Rcode, decode_message, encode_message
from repro.faults.config import RetryPolicy
from repro.obs import runtime as obs
from repro.resolver.server import NameserverBehavior, TransientServerFailure
from repro.zonedb.database import ZoneDatabase

MAX_DEPTH = 8


@dataclass(frozen=True, slots=True)
class WireExchange:
    """One captured query/response pair in RFC 1035 wire format.

    Retries are captured as separate exchanges: ``attempt`` counts from
    0 per (server, query) round, ``error`` carries the transient-failure
    kind when no usable response came back, and ``latency_ms`` the
    simulated answer latency when one did.
    """

    server: str
    query: bytes
    response: bytes | None
    attempt: int = 0
    error: str | None = None
    latency_ms: int = 0

    @property
    def query_size(self) -> int:
        """Bytes on the wire for the query."""
        return len(self.query)

    @property
    def response_size(self) -> int:
        """Bytes on the wire for the response (0 if none came back)."""
        return len(self.response) if self.response else 0


class ResolutionStatus(str, Enum):
    """Outcome classes for one resolution attempt."""

    ANSWERED = "answered"
    NXDOMAIN = "nxdomain"      # no delegation in the TLD zone
    LAME = "lame"              # referral exists but no server answered
    UNRESOLVABLE_NS = "unresolvable-ns"  # could not find any NS address
    TRANSIENT = "transient-failure"  # only transient errors: lameness unproven
    ERROR = "error"            # depth/loop protection tripped


@dataclass
class Resolution:
    """The result and trace of one query."""

    qname: str
    qtype: RRType
    status: ResolutionStatus
    answer: list[str] = field(default_factory=list)
    answered_by: str | None = None
    trace: list[str] = field(default_factory=list)
    #: Re-attempts performed under the retry policy.
    retries: int = 0
    #: Transient server failures (timeouts, SERVFAILs, over-budget slow
    #: answers) observed along the way.
    transient_failures: int = 0

    @property
    def ok(self) -> bool:
        """True if an authoritative answer was obtained."""
        return self.status is ResolutionStatus.ANSWERED

    @property
    def degraded(self) -> bool:
        """True if any server exhibited transient failure en route."""
        return self.transient_failures > 0


class IterativeResolver:
    """Resolves names against zone history plus attached behaviours."""

    def __init__(
        self,
        zonedb: ZoneDatabase,
        *,
        psl: PublicSuffixList | None = None,
        capture_wire: bool = False,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self.zonedb = zonedb
        self.psl = psl or default_psl()
        self._servers: dict[str, NameserverBehavior] = {}
        #: When enabled, every simulated server exchange is round-tripped
        #: through the RFC 1035 codec and recorded here.
        self.capture_wire = capture_wire
        self.wire_log: list[WireExchange] = []
        #: Retry-with-backoff model for transient server failures; None
        #: (the default) queries each server exactly once.
        self.retry_policy = retry_policy
        self._next_message_id = 1

    def attach_server(self, ns_host: str, behavior: NameserverBehavior) -> None:
        """Stand up a server behind a nameserver host name."""
        self._servers[Name(ns_host).text] = behavior

    def detach_server(self, ns_host: str) -> None:
        """Take the server down."""
        self._servers.pop(Name(ns_host).text, None)

    def server_for(self, ns_host: str) -> NameserverBehavior | None:
        """The behaviour attached to a host, if any."""
        return self._servers.get(Name(ns_host).text)

    # -- resolution ----------------------------------------------------------

    def resolve(
        self,
        qname: str,
        *,
        day: int,
        qtype: RRType = RRType.A,
        source_ip: str = "203.0.113.1",
        _depth: int = 0,
    ) -> Resolution:
        """Iteratively resolve ``qname`` as of ``day``.

        Top-level resolutions (not recursive NS-address lookups) mirror
        their outcome, retries, and transient failures into the obs
        metrics registry — operational counters, not run content.
        """
        result = self._resolve(
            qname, day=day, qtype=qtype, source_ip=source_ip, _depth=_depth
        )
        if _depth == 0:
            obs.counter(f"resolver.status.{result.status.value}").inc()
            if result.retries:
                obs.counter("resolver.retries").inc(result.retries)
            if result.transient_failures:
                obs.counter("resolver.transient_failures").inc(
                    result.transient_failures
                )
        return result

    def _resolve(
        self,
        qname: str,
        *,
        day: int,
        qtype: RRType = RRType.A,
        source_ip: str = "203.0.113.1",
        _depth: int = 0,
    ) -> Resolution:
        name = Name(qname)
        result = Resolution(qname=name.text, qtype=qtype, status=ResolutionStatus.ERROR)
        if _depth > MAX_DEPTH:
            result.trace.append("depth limit exceeded")
            return result
        registered = self.psl.registered_domain(name)
        if registered is None:
            result.status = ResolutionStatus.NXDOMAIN
            result.trace.append(f"{name.text}: no registrable domain")
            return result
        ns_set = self.zonedb.nameservers_of(registered, day)
        result.trace.append(
            f"TLD referral for {registered}: {sorted(ns_set) or 'none'}"
        )
        if not ns_set:
            result.status = ResolutionStatus.NXDOMAIN
            return result
        found_address = False
        saw_definitive_silence = False
        for ns in sorted(ns_set):
            address = self._nameserver_address(
                ns, day, result.trace, _depth, source_ip
            )
            if address is None:
                continue
            found_address = True
            behavior = self._servers.get(ns)
            if behavior is None:
                result.trace.append(f"{ns} ({address}): no server listening")
                saw_definitive_silence = True
                continue
            answer, exhausted = self._query_server(
                ns, behavior, day, name.text, qtype, source_ip, result
            )
            if answer is not None:
                result.status = ResolutionStatus.ANSWERED
                result.answer = list(answer)
                result.answered_by = ns
                result.trace.append(f"{ns} answered: {answer}")
                return result
            if exhausted:
                result.trace.append(f"{ns}: transient failures exhausted retries")
            else:
                result.trace.append(f"{ns}: no response")
                saw_definitive_silence = True
        if not found_address:
            result.status = ResolutionStatus.UNRESOLVABLE_NS
        elif result.transient_failures and not saw_definitive_silence:
            # Every reachable server failed transiently: the delegation
            # may be perfectly healthy — lameness is not proven.
            result.status = ResolutionStatus.TRANSIENT
        else:
            result.status = ResolutionStatus.LAME
        return result

    def _query_server(
        self,
        ns: str,
        behavior: NameserverBehavior,
        day: int,
        qname: str,
        qtype: RRType,
        source_ip: str,
        result: Resolution,
    ) -> tuple[list[str] | None, bool]:
        """Query one server, retrying transient failures per the policy.

        Returns ``(answer, exhausted)`` where ``exhausted`` is True when
        the server produced nothing but transient failures — i.e. the
        lack of an answer proves nothing about lameness.
        """
        policy = self.retry_policy
        attempts = policy.attempts if policy is not None else 1
        for attempt in range(attempts):
            try:
                answer = behavior.handle(day, qname, qtype, source_ip)
            except TransientServerFailure as failure:
                budget = policy.timeout_for(attempt) if policy else 0
                if (
                    failure.kind == "slow"
                    and failure.answer is not None
                    and failure.latency_ms <= budget
                ):
                    # Slow but inside this attempt's budget: a usable answer.
                    if self.capture_wire:
                        self._capture(
                            ns, qname, qtype, failure.answer,
                            attempt=attempt, latency_ms=failure.latency_ms,
                        )
                    return failure.answer, False
                result.transient_failures += 1
                if self.capture_wire:
                    self._capture(
                        ns, qname, qtype, None,
                        attempt=attempt, error=failure.kind,
                        latency_ms=failure.latency_ms,
                    )
                if attempt + 1 < attempts:
                    result.retries += 1
                    continue
                return None, True
            else:
                if self.capture_wire:
                    self._capture(ns, qname, qtype, answer, attempt=attempt)
                return answer, False
        return None, True  # pragma: no cover - loop always returns

    def _capture(
        self,
        server: str,
        qname: str,
        qtype: RRType,
        answer: list[str] | None,
        *,
        attempt: int = 0,
        error: str | None = None,
        latency_ms: int = 0,
    ) -> None:
        """Round-trip the exchange through the wire codec and log it."""
        query = Message.query(qname, qtype, message_id=self._next_message_id)
        self._next_message_id = (self._next_message_id + 1) % 65536 or 1
        query_wire = encode_message(query)
        assert decode_message(query_wire).questions == query.questions
        response_wire: bytes | None = None
        if answer is not None:
            response = query.respond(
                [ResourceRecord(qname, qtype, rdata) for rdata in answer],
                rcode=Rcode.NOERROR,
            )
            response_wire = encode_message(response)
            assert decode_message(response_wire).answers == response.answers
        self.wire_log.append(
            WireExchange(
                server=server, query=query_wire, response=response_wire,
                attempt=attempt, error=error, latency_ms=latency_ms,
            )
        )

    def _nameserver_address(
        self, ns: str, day: int, trace: list[str], depth: int, source_ip: str
    ) -> str | None:
        """Find an address for a nameserver host (glue or recursion)."""
        if self.zonedb.glue_present(ns, day):
            trace.append(f"{ns}: glue address available")
            return f"glue:{ns}"
        registered = self.psl.registered_domain(ns)
        if registered is not None and self.zonedb.domain_present(registered, day):
            # The nameserver's own domain is delegated: resolving the host
            # requires recursing through that delegation.
            sub = self.resolve(
                ns, day=day, qtype=RRType.A, source_ip=source_ip, _depth=depth + 1
            )
            if sub.ok:
                trace.append(f"{ns}: resolved via {sub.answered_by}")
                return sub.answer[0]
            trace.append(f"{ns}: address resolution failed ({sub.status.value})")
            return None
        if not self.zonedb.covers(ns):
            # Outside the simulated namespace: reachable iff someone runs
            # a server there (hijacker infrastructure under foreign TLDs).
            if ns in self._servers:
                trace.append(f"{ns}: external host with live server")
                return f"external:{ns}"
            trace.append(f"{ns}: external host, unreachable")
            return None
        trace.append(f"{ns}: no glue and no delegation for its domain")
        return None

    def is_lame(self, domain: str, *, day: int) -> bool:
        """True if the domain is delegated but nobody answers for it."""
        result = self.resolve(domain, day=day)
        return result.status in (
            ResolutionStatus.LAME,
            ResolutionStatus.UNRESOLVABLE_NS,
        )
