"""Anycast nameserver behaviour (the AS112 model of §7.3).

GoDaddy's post-remediation idiom renames hosts under
``empty.as112.arpa``. AS112 is an *anycast* sink: many independently
operated nodes announce the same prefix, and each resolver reaches
whichever node is topologically closest. The paper's footnote 15 warns
that this introduces a new risk: an attacker who controls (or stands
up) one AS112 node can answer the delegated queries *in its catchment*
— a regional hijack of every domain renamed under the label — unless
the zone is DNSSEC-signed.

:class:`AnycastBehavior` models that: queries route to a node by the
source address's catchment, each node has its own behaviour, and an
optional ``signed_zone`` flag models DNSSEC validation downstream
(validating resolvers reject the rogue node's unsigned answers).
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field

from repro.dnscore.records import RRType
from repro.resolver.server import NameserverBehavior


@dataclass
class AnycastNode:
    """One AS112-style anycast instance."""

    name: str
    catchments: tuple[str, ...]
    behavior: NameserverBehavior
    honest: bool = True

    def serves(self, source_ip: str) -> bool:
        """True if ``source_ip`` falls inside this node's catchment."""
        address = ipaddress.ip_address(source_ip)
        return any(
            address in ipaddress.ip_network(catchment)
            for catchment in self.catchments
        )


@dataclass
class AnycastBehavior(NameserverBehavior):
    """Routes each query to the node covering the source address.

    With ``signed_zone`` set, answers from dishonest nodes are discarded
    (a validating resolver rejects them because the rogue node cannot
    produce valid signatures for the empty zone).
    """

    nodes: list[AnycastNode] = field(default_factory=list)
    signed_zone: bool = False

    def add_node(self, node: AnycastNode) -> None:
        """Install one anycast instance."""
        self.nodes.append(node)

    def node_for(self, source_ip: str) -> AnycastNode | None:
        """The instance a query from ``source_ip`` reaches."""
        for node in self.nodes:
            if node.serves(source_ip):
                return node
        return None

    def answer(
        self, day: int, qname: str, qtype: RRType, source_ip: str
    ) -> list[str] | None:
        node = self.node_for(source_ip)
        if node is None:
            return None
        response = node.behavior.handle(day, qname, qtype, source_ip)
        if response is not None and not node.honest and self.signed_zone:
            return None  # validating resolvers reject the forged answer
        return response
