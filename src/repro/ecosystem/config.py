"""Scenario configuration: the paper-shaped world, parameterized.

The default scenario reproduces the paper's ecosystem at roughly 1:100
scale: the same registrar roster with the same renaming-idiom history
(Tables 1/2/6), hoster-death volumes proportioned to the per-registrar
sacrificial-nameserver counts, client-per-nameserver ratios matching the
per-registrar affected-domain ratios, the hijacker actors of Table 4, the
Namecheap accidental mass deletion, and the September 2020 notification
with its observed remediation behaviours.

Scaling: entity *counts* scale with the ``scale`` parameter; behavioural
parameters (delays, probabilities, thresholds) do not, so distribution
shapes are scale-invariant down to the sizes used in tests.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field, replace

from repro import simtime
from repro.faults.config import FaultConfig
from repro.registrar.idioms import (
    DeletedDropIdiom,
    DropThisHostIdiom,
    Enom123BizIdiom,
    PleaseDropThisHostIdiom,
    RenamingIdiom,
    ReservedLabelIdiom,
    SinkDomainIdiom,
    SldRandomSuffixIdiom,
)


@dataclass(frozen=True)
class RegistrarSpec:
    """Static description of one registrar in the scenario.

    ``hoster_share`` apportions dying hosting-company domains (whose
    deletion triggers renames) among registrars; ``client_share``
    apportions ordinary registrant domains. ``clients_per_hoster`` is the
    mean of the heavy-tailed number of client domains delegating to a
    dying hoster's nameservers — this is what drives the very different
    affected-domains-per-nameserver ratios across registrars in the
    paper's tables.
    """

    ident: str
    display_name: str
    idiom_schedule: tuple[tuple[_dt.date, RenamingIdiom], ...] = ()
    hoster_share: float = 0.0
    client_share: float = 0.0
    clients_per_hoster: float = 5.0
    ns_per_hoster: int = 2
    default_ns_domain: str | None = None
    remediate_on_notification: bool = False
    sink_abandonments: tuple[tuple[_dt.date, str], ...] = ()


@dataclass(frozen=True)
class HijackerSpec:
    """One hijacker actor (paper Table 4).

    ``min_value`` is the minimum number of currently delegated domains a
    sacrificial registered-domain group must have before this actor will
    register it; ``interest`` is the probability of acting on a
    qualifying opportunity; ``speed`` scales the registration delay
    (higher is faster). ``renew_probs`` are per-anniversary renewal
    probabilities (the paper's 1-year/2-year non-renewal cliffs).
    """

    ident: str
    ns_domain: str
    active_from: _dt.date
    active_until: _dt.date
    min_value: int = 4
    interest: float = 0.8
    speed: float = 1.0
    renew_probs: tuple[float, ...] = (0.45, 0.35, 0.25)
    monthly_capacity: int = 50

    def ns_hosts(self) -> tuple[str, str]:
        """The controlling nameserver host names this actor uses."""
        return (f"ns1.{self.ns_domain}", f"ns2.{self.ns_domain}")


@dataclass(frozen=True)
class NamecheapEventSpec:
    """The accidental mass deletion of §4 (scaled)."""

    enabled: bool = True
    day: int = field(default_factory=lambda: simtime.to_day(_dt.date(2016, 7, 12)))
    ns_domain: str = "registrar-servers.com"
    sponsor: str = "enom"
    host_count: int = 12
    client_count: int = 1600
    fixed_within_3_days: float = 0.968
    never_fixed: int = 2


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything needed to build and run one simulated world."""

    seed: int = 2021
    start_day: int = 0
    end_day: int = field(
        default_factory=lambda: simtime.to_day(simtime.EXTENDED_END)
    )
    study_end_day: int = field(
        default_factory=lambda: simtime.to_day(simtime.STUDY_END)
    )
    notification_day: int = field(
        default_factory=lambda: simtime.to_day(simtime.NOTIFICATION_DATE)
    )

    registrars: tuple[RegistrarSpec, ...] = ()
    hijackers: tuple[HijackerSpec, ...] = ()
    namecheap: NamecheapEventSpec = field(default_factory=NamecheapEventSpec)

    #: Total dying-hoster count over the timeline (before hoster_share split).
    hoster_count: int = 1010
    #: Linear decline of hoster-death intensity: the last month's rate is
    #: this fraction of the first month's (drives Figure 3's shape).
    final_rate_fraction: float = 0.18
    #: Background domains on safe providers (never exposed).
    safe_domain_count: int = 2500
    #: Registrant typo nameservers (unresolvable noise, not sacrificial).
    typo_domain_count: int = 450
    #: Registry test nameservers (the EMT- pattern, removed by §3.2.2).
    test_ns_count: int = 290
    #: Fraction of exposed clients that keep a working alternate NS
    #: ("partially hijackable", §5.6).
    partial_exposure_fraction: float = 0.06
    #: Fraction of clients registered in a different EPP repository than
    #: their hoster (these become lame, not sacrificial — property 3).
    cross_repo_client_fraction: float = 0.08
    #: Post-exposure registrant behaviour mixture (fix fast / slow / never).
    fix_fast_fraction: float = 0.15
    fix_slow_fraction: float = 0.33
    #: MarkMonitor-style brand-protection domains among exposed clients.
    brand_client_count: int = 20
    #: The dummyns.com abandonment (sink seized by a hijacker).
    sink_abandon_enabled: bool = True
    #: Observational-plane degradation applied when the scenario is
    #: replayed. The world simulation itself never reads this: faults
    #: act on the world's *outputs*, so the base world is identical
    #: whether or not they are enabled.
    faults: FaultConfig = field(default_factory=FaultConfig)

    def scaled(self, scale: float) -> "ScenarioConfig":
        """A copy with all entity counts multiplied by ``scale``."""
        def s(n: int) -> int:
            return max(1, round(n * scale))

        return replace(
            self,
            hoster_count=s(self.hoster_count),
            safe_domain_count=s(self.safe_domain_count),
            typo_domain_count=s(self.typo_domain_count),
            test_ns_count=s(self.test_ns_count),
            brand_client_count=s(self.brand_client_count),
            namecheap=replace(
                self.namecheap,
                host_count=max(2, round(self.namecheap.host_count * scale)),
                client_count=s(self.namecheap.client_count),
            ),
        )


def _d(year: int, month: int, day: int = 1) -> _dt.date:
    return _dt.date(year, month, day)


def paper_registrars() -> tuple[RegistrarSpec, ...]:
    """The registrar roster with the paper's idiom history.

    Shares are proportioned to the per-registrar sacrificial-nameserver
    counts of Tables 1 and 2 (GoDaddy 115K of ~203K total, Enom 60K,
    Internet.bs 13.7K, ...), and ``clients_per_hoster`` to each
    registrar's affected-domains/nameserver ratio.
    """
    return (
        RegistrarSpec(
            ident="godaddy",
            display_name="GoDaddy",
            idiom_schedule=(
                (_d(2005, 1), PleaseDropThisHostIdiom()),
                (_d(2015, 3), DropThisHostIdiom()),
                (_d(2020, 10, 20), ReservedLabelIdiom()),
            ),
            hoster_share=0.565,
            client_share=0.40,
            clients_per_hoster=5.7,
            default_ns_domain="domaincontrol.com",
            remediate_on_notification=True,
        ),
        RegistrarSpec(
            ident="enom",
            display_name="Enom",
            idiom_schedule=(
                (_d(2005, 1), Enom123BizIdiom()),
                (_d(2012, 6), SldRandomSuffixIdiom(rand_length=7)),
                (_d(2020, 11, 10), SinkDomainIdiom("delete-registration.com")),
            ),
            hoster_share=0.30,
            client_share=0.18,
            clients_per_hoster=5.7,
        ),
        RegistrarSpec(
            ident="internetbs",
            display_name="Internet.bs",
            idiom_schedule=(
                (_d(2005, 1), SinkDomainIdiom("dummyns.com")),
                (_d(2015, 6), DeletedDropIdiom()),
                (_d(2020, 12, 1), SinkDomainIdiom("notaplaceto.be")),
            ),
            hoster_share=0.067,
            client_share=0.04,
            clients_per_hoster=7.0,
            sink_abandonments=((_d(2016, 4, 10), "dummyns.com"),),
        ),
        RegistrarSpec(
            ident="netsol",
            display_name="Network Solutions",
            idiom_schedule=((_d(2005, 1), SinkDomainIdiom("lamedelegation.org")),),
            hoster_share=0.029,
            client_share=0.10,
            clients_per_hoster=38.0,
        ),
        RegistrarSpec(
            ident="tldrs",
            display_name="TLD Registrar Solutions",
            idiom_schedule=((_d(2005, 1), SinkDomainIdiom("nsholdfix.com")),),
            hoster_share=0.0175,
            client_share=0.03,
            clients_per_hoster=1.9,
        ),
        RegistrarSpec(
            ident="gmo",
            display_name="GMO Internet",
            idiom_schedule=((_d(2005, 1), SinkDomainIdiom("delete-host.com")),),
            hoster_share=0.006,
            client_share=0.05,
            clients_per_hoster=67.0,
        ),
        RegistrarSpec(
            ident="xinnet",
            display_name="Xin Net Technology Corp.",
            idiom_schedule=((_d(2005, 1), SinkDomainIdiom("deletedns.com")),),
            hoster_share=0.0027,
            client_share=0.04,
            clients_per_hoster=110.0,
        ),
        RegistrarSpec(
            ident="srsplus",
            display_name="SRSPlus",
            idiom_schedule=(
                (_d(2005, 1), SinkDomainIdiom("lamedelegationservers.com")),
            ),
            hoster_share=0.0022,
            client_share=0.02,
            clients_per_hoster=9.0,
        ),
        RegistrarSpec(
            ident="domainpeople",
            display_name="DomainPeople",
            idiom_schedule=((_d(2005, 1), SldRandomSuffixIdiom(rand_length=5)),),
            hoster_share=0.0032,
            client_share=0.02,
            clients_per_hoster=10.0,
        ),
        RegistrarSpec(
            ident="fabulous",
            display_name="Fabulous.com",
            idiom_schedule=((_d(2005, 1), SldRandomSuffixIdiom(rand_length=6)),),
            hoster_share=0.0017,
            client_share=0.01,
            clients_per_hoster=7.3,
        ),
        RegistrarSpec(
            ident="registercom",
            display_name="Register.com",
            idiom_schedule=((_d(2005, 1), SldRandomSuffixIdiom(rand_length=8)),),
            hoster_share=0.0019,
            client_share=0.01,
            clients_per_hoster=8.0,
        ),
        RegistrarSpec(
            ident="markmonitor",
            display_name="MarkMonitor",
            idiom_schedule=((_d(2005, 1), SinkDomainIdiom("mmon-hold.com")),),
            hoster_share=0.0,
            client_share=0.0,  # brand clients are allocated explicitly
            remediate_on_notification=True,
        ),
        RegistrarSpec(
            ident="namecheap",
            display_name="Namecheap",
            idiom_schedule=((_d(2005, 1), SldRandomSuffixIdiom(rand_length=6)),),
            hoster_share=0.0,
            client_share=0.05,
            default_ns_domain="registrar-servers.com",
        ),
        RegistrarSpec(
            ident="bulkreg",
            display_name="Bulk Registration Inc.",
            idiom_schedule=((_d(2005, 1), SldRandomSuffixIdiom(rand_length=6)),),
            hoster_share=0.0,
            client_share=0.05,
        ),
    )


def paper_hijackers() -> tuple[HijackerSpec, ...]:
    """The hijacker actors of Table 4, plus a small opportunist tail."""
    return (
        HijackerSpec(
            ident="mpower",
            ns_domain="mpower.nl",
            active_from=_d(2011, 6),
            active_until=_d(2020, 9),
            min_value=12,
            interest=0.36,
            speed=1.6,
            renew_probs=(0.55, 0.40, 0.30),
            monthly_capacity=4,
        ),
        HijackerSpec(
            ident="protectdelegation",
            ns_domain="protectdelegation.com",
            active_from=_d(2013, 2),
            active_until=_d(2021, 2),
            min_value=12,
            interest=0.30,
            speed=1.4,
            renew_probs=(0.50, 0.35, 0.25),
            monthly_capacity=3,
        ),
        HijackerSpec(
            ident="yandex-bulk",
            ns_domain="yandex.net",
            active_from=_d(2012, 1),
            active_until=_d(2019, 6),
            min_value=10,
            interest=0.27,
            speed=1.2,
            renew_probs=(0.50, 0.30, 0.20),
            monthly_capacity=3,
        ),
        HijackerSpec(
            ident="phonesearch",
            ns_domain="phonesear.ch",
            active_from=_d(2017, 3),
            active_until=_d(2020, 9),
            min_value=22,
            interest=0.62,
            speed=2.0,
            renew_probs=(0.65, 0.45, 0.35),
            monthly_capacity=2,
        ),
        HijackerSpec(
            ident="dnspanel",
            ns_domain="dnspanel.com",
            active_from=_d(2014, 5),
            active_until=_d(2020, 6),
            min_value=20,
            interest=0.50,
            speed=1.5,
            renew_probs=(0.55, 0.40, 0.30),
            monthly_capacity=2,
        ),
        HijackerSpec(
            ident="opportunist",
            ns_domain="parkingpad.net",
            active_from=_d(2011, 4),
            active_until=_d(2021, 9),
            min_value=1,
            interest=0.015,
            speed=0.5,
            renew_probs=(0.30, 0.20, 0.10),
            monthly_capacity=2,
        ),
    )


def default_scenario(seed: int = 2021) -> ScenarioConfig:
    """The canonical ~1:100-scale paper reproduction scenario."""
    return ScenarioConfig(
        seed=seed,
        registrars=paper_registrars(),
        hijackers=paper_hijackers(),
    )


def small_scenario(seed: int = 2021) -> ScenarioConfig:
    """A quarter-scale world for integration tests and quick demos."""
    return default_scenario(seed).scaled(0.25)


def tiny_scenario(seed: int = 2021) -> ScenarioConfig:
    """A minimal world (~1:10 of default) for fast unit/property tests."""
    return default_scenario(seed).scaled(0.1)
