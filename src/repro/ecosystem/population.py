"""Synthetic population planning: who exists, and what happens when.

Builds the full cast of the simulated world before execution: hosting
companies whose domains will die while other registrants still delegate
to their nameservers (the raw material for sacrificial renames), those
client registrants and their post-exposure behaviour, background domains
on safe nameserver providers, typo-delegation noise, registry test
nameservers, and the Namecheap accident. Everything is sampled from a
single seeded RNG so a scenario is perfectly reproducible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

import datetime as _dt

from repro.ecosystem.config import ScenarioConfig
from repro.epp.expiry import ExpiryPolicy
from repro.simtime import DAYS_PER_YEAR, to_day

#: Days from registration expiry to registry purge (auto-renew grace +
#: redemption + pending delete). The rename — and therefore the exposure —
#: happens at purge, not at expiry.
GRACE_POLICY = ExpiryPolicy()
PURGE_DELAY = (
    GRACE_POLICY.auto_renew_days
    + GRACE_POLICY.redemption_days
    + GRACE_POLICY.pending_delete_days
)

# TLD mixes. Hosters avoid .biz/.us (renaming into .biz from the Neustar
# repository would be an internal rename) and restricted TLDs.
_HOSTER_TLDS = (("com", 0.66), ("net", 0.16), ("org", 0.13), ("info", 0.05))
_REPO_TLDS = {
    "sim-verisign": (("com", 0.80), ("net", 0.14), ("edu", 0.04), ("gov", 0.02)),
    "sim-afilias": (("org", 0.75), ("info", 0.25)),
    "sim-neustar": (("biz", 0.70), ("us", 0.30)),
}
_TLD_REPO = {
    "com": "sim-verisign", "net": "sim-verisign",
    "edu": "sim-verisign", "gov": "sim-verisign",
    "org": "sim-afilias", "info": "sim-afilias",
    "biz": "sim-neustar", "us": "sim-neustar",
}

_SYLLABLES = (
    "ba be bi bo bu ca ce ci co cu da de di do du fa fe fi fo fu ga ge gi go "
    "gu ha he hi ho hu ja jo ka ke ki ko ku la le li lo lu ma me mi mo mu na "
    "ne ni no nu pa pe pi po pu ra re ri ro ru sa se si so su ta te ti to tu "
    "va ve vi vo vu wa we wi wo za ze zi zo zu"
).split()

_SUFFIXES = (
    "host", "web", "net", "dns", "serve", "media", "tech", "data", "cloud",
    "link", "site", "zone", "works", "labs", "group", "line", "press", "mart",
    "trade", "shop", "farm", "care", "law", "med", "city", "county", "church",
)

SAFE_PROVIDERS = (
    ("domaincontrol.com", "godaddy"),
    ("worldnic.net", "netsol"),
    ("name-services.com", "enom"),
    ("cloudfloordns.net", "bulkreg"),
)


class NameForge:
    """Deterministic unique label generator."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._used: set[str] = set()

    def label(self, *, syllables: int = 3, suffix_prob: float = 0.4) -> str:
        """A fresh pronounceable label, unique across this forge."""
        for _ in range(100):
            parts = [self._rng.choice(_SYLLABLES) for _ in range(syllables)]
            name = "".join(parts)
            if self._rng.random() < suffix_prob:
                name += self._rng.choice(_SUFFIXES)
            if name not in self._used:
                self._used.add(name)
                return name
        # Fall back to an explicit counter; practically unreachable.
        name = f"gen{len(self._used)}"
        self._used.add(name)
        return name


def _weighted(rng: random.Random, table: tuple[tuple[str, float], ...]) -> str:
    roll = rng.random() * sum(weight for _, weight in table)
    acc = 0.0
    for value, weight in table:
        acc += weight
        if roll < acc:
            return value
    return table[-1][0]


# -- planned entities -----------------------------------------------------


@dataclass
class ClientPlan:
    """One registrant domain that delegates to a dying hoster."""

    domain: str
    registrar: str
    birth_day: int
    ns_refs: tuple[str, ...]
    partial: bool = False
    cross_repo: bool = False
    brand: bool = False
    fix_day: int | None = None
    expiry_day: int | None = None
    #: Inter-registrar transfer (day, gaining registrar), if any.
    transfer_day: int | None = None
    transfer_to: str | None = None


@dataclass
class HosterPlan:
    """One hosting company whose domain dies with linked nameservers."""

    domain: str
    registrar: str
    birth_day: int
    death_day: int
    ns_hosts: tuple[str, ...]
    clients: list[ClientPlan] = field(default_factory=list)


@dataclass
class SafeDomainPlan:
    """Background domain on an always-working provider."""

    domain: str
    registrar: str
    birth_day: int
    ns_refs: tuple[str, ...]


@dataclass
class TypoDomainPlan:
    """A domain whose owner mistyped a nameserver at registration."""

    domain: str
    registrar: str
    birth_day: int
    typo_ns: tuple[str, ...]
    good_ns: tuple[str, ...]
    fix_day: int | None


@dataclass
class TestNsPlan:
    """A registry test delegation (the EMT- pattern of §3.2.2)."""

    domain: str
    registry_operator: str
    ns_names: tuple[str, ...]
    start_day: int
    end_day: int


@dataclass
class NamecheapPlan:
    """The scaled accidental mass-deletion event of §4."""

    day: int
    ns_domain: str
    sponsor: str
    host_names: tuple[str, ...]
    clients: list[ClientPlan] = field(default_factory=list)


@dataclass
class Plan:
    """The complete cast and schedule for one world."""

    hosters: list[HosterPlan] = field(default_factory=list)
    safe_domains: list[SafeDomainPlan] = field(default_factory=list)
    typo_domains: list[TypoDomainPlan] = field(default_factory=list)
    test_ns: list[TestNsPlan] = field(default_factory=list)
    namecheap: NamecheapPlan | None = None

    def client_count(self) -> int:
        """Total planned hoster clients (excluding the Namecheap event)."""
        return sum(len(h.clients) for h in self.hosters)


# -- planner ----------------------------------------------------------------


class PopulationPlanner:
    """Samples a :class:`Plan` from a :class:`ScenarioConfig`."""

    def __init__(self, config: ScenarioConfig) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        self.forge = NameForge(random.Random(config.seed + 1))
        self._client_registrars = tuple(
            (spec.ident, spec.client_share)
            for spec in config.registrars
            if spec.client_share > 0
        )

    def build(self) -> Plan:
        """Generate the full plan."""
        plan = Plan()
        plan.hosters = self._plan_hosters()
        plan.safe_domains = self._plan_safe_domains()
        plan.safe_domains.extend(self._plan_collision_twins(plan.hosters))
        plan.typo_domains = self._plan_typo_domains()
        plan.test_ns = self._plan_test_ns()
        if self.config.namecheap.enabled:
            plan.namecheap = self._plan_namecheap()
        self._assign_brand_clients(plan)
        return plan

    # -- hosters and their clients ------------------------------------------

    def _death_day(self) -> int:
        """Sample a hoster death day with linearly declining intensity.

        The decline (start rate -> ``final_rate_fraction`` of it by the
        study end) is what produces Figure 3's downward trend. A small
        constant tail continues past the notification so the new
        (post-remediation) idioms get exercised for Table 6.
        """
        cfg = self.config
        span = cfg.study_end_day - cfg.start_day
        f = cfg.final_rate_fraction
        # ~8% of deaths land after the study end (the Table 6 tail).
        if self.rng.random() < 0.08:
            return self.rng.randrange(cfg.study_end_day, cfg.end_day)
        # Inverse-CDF sample of a linearly declining density on [0, span).
        u = self.rng.random()
        if abs(1.0 - f) < 1e-9:
            x = u
        else:
            # Density p(x) ~ 1 - (1-f)x on [0,1]. With a = (1-f)/2 the CDF
            # is (x - a*x^2) / (1 - a); inverting gives the quadratic root:
            a = (1.0 - f) / 2.0
            x = (1.0 - math.sqrt(max(0.0, 1.0 - 4.0 * a * u * (1.0 - a)))) / (2.0 * a)
            x = min(max(x, 0.0), 1.0)
        # Leave room for a pre-death life: never die in the first weeks.
        return max(cfg.start_day + 45, cfg.start_day + int(x * span))

    def _plan_hosters(self) -> list[HosterPlan]:
        cfg = self.config
        hoster_table = tuple(
            (spec.ident, spec.hoster_share)
            for spec in cfg.registrars
            if spec.hoster_share > 0
        )
        spec_by_ident = {spec.ident: spec for spec in cfg.registrars}
        hosters = []
        for _ in range(cfg.hoster_count):
            registrar = _weighted(self.rng, hoster_table)
            spec = spec_by_ident[registrar]
            tld = _weighted(self.rng, _HOSTER_TLDS)
            label = self.forge.label()
            domain = f"{label}.{tld}"
            death = self._death_day()
            lifetime = self.rng.randrange(420, 3200)
            birth = max(cfg.start_day, death - lifetime)
            ns_count = spec.ns_per_hoster
            if self.rng.random() < 0.2:
                ns_count = max(1, ns_count + self.rng.choice((-1, 1)))
            ns_hosts = tuple(f"ns{i + 1}.{domain}" for i in range(ns_count))
            hoster = HosterPlan(
                domain=domain,
                registrar=registrar,
                birth_day=birth,
                death_day=death,
                ns_hosts=ns_hosts,
            )
            hoster.clients = self._plan_clients(hoster, spec.clients_per_hoster)
            hosters.append(hoster)
        return hosters

    def _sample_client_count(self, mean: float) -> int:
        """Heavy-tailed client count with the given mean.

        Most dying hosters have only a couple of clients still delegating
        to them, but a small fraction carry dozens-to-hundreds — the
        skew behind the paper's headline disparity (hijackers register 5%
        of nameservers yet capture 32% of exposed domains) and the top
        end of Figure 5. Modeled as a small-count body plus an
        exponential burst component whose mean absorbs the rest.
        """
        if mean <= 1.2:
            return max(0, int(self.rng.random() < mean))
        body_mean = 1.62
        # Registrars whose dying hosters carry very many client domains
        # (the paper's Network Solutions / GMO / Xin Net ratios) burst
        # often and heavily; the classic web-hoster profile bursts less
        # often, with lognormal burst sizes so the domain mass is not
        # entirely concentrated in a handful of mega-nameservers (the
        # paper's hijacked/hijackable ratio depends on this balance).
        burst_fraction = 0.45 if mean > 10 else 0.12
        burst_mean = max(
            2.0, (mean - body_mean * (1 - burst_fraction)) / burst_fraction
        )
        burst_cap = min(900, max(30, int(mean * 60)))
        if self.rng.random() < burst_fraction:
            if mean > 10:
                size = 2 + int(self.rng.expovariate(1.0 / burst_mean))
            else:
                size = 2 + int(self.rng.lognormvariate(math.log(burst_mean / 1.5), 0.9))
            return min(burst_cap, size)
        roll = self.rng.random()
        if roll < 0.06:
            return 0
        if roll < 0.56:
            return 1
        if roll < 0.82:
            return 2
        if roll < 0.94:
            return 3
        return 4

    def _client_tld(self, hoster_tld: str, cross_repo: bool) -> str:
        home_repo = _TLD_REPO[hoster_tld]
        if cross_repo:
            others = [op for op in _REPO_TLDS if op != home_repo]
            repo = self.rng.choice(others)
        else:
            repo = home_repo
        return _weighted(self.rng, _REPO_TLDS[repo])

    def _fix_behaviour(self, death_day: int, partial: bool) -> tuple[int | None, int | None]:
        """Sample (fix_day, expiry_day) for an exposed client.

        ``death_day`` here is the hoster's registration expiry; the
        client's exposure starts at the *purge* (expiry + grace), so all
        reactive behaviour is measured from there.
        """
        death_day = death_day + PURGE_DELAY
        cfg = self.config
        roll = self.rng.random()
        if partial:
            # Owners with a working alternate nameserver rarely notice the
            # exposure — but their registrations still lapse eventually
            # (slower than the moribund fully-exposed population).
            if roll < 0.15:
                fix = death_day + self.rng.randrange(30, 700)
                return fix, None
            years = 1
            while self.rng.random() < 0.45 and years < 8:
                years += 1
            expiry = death_day + self.rng.randrange(30, DAYS_PER_YEAR) \
                + (years - 1) * DAYS_PER_YEAR
            return None, expiry
        if roll < cfg.fix_fast_fraction:
            return death_day + self.rng.randrange(1, 8), None
        if roll < cfg.fix_fast_fraction + cfg.fix_slow_fraction:
            delay = int(self.rng.lognormvariate(math.log(70), 0.9))
            return death_day + max(8, min(delay, 1200)), None
        # Abandoned: never fixed; the registration lapses at an upcoming
        # anniversary (with a chance of one or two absent-minded renewals).
        years = 1
        while self.rng.random() < 0.30 and years < 6:
            years += 1
        expiry = death_day + self.rng.randrange(20, DAYS_PER_YEAR) \
            + (years - 1) * DAYS_PER_YEAR
        return None, expiry

    def _plan_clients(self, hoster: HosterPlan, mean_clients: float) -> list[ClientPlan]:
        cfg = self.config
        count = self._sample_client_count(mean_clients)
        clients = []
        hoster_tld = hoster.domain.rsplit(".", 1)[1]
        for _ in range(count):
            cross_repo = self.rng.random() < cfg.cross_repo_client_fraction
            partial = (not cross_repo) and self.rng.random() < cfg.partial_exposure_fraction
            tld = self._client_tld(hoster_tld, cross_repo)
            domain = f"{self.forge.label()}.{tld}"
            if tld in ("edu", "gov"):
                registrar = "sim-verisign"
            else:
                registrar = _weighted(self.rng, self._client_registrars)
            birth_low = hoster.birth_day
            birth_high = max(birth_low + 1, hoster.death_day - 30)
            birth = self.rng.randrange(birth_low, birth_high)
            if len(hoster.ns_hosts) == 1 or self.rng.random() < 0.25:
                ns_refs: tuple[str, ...] = (hoster.ns_hosts[0],)
            else:
                ns_refs = hoster.ns_hosts
            if partial:
                provider, _owner = self.rng.choice(SAFE_PROVIDERS)
                ns_refs = ns_refs + (f"ns1.{provider}",)
            fix_day, expiry_day = self._fix_behaviour(hoster.death_day, partial)
            transfer_day: int | None = None
            transfer_to: str | None = None
            if registrar != "sim-verisign" and self.rng.random() < 0.03:
                # A slice of registrants move registrars mid-life, so the
                # "current registrar" at remediation time differs from the
                # original sponsor (matters for §7.1's GoDaddy action).
                horizon = expiry_day if expiry_day is not None else hoster.death_day + 600
                if horizon - birth > 120:
                    transfer_day = self.rng.randrange(birth + 60, horizon - 30)
                    others = [
                        ident for ident, _w in self._client_registrars
                        if ident != registrar
                    ]
                    transfer_to = self.rng.choice(others)
            clients.append(
                ClientPlan(
                    domain=domain,
                    registrar=registrar,
                    birth_day=birth,
                    ns_refs=ns_refs,
                    partial=partial,
                    cross_repo=cross_repo,
                    fix_day=fix_day,
                    expiry_day=expiry_day,
                    transfer_day=transfer_day,
                    transfer_to=transfer_to,
                )
            )
        return clients

    # -- background population ------------------------------------------------

    def _plan_safe_domains(self) -> list[SafeDomainPlan]:
        cfg = self.config
        plans = []
        for _ in range(cfg.safe_domain_count):
            provider, _owner = self.rng.choice(SAFE_PROVIDERS)
            tld = _weighted(
                self.rng,
                (("com", 0.6), ("net", 0.12), ("org", 0.14),
                 ("info", 0.05), ("biz", 0.05), ("us", 0.04)),
            )
            domain = f"{self.forge.label()}.{tld}"
            registrar = _weighted(self.rng, self._client_registrars)
            birth = self.rng.randrange(cfg.start_day, cfg.study_end_day)
            ns_refs = (f"ns1.{provider}", f"ns2.{provider}")
            plans.append(SafeDomainPlan(domain, registrar, birth, ns_refs))
        return plans

    def _plan_collision_twins(
        self, hosters: list[HosterPlan]
    ) -> list[SafeDomainPlan]:
        """Pre-registered ``{sld}.biz`` twins of some GoDaddy hosters.

        The PLEASEDROPTHISHOST idiom keeps the original second-level name
        verbatim, so when ``{sld}.biz`` happens to be registered already
        the sacrificial name lands on an existing domain (the paper
        counts 3,704 such accidents). These twins make that collision
        happen in the simulation.
        """
        switch_day = to_day(_dt.date(2015, 3, 1))
        twins = []
        for hoster in hosters:
            if hoster.registrar != "godaddy" or hoster.death_day >= switch_day:
                continue
            if self.rng.random() >= 0.06:
                continue
            label = hoster.domain.rsplit(".", 1)[0]
            provider, _owner = self.rng.choice(SAFE_PROVIDERS)
            birth = max(0, hoster.death_day - self.rng.randrange(60, 900))
            twins.append(
                SafeDomainPlan(
                    domain=f"{label}.biz",
                    registrar=_weighted(self.rng, self._client_registrars),
                    birth_day=birth,
                    ns_refs=(f"ns1.{provider}", f"ns2.{provider}"),
                )
            )
        return twins

    def _plan_typo_domains(self) -> list[TypoDomainPlan]:
        cfg = self.config
        plans = []
        shared_typos: list[str] = []
        for index in range(cfg.typo_domain_count):
            provider, _owner = self.rng.choice(SAFE_PROVIDERS)
            label, ptld = provider.rsplit(".", 1)
            # Mangle the provider name: transposition or dropped letter.
            if len(label) > 4 and self.rng.random() < 0.5:
                pos = self.rng.randrange(len(label) - 1)
                mangled = label[:pos] + label[pos + 1] + label[pos] + label[pos + 2:]
            else:
                pos = self.rng.randrange(len(label))
                mangled = label[:pos] + label[pos + 1:]
            typo = f"ns1.{mangled}{self.rng.randrange(10)}.{ptld}"
            # A slice of typo nameservers is shared by domains in different
            # repositories — single-repository-property violations the
            # pipeline must eliminate (the paper drops 11,403 this way).
            if shared_typos and self.rng.random() < 0.18:
                typo = self.rng.choice(shared_typos)
            elif self.rng.random() < 0.25:
                shared_typos.append(typo)
            tld = _weighted(
                self.rng,
                (("com", 0.45), ("net", 0.1), ("org", 0.2),
                 ("info", 0.1), ("biz", 0.1), ("us", 0.05)),
            )
            domain = f"{self.forge.label()}.{tld}"
            registrar = _weighted(self.rng, self._client_registrars)
            birth = self.rng.randrange(cfg.start_day, cfg.study_end_day)
            fix: int | None = None
            if self.rng.random() < 0.7:
                fix = birth + self.rng.randrange(10, 400)
            plans.append(
                TypoDomainPlan(
                    domain=domain,
                    registrar=registrar,
                    birth_day=birth,
                    typo_ns=(typo,),
                    good_ns=(f"ns1.{provider}", f"ns2.{provider}"),
                    fix_day=fix,
                )
            )
        return plans

    def _plan_test_ns(self) -> list[TestNsPlan]:
        cfg = self.config
        plans = []
        for index in range(cfg.test_ns_count):
            start = self.rng.randrange(cfg.start_day, cfg.study_end_day)
            end = start + self.rng.randrange(3, 40)
            token = self.rng.randrange(10 ** 8, 10 ** 9)
            stamp = 1400000000000 + self.rng.randrange(10 ** 11)
            domain = f"emt-d-{token}.com"
            ns_names = tuple(
                f"emt-ns{i + 1}.emt-t-{token}-{stamp}-{i + 1}-u.com"
                for i in range(2)
            )
            plans.append(
                TestNsPlan(
                    domain=domain,
                    registry_operator="sim-verisign",
                    ns_names=ns_names,
                    start_day=start,
                    end_day=min(end, cfg.end_day - 1),
                )
            )
        return plans

    # -- special scenarios ------------------------------------------------------

    def _plan_namecheap(self) -> NamecheapPlan:
        cfg = self.config
        spec = cfg.namecheap
        host_names = tuple(
            f"ns{i + 1}.{spec.ns_domain}" for i in range(spec.host_count)
        )
        plan = NamecheapPlan(
            day=spec.day,
            ns_domain=spec.ns_domain,
            sponsor=spec.sponsor,
            host_names=host_names,
        )
        never_left = spec.never_fixed
        for index in range(spec.client_count):
            tld = _weighted(self.rng, (("com", 0.8), ("net", 0.2)))
            domain = f"{self.forge.label()}.{tld}"
            birth = self.rng.randrange(cfg.start_day, max(spec.day - 30, 1))
            pair_start = self.rng.randrange(len(host_names))
            ns_refs = (
                host_names[pair_start],
                host_names[(pair_start + 1) % len(host_names)],
            )
            remaining = spec.client_count - index
            if never_left > 0 and self.rng.random() < never_left / remaining:
                fix: int | None = None
                never_left -= 1
            elif self.rng.random() < spec.fixed_within_3_days:
                fix = spec.day + self.rng.randrange(1, 4)
            else:
                fix = spec.day + self.rng.randrange(4, 1400)
            plan.clients.append(
                ClientPlan(
                    domain=domain,
                    registrar="namecheap",
                    birth_day=birth,
                    ns_refs=ns_refs,
                    fix_day=fix,
                    expiry_day=None,
                )
            )
        return plan

    def _assign_brand_clients(self, plan: Plan) -> None:
        """Convert some exposed clients into MarkMonitor brand domains."""
        cfg = self.config
        candidates = [
            client
            for hoster in plan.hosters
            for client in hoster.clients
            if not client.cross_repo and not client.partial
            and client.domain.rsplit(".", 1)[1] not in ("edu", "gov")
        ]
        self.rng.shuffle(candidates)
        for client in candidates[: cfg.brand_client_count]:
            client.brand = True
            client.registrar = "markmonitor"
            client.fix_day = None     # fixed only via notification outreach
            client.expiry_day = None  # brands keep renewing
