"""Zone mirror: turns registry audit events into zone-database history.

Every provisioning operation that changes what a registry would publish
in its TLD zone files is reflected into the :class:`ZoneDatabase` on the
day it happens. This is exactly equivalent to diffing daily zone-file
snapshots (the DZDB ingestion path — covered by tests that compare the
two), but avoids materializing thousands of full snapshots.
"""

from __future__ import annotations

from repro.ecosystem.ledger import LifecycleLedger
from repro.epp.errors import EppError
from repro.epp.objects import DomainStatus
from repro.epp.repository import EppRepository
from repro.zonedb.database import ZoneDatabase


class ZoneMirror:
    """Mirrors one EPP repository's zone-visible changes into a database.

    When given a :class:`LifecycleLedger` it also forwards every audit
    event there, so object lifecycles are recorded alongside the zone
    history without a second audit hook on the repository.
    """

    def __init__(
        self,
        repository: EppRepository,
        database: ZoneDatabase,
        *,
        ledger: LifecycleLedger | None = None,
    ) -> None:
        self.repository = repository
        self.database = database
        self.ledger = ledger
        self._glue_hosts: set[str] = set()
        for tld in repository.tlds:
            database.cover(tld)

    def __call__(self, day: int, operation: str, details: dict) -> None:
        """The audit-hook entry point."""
        if self.ledger is not None:
            self.ledger.record(day, operation, details, self.repository.operator)
        handler = getattr(self, "_on_" + operation.replace(":", "_"), None)
        if handler is not None:
            handler(day, details)

    # -- domain operations -------------------------------------------------

    def _refresh_domain(self, day: int, name: str) -> None:
        try:
            obj = self.repository.domain(name)
        except EppError:
            self.database.remove_delegation(day, name)
            return
        on_hold = (
            DomainStatus.CLIENT_HOLD in obj.statuses
            or DomainStatus.SERVER_HOLD in obj.statuses
        )
        if obj.nameservers and not on_hold:
            self.database.set_delegation(day, obj.name, obj.nameservers)
        else:
            self.database.remove_delegation(day, obj.name)

    def _on_domain_create(self, day: int, details: dict) -> None:
        self._refresh_domain(day, details["domain"])

    def _on_domain_update(self, day: int, details: dict) -> None:
        self._refresh_domain(day, details["domain"])

    def _on_domain_status(self, day: int, details: dict) -> None:
        self._refresh_domain(day, details["domain"])

    def _on_domain_delete(self, day: int, details: dict) -> None:
        self.database.remove_delegation(day, details["domain"])

    def _on_domain_purge(self, day: int, details: dict) -> None:
        self.database.remove_delegation(day, details["domain"])

    # -- host operations -----------------------------------------------------

    def _refresh_glue(self, day: int, host_name: str) -> None:
        try:
            obj = self.repository.host(host_name)
        except EppError:
            if host_name in self._glue_hosts:
                self._glue_hosts.discard(host_name)
                self.database.remove_glue(day, host_name)
            return
        has_glue = bool(obj.addresses) and not obj.external
        if has_glue and host_name not in self._glue_hosts:
            self._glue_hosts.add(host_name)
            self.database.set_glue(day, host_name)
        elif not has_glue and host_name in self._glue_hosts:
            self._glue_hosts.discard(host_name)
            self.database.remove_glue(day, host_name)

    def _on_host_create(self, day: int, details: dict) -> None:
        self._refresh_glue(day, details["host"])

    def _on_host_addr(self, day: int, details: dict) -> None:
        self._refresh_glue(day, details["host"])

    def _on_host_delete(self, day: int, details: dict) -> None:
        host = details["host"]
        if host in self._glue_hosts:
            self._glue_hosts.discard(host)
            self.database.remove_glue(day, host)

    def _on_host_rename(self, day: int, details: dict) -> None:
        old, new = details["old"], details["new"]
        if old in self._glue_hosts:
            self._glue_hosts.discard(old)
            self.database.remove_glue(day, old)
        self._refresh_glue(day, new)
        for domain in details.get("linked", ()):
            self._refresh_domain(day, domain)
