"""Scenario and world (de)serialization for the ecosystem.

Two JSON document kinds live here:

* **scenario configs** (:func:`save_scenario`/:func:`load_scenario`) —
  a :class:`ScenarioConfig` round-trip, so a scenario can be versioned,
  shared, and replayed exactly: ``riskybiz report --config my.json``.
  Idioms are serialized by type + parameters (the idiom classes are the
  registry); dates as ISO strings; everything else as plain values.

* **world dumps** (:func:`world_to_dict`/:func:`save_world`) — a static
  description of what a finished run's EPP state looked like over time:
  repositories, object lifecycles, delegation intervals, and renames.
  This is the document ``riskybiz lint`` (the scenario engine) checks
  for RFC 5731/5732 referential integrity without running anything.
"""

from __future__ import annotations

import datetime as _dt
import json
from dataclasses import replace
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.ecosystem.world import WorldResult

from repro.ecosystem.config import (
    HijackerSpec,
    NamecheapEventSpec,
    RegistrarSpec,
    ScenarioConfig,
    default_scenario,
)
from repro.faults.config import fault_config_from_dict, fault_config_to_dict
from repro.registrar.idioms import (
    DeletedDropIdiom,
    DropThisHostIdiom,
    Enom123BizIdiom,
    PleaseDropThisHostIdiom,
    RenamingIdiom,
    ReservedLabelIdiom,
    SinkDomainIdiom,
    SldRandomSuffixIdiom,
)

_IDIOM_TYPES: dict[str, type] = {
    "PleaseDropThisHostIdiom": PleaseDropThisHostIdiom,
    "DropThisHostIdiom": DropThisHostIdiom,
    "DeletedDropIdiom": DeletedDropIdiom,
    "Enom123BizIdiom": Enom123BizIdiom,
    "SldRandomSuffixIdiom": SldRandomSuffixIdiom,
    "SinkDomainIdiom": SinkDomainIdiom,
    "ReservedLabelIdiom": ReservedLabelIdiom,
}


def _idiom_to_json(idiom: RenamingIdiom) -> dict[str, Any]:
    data: dict[str, Any] = {"type": type(idiom).__name__}
    if isinstance(idiom, SinkDomainIdiom):
        data["sink"] = idiom.sink
        data["tag_length"] = idiom.tag_length
    elif isinstance(idiom, ReservedLabelIdiom):
        data["apex"] = idiom.apex
    elif isinstance(idiom, (SldRandomSuffixIdiom, PleaseDropThisHostIdiom)):
        data["rand_length"] = idiom.rand_length
    return data


def _idiom_from_json(data: dict[str, Any]) -> RenamingIdiom:
    type_name = data["type"]
    cls = _IDIOM_TYPES.get(type_name)
    if cls is None:
        raise ValueError(f"unknown idiom type {type_name!r}")
    kwargs = {k: v for k, v in data.items() if k != "type"}
    return cls(**kwargs)


def _date_to_json(date: _dt.date) -> str:
    return date.isoformat()


def _date_from_json(text: str) -> _dt.date:
    return _dt.date.fromisoformat(text)


def scenario_to_dict(config: ScenarioConfig) -> dict[str, Any]:
    """A JSON-ready dict for a scenario."""
    return {
        "seed": config.seed,
        "start_day": config.start_day,
        "end_day": config.end_day,
        "study_end_day": config.study_end_day,
        "notification_day": config.notification_day,
        "hoster_count": config.hoster_count,
        "final_rate_fraction": config.final_rate_fraction,
        "safe_domain_count": config.safe_domain_count,
        "typo_domain_count": config.typo_domain_count,
        "test_ns_count": config.test_ns_count,
        "partial_exposure_fraction": config.partial_exposure_fraction,
        "cross_repo_client_fraction": config.cross_repo_client_fraction,
        "fix_fast_fraction": config.fix_fast_fraction,
        "fix_slow_fraction": config.fix_slow_fraction,
        "brand_client_count": config.brand_client_count,
        "sink_abandon_enabled": config.sink_abandon_enabled,
        "faults": fault_config_to_dict(config.faults),
        "namecheap": {
            "enabled": config.namecheap.enabled,
            "day": config.namecheap.day,
            "ns_domain": config.namecheap.ns_domain,
            "sponsor": config.namecheap.sponsor,
            "host_count": config.namecheap.host_count,
            "client_count": config.namecheap.client_count,
            "fixed_within_3_days": config.namecheap.fixed_within_3_days,
            "never_fixed": config.namecheap.never_fixed,
        },
        "registrars": [
            {
                "ident": spec.ident,
                "display_name": spec.display_name,
                "idiom_schedule": [
                    [_date_to_json(date), _idiom_to_json(idiom)]
                    for date, idiom in spec.idiom_schedule
                ],
                "hoster_share": spec.hoster_share,
                "client_share": spec.client_share,
                "clients_per_hoster": spec.clients_per_hoster,
                "ns_per_hoster": spec.ns_per_hoster,
                "default_ns_domain": spec.default_ns_domain,
                "remediate_on_notification": spec.remediate_on_notification,
                "sink_abandonments": [
                    [_date_to_json(date), sink]
                    for date, sink in spec.sink_abandonments
                ],
            }
            for spec in config.registrars
        ],
        "hijackers": [
            {
                "ident": spec.ident,
                "ns_domain": spec.ns_domain,
                "active_from": _date_to_json(spec.active_from),
                "active_until": _date_to_json(spec.active_until),
                "min_value": spec.min_value,
                "interest": spec.interest,
                "speed": spec.speed,
                "renew_probs": list(spec.renew_probs),
                "monthly_capacity": spec.monthly_capacity,
            }
            for spec in config.hijackers
        ],
    }


def scenario_from_dict(data: dict[str, Any]) -> ScenarioConfig:
    """Rebuild a scenario from :func:`scenario_to_dict` output."""
    registrars = tuple(
        RegistrarSpec(
            ident=entry["ident"],
            display_name=entry["display_name"],
            idiom_schedule=tuple(
                (_date_from_json(date), _idiom_from_json(idiom))
                for date, idiom in entry["idiom_schedule"]
            ),
            hoster_share=entry["hoster_share"],
            client_share=entry["client_share"],
            clients_per_hoster=entry["clients_per_hoster"],
            ns_per_hoster=entry["ns_per_hoster"],
            default_ns_domain=entry["default_ns_domain"],
            remediate_on_notification=entry["remediate_on_notification"],
            sink_abandonments=tuple(
                (_date_from_json(date), sink)
                for date, sink in entry["sink_abandonments"]
            ),
        )
        for entry in data["registrars"]
    )
    hijackers = tuple(
        HijackerSpec(
            ident=entry["ident"],
            ns_domain=entry["ns_domain"],
            active_from=_date_from_json(entry["active_from"]),
            active_until=_date_from_json(entry["active_until"]),
            min_value=entry["min_value"],
            interest=entry["interest"],
            speed=entry["speed"],
            renew_probs=tuple(entry["renew_probs"]),
            monthly_capacity=entry["monthly_capacity"],
        )
        for entry in data["hijackers"]
    )
    namecheap = NamecheapEventSpec(**data["namecheap"])
    base = default_scenario(data["seed"])
    return replace(
        base,
        seed=data["seed"],
        start_day=data["start_day"],
        end_day=data["end_day"],
        study_end_day=data["study_end_day"],
        notification_day=data["notification_day"],
        hoster_count=data["hoster_count"],
        final_rate_fraction=data["final_rate_fraction"],
        safe_domain_count=data["safe_domain_count"],
        typo_domain_count=data["typo_domain_count"],
        test_ns_count=data["test_ns_count"],
        partial_exposure_fraction=data["partial_exposure_fraction"],
        cross_repo_client_fraction=data["cross_repo_client_fraction"],
        fix_fast_fraction=data["fix_fast_fraction"],
        fix_slow_fraction=data["fix_slow_fraction"],
        brand_client_count=data["brand_client_count"],
        sink_abandon_enabled=data["sink_abandon_enabled"],
        # .get keeps scenario files written before the faults subsystem
        # loadable unchanged (missing key -> disabled faults).
        faults=fault_config_from_dict(data.get("faults")),
        namecheap=namecheap,
        registrars=registrars,
        hijackers=hijackers,
    )


def save_scenario(config: ScenarioConfig, path: str | Path) -> Path:
    """Write a scenario as pretty-printed JSON."""
    target = Path(path)
    target.write_text(
        json.dumps(scenario_to_dict(config), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target


def load_scenario(path: str | Path) -> ScenarioConfig:
    """Read a scenario written by :func:`save_scenario`."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return scenario_from_dict(data)


# -- world dumps -------------------------------------------------------------

#: Format tag identifying world-dump documents.
WORLD_FORMAT = "riskybiz-world/1"


def _intervals_to_json(
    intervals: list[tuple[int, int | None]]
) -> list[list[int | None]]:
    return [[start, end] for start, end in intervals]


def world_to_dict(result: "WorldResult") -> dict[str, Any]:
    """A JSON-ready static view of a finished run's EPP state.

    Built from the run's lifecycle ledger (object existence), the zone
    database (delegation intervals), and the ground-truth rename log.
    The output is what the scenario lint engine validates.
    """
    zonedb = result.zonedb
    ledger = result.ledger
    domains = []
    for operator, name in sorted(ledger.domains):
        life = ledger.domains[(operator, name)]
        per_ns: dict[str, list[list[int | None]]] = {}
        for record in zonedb.domain_records(name):
            per_ns.setdefault(record.ns, []).append([record.start, record.end])
        domains.append(
            {
                "name": name,
                "repository": operator,
                "intervals": _intervals_to_json(life.intervals()),
                "purge_days": sorted(life.purge_days),
                "delegations": [
                    {"ns": ns, "intervals": sorted(spans)}
                    for ns, spans in sorted(per_ns.items())
                ],
            }
        )
    hosts = []
    for operator, name in sorted(ledger.hosts):
        life = ledger.hosts[(operator, name)]
        hosts.append(
            {
                "name": name,
                "repository": operator,
                "intervals": _intervals_to_json(life.intervals()),
            }
        )
    from repro.store.artifacts import scenario_digest

    return {
        "format": WORLD_FORMAT,
        "scenario_digest": scenario_digest(result.config),
        "ingest_policy": {
            "gap_bridge_days": result.config.faults.gap_bridge_days,
            "strict": result.config.faults.strict,
        },
        "faults": fault_config_to_dict(result.config.faults),
        "repositories": [
            {
                "operator": registry.operator,
                "tlds": sorted(registry.repository.tlds),
            }
            for registry in result.roster.registries
        ],
        "domains": domains,
        "hosts": hosts,
        "renames": [
            {
                "day": record.day,
                "old": record.old_name,
                "new": record.new_name,
                "repository": record.repository,
                "registrar": record.registrar,
                "sacrificial": record.hijackable,
            }
            for record in result.log.renames
        ],
    }


def save_world(result: "WorldResult", path: str | Path) -> Path:
    """Write a run's world dump as pretty-printed JSON."""
    target = Path(path)
    target.write_text(
        json.dumps(world_to_dict(result), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target
