"""The world engine: executes the scenario and produces the data sets.

:class:`World` wires together registries (with zone mirrors), registrar
agents, the WHOIS archive, hijacker actors, and the planned population,
then interprets the event queue day by day. Its outputs are exactly what
the paper's methodology consumes — a longitudinal zone database and a
WHOIS archive — plus a ground-truth event log used only for validation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro import simtime
from repro.dnscore.names import Name
from repro.dnscore.psl import default_psl
from repro.ecosystem.config import ScenarioConfig, default_scenario
from repro.ecosystem.events import (
    Event,
    EventLog,
    EventQueue,
    FixRecord,
    HijackRecord,
    RenameRecord,
    SinkEventRecord,
)
from repro.ecosystem.hijacker import HijackerActor
from repro.ecosystem.ledger import LifecycleLedger
from repro.ecosystem.lifecycle import (
    schedule_plan,
    schedule_registrar_policy,
    schedule_remediation,
)
from repro.ecosystem.mirror import ZoneMirror
from repro.ecosystem.population import (
    SAFE_PROVIDERS,
    ClientPlan,
    Plan,
    PopulationPlanner,
)
from repro.epp.registry import RegistryRoster, default_roster
from repro.faults.rng import stable_hash
from repro.registrar.registrar import IdiomSchedule, Registrar
from repro.whois.archive import WhoisArchive
from repro.zonedb.database import ZoneDatabase


@dataclass
class SacrificialGroup:
    """All sacrificial nameserver names sharing one registered domain.

    Hijackers operate on registered domains: one registration takes over
    every nameserver name under it (relevant for idioms like
    PLEASEDROPTHISHOST that put several renamed hosts under one name).
    """

    registered_domain: str
    created_day: int
    registrar: str
    idiom_id: str
    ns_names: set[str] = field(default_factory=set)
    offers_made: bool = False


@dataclass
class WorldResult:
    """Everything a run produces."""

    config: ScenarioConfig
    plan: Plan
    roster: RegistryRoster
    registrars: dict[str, Registrar]
    zonedb: ZoneDatabase
    whois: WhoisArchive
    log: EventLog
    groups: dict[str, SacrificialGroup]
    ledger: LifecycleLedger = field(default_factory=LifecycleLedger)


class World:
    """Builds and runs one simulated ecosystem."""

    def __init__(self, config: ScenarioConfig) -> None:
        self.config = config
        self.rng = random.Random(config.seed + 7)
        self.psl = default_psl()
        self.zonedb = ZoneDatabase()
        self.whois = WhoisArchive()
        self.log = EventLog()
        self.queue = EventQueue()
        self.groups: dict[str, SacrificialGroup] = {}
        self.roster = default_roster()
        self.ledger = LifecycleLedger()
        self._mirrors: list[ZoneMirror] = []
        for registry in self.roster.registries:
            mirror = ZoneMirror(registry.repository, self.zonedb, ledger=self.ledger)
            registry.repository.set_audit_hook(mirror)
            self._mirrors.append(mirror)
        self.registrars = self._build_registrars()
        self.hijackers = self._build_hijackers()
        self._safe_ns_names = {
            f"ns{i}.{provider}" for provider, _owner in SAFE_PROVIDERS for i in (1, 2)
        }
        self._remediation_targets: dict[str, list[RenameRecord]] = {}
        self.plan = PopulationPlanner(config).build()
        self._built = False
        self._ran = False

    # -- construction ----------------------------------------------------

    def _build_registrars(self) -> dict[str, Registrar]:
        registrars: dict[str, Registrar] = {}
        for index, spec in enumerate(self.config.registrars):
            schedule = IdiomSchedule()
            for effective_date, idiom in spec.idiom_schedule:
                schedule.add(simtime.to_day(effective_date), idiom)
            registrar = Registrar(
                spec.ident,
                spec.display_name,
                seed=self.config.seed * 1000 + index,
                schedule=schedule,
                default_ns_domain=spec.default_ns_domain,
                psl=self.psl,
            )
            registrar.accredit_at(self.roster.registries)
            registrars[spec.ident] = registrar
        return registrars

    def _build_hijackers(self) -> list[HijackerActor]:
        return [
            HijackerActor(spec, random.Random(self.config.seed * 77 + i))
            for i, spec in enumerate(self.config.hijackers)
        ]

    def build(self) -> None:
        """Provision base infrastructure and queue the whole schedule."""
        if self._built:
            return
        self._built = True
        day = self.config.start_day
        self._provision_safe_providers(day)
        self._provision_hijacker_infrastructure(day)
        schedule_plan(self.queue, self.plan, self.config)
        schedule_registrar_policy(self.queue, self.config)
        schedule_remediation(self.queue, self.config)

    def _provision_safe_providers(self, day: int) -> None:
        for index, (provider, owner) in enumerate(SAFE_PROVIDERS):
            registrar = self.registrars[owner]
            self._register_domain(
                owner, provider, day=day, nameservers=[], period_years=30
            )
            hosts = {
                f"ns{i}.{provider}": [f"198.51.{index}.{i}"] for i in (1, 2)
            }
            registrar.create_subordinate_hosts(self.roster, provider, hosts, day=day)
            # The provider delegates to itself (self-hosted glue).
            registrar.update_nameservers(
                self.roster, provider, day=day, add=sorted(hosts)
            )

    def _provision_hijacker_infrastructure(self, day: int) -> None:
        bulkreg = self.registrars["bulkreg"]
        for actor in self.hijackers:
            ns_domain = actor.spec.ns_domain
            if not self.roster.operates(ns_domain):
                continue  # foreign TLD (e.g. .nl): external everywhere
            if self.roster.registry_for(ns_domain).repository.domain_exists(ns_domain):
                continue
            self._register_domain(
                "bulkreg", ns_domain, day=day, nameservers=[], period_years=30
            )
            hosts = {
                host: [f"203.0.{113 + i}.{self.rng.randrange(1, 250)}"]
                for i, host in enumerate(actor.spec.ns_hosts())
            }
            bulkreg.create_subordinate_hosts(self.roster, ns_domain, hosts, day=day)
            bulkreg.update_nameservers(
                self.roster, ns_domain, day=day, add=sorted(hosts)
            )

    # -- generic provisioning helpers ------------------------------------------

    def _is_restricted(self, domain: str) -> bool:
        registry = self.roster.registry_for(domain)
        return registry.is_restricted(Name(domain).tld)

    def _register_domain(
        self,
        registrar_ident: str,
        domain: str,
        *,
        day: int,
        nameservers: list[str],
        period_years: int,
        registrant: str = "",
    ) -> bool:
        """Register a domain via registrar or registry, recording WHOIS."""
        registry = self.roster.registry_for(domain)
        if self._is_restricted(domain) or registrar_ident == registry.operator:
            session = registry.session(registry.operator)
            for ns in nameservers:
                if not registry.repository.host_exists(ns) and not (
                    registry.repository.is_internal(ns)
                ):
                    session.host_create(ns, day=day)
            result = session.domain_create(
                domain,
                day=day,
                period_years=period_years,
                nameservers=nameservers,
                registrant=registrant,
            )
            sponsor = registry.operator
        else:
            registrar = self.registrars[registrar_ident]
            result = registrar.register_domain(
                self.roster,
                domain,
                day=day,
                nameservers=nameservers,
                period_years=period_years,
                registrant=registrant,
            )
            sponsor = registrar_ident
        if result.ok:
            self.whois.record_registration(
                domain,
                sponsor,
                day=day,
                period_years=period_years,
                registrant=registrant,
            )
            return True
        return False

    def _delete_domain(self, registrar_ident: str, domain: str, *, day: int) -> bool:
        """Delete a domain (machinery path for registrars), log renames."""
        registry = self.roster.registry_for(domain)
        if self._is_restricted(domain) or registrar_ident == registry.operator:
            session = registry.session(registry.operator)
            result = session.domain_delete(domain, day=day)
            if result.ok:
                self.whois.record_deletion(domain, day=day)
            return result.ok
        registrar = self.registrars[registrar_ident]
        outcome = registrar.delete_domain(self.roster, domain, day=day)
        if outcome.deleted:
            self.whois.record_deletion(domain, day=day)
        idiom = registrar.current_idiom(day)
        new_groups: list[SacrificialGroup] = []
        for rename in outcome.renames:
            record = RenameRecord(
                day=day,
                old_name=rename.old_name,
                new_name=rename.new_name,
                registrar=registrar_ident,
                repository=registry.operator,
                idiom_id=idiom.idiom_id,
                hijackable=idiom.hijackable,
                linked_domains=rename.linked_domains,
                accidental=self._is_accidental_context,
            )
            self.log.renames.append(record)
            if idiom.hijackable:
                group = self._track_group(record)
                if group is not None and not group.offers_made:
                    new_groups.append(group)
        if not self._is_accidental_context:
            for group in new_groups:
                self._offer_to_hijackers(day, group)
        return outcome.deleted

    _is_accidental_context: bool = False

    def _track_group(self, record: RenameRecord) -> SacrificialGroup | None:
        registered = self.psl.registered_domain(record.new_name)
        if registered is None:
            return None
        group = self.groups.get(registered)
        if group is None:
            group = SacrificialGroup(
                registered_domain=registered,
                created_day=record.day,
                registrar=record.registrar,
                idiom_id=record.idiom_id,
            )
            self.groups[registered] = group
        group.ns_names.add(record.new_name)
        return group

    def _group_value(self, group: SacrificialGroup, day: int) -> int:
        domains: set[str] = set()
        for ns in group.ns_names:
            domains |= self.zonedb.domains_of_ns(ns, day)
        return len(domains)

    def _offer_to_hijackers(self, day: int, group: SacrificialGroup) -> None:
        group.offers_made = True
        tld = Name(group.registered_domain).tld
        if not self.roster.operates(group.registered_domain):
            return  # nobody can register this TLD in the simulated world
        registry = self.roster.registry_for(group.registered_domain)
        if registry.is_restricted(tld):
            return
        if registry.repository.domain_exists(group.registered_domain):
            return  # accidental collision with an existing registration
        value = self._group_value(group, day)
        for actor in self.hijackers:
            delay = actor.consider(day, value)
            if delay is not None:
                self.queue.push_new(
                    day + delay,
                    "hijacker_register",
                    hijacker=actor.ident,
                    registered_domain=group.registered_domain,
                )

    def _sponsor_of(self, domain: str) -> str | None:
        registry = self.roster.registry_for(domain)
        if not registry.repository.domain_exists(domain):
            return None
        return registry.repository.domain(domain).sponsor

    def _current_nameservers(self, domain: str) -> list[str] | None:
        registry = self.roster.registry_for(domain)
        if not registry.repository.domain_exists(domain):
            return None
        return list(registry.repository.domain(domain).nameservers)

    def _set_nameservers(
        self, registrar_ident: str, domain: str, desired: list[str], *, day: int
    ) -> bool:
        current = self._current_nameservers(domain)
        if current is None:
            return False
        add = [ns for ns in desired if ns not in current]
        remove = [ns for ns in current if ns not in desired]
        if not add and not remove:
            return False
        registry = self.roster.registry_for(domain)
        if self._is_restricted(domain) or registrar_ident == registry.operator:
            session = registry.session(registry.operator)
            for ns in add:
                if not registry.repository.host_exists(ns) and not (
                    registry.repository.is_internal(ns)
                ):
                    session.host_create(ns, day=day)
            result = session.domain_update_ns(domain, day=day, add=add, remove=remove)
            return result.ok
        registrar = self.registrars[registrar_ident]
        result = registrar.update_nameservers(
            self.roster, domain, day=day, add=add, remove=remove
        )
        return result.ok

    # -- run loop -----------------------------------------------------------

    def run(self) -> WorldResult:
        """Execute every queued event and return the result bundle."""
        self.build()
        if self._ran:
            return self.result()
        self._ran = True
        handlers = {
            "hoster_birth": self._on_hoster_birth,
            "hoster_suspend": self._on_hoster_suspend,
            "hoster_purge": self._on_hoster_purge,
            "client_birth": self._on_client_birth,
            "client_transfer": self._on_client_transfer,
            "client_fix": self._on_client_fix,
            "client_expire": self._on_client_expire,
            "safe_birth": self._on_safe_birth,
            "typo_birth": self._on_typo_birth,
            "typo_fix": self._on_typo_fix,
            "test_start": self._on_test_start,
            "test_end": self._on_test_end,
            "namecheap_setup": self._on_namecheap_setup,
            "namecheap_delete": self._on_namecheap_delete,
            "namecheap_recover": self._on_namecheap_recover,
            "provision_sinks": self._on_provision_sinks,
            "sink_abandon": self._on_sink_abandon,
            "sink_purge": self._on_sink_purge,
            "sink_seize": self._on_sink_seize,
            "hijacker_register": self._on_hijacker_register,
            "hijack_renewal": self._on_hijack_renewal,
            "registrar_remediation": self._on_registrar_remediation,
            "markmonitor_remediation": self._on_markmonitor_remediation,
        }
        while self.queue:
            event = self.queue.pop()
            if event.day >= self.config.end_day:
                continue
            handlers[event.kind](event)
        self.zonedb.advance(self.config.end_day)
        return self.result()

    def result(self) -> WorldResult:
        """The run's output bundle."""
        return WorldResult(
            config=self.config,
            plan=self.plan,
            roster=self.roster,
            registrars=self.registrars,
            zonedb=self.zonedb,
            whois=self.whois,
            log=self.log,
            groups=self.groups,
            ledger=self.ledger,
        )

    # -- plan entity handlers ---------------------------------------------------

    def _on_hoster_birth(self, event: Event) -> None:
        hoster = event.payload["hoster"]
        day = event.day
        period = max(1, -(-(hoster.death_day - hoster.birth_day) // 365))
        if not self._register_domain(
            hoster.registrar, hoster.domain, day=day,
            nameservers=[], period_years=period,
            registrant=f"hoster-{hoster.domain}",
        ):
            return
        registrar = self.registrars[hoster.registrar]
        hosts = {
            host: [f"192.0.2.{(stable_hash(host) % 250) + 1}"]
            for host in hoster.ns_hosts
        }
        registrar.create_subordinate_hosts(self.roster, hoster.domain, hosts, day=day)
        registrar.update_nameservers(
            self.roster, hoster.domain, day=day, add=list(hoster.ns_hosts)
        )

    def _on_hoster_suspend(self, event: Event) -> None:
        """Redemption phase: the expired domain drops out of the zone."""
        hoster = event.payload["hoster"]
        registry = self.roster.registry_for(hoster.domain)
        if not registry.repository.domain_exists(hoster.domain):
            return
        from repro.epp.objects import DomainStatus
        sponsor = registry.repository.domain(hoster.domain).sponsor
        registry.repository.set_domain_status(
            sponsor, hoster.domain, day=event.day, add=[DomainStatus.CLIENT_HOLD]
        )

    def _on_hoster_purge(self, event: Event) -> None:
        """End of pending-delete: the rename machinery fires."""
        hoster = event.payload["hoster"]
        self._delete_domain(hoster.registrar, hoster.domain, day=event.day)

    def _on_client_birth(self, event: Event) -> None:
        client: ClientPlan = event.payload["client"]
        years = 10
        if client.expiry_day is not None:
            years = max(1, -(-(client.expiry_day - client.birth_day) // 365))
        self._register_domain(
            client.registrar, client.domain, day=event.day,
            nameservers=list(client.ns_refs), period_years=years,
            registrant=f"registrant-{client.domain}",
        )

    def _on_client_transfer(self, event: Event) -> None:
        client: ClientPlan = event.payload["client"]
        day = event.day
        registry = self.roster.registry_for(client.domain)
        if not registry.repository.domain_exists(client.domain):
            return
        obj = registry.repository.domain(client.domain)
        gaining = self.registrars[client.transfer_to]
        session = gaining.session_for(registry)
        result = session.domain_transfer(client.domain, obj.auth_info, day=day)
        if result.ok:
            self.whois.record_transfer(client.domain, client.transfer_to, day=day)

    def _on_client_fix(self, event: Event) -> None:
        client: ClientPlan = event.payload["client"]
        reason = event.payload.get("reason", "organic")
        current = self._current_nameservers(client.domain)
        if current is None:
            return
        if reason == "namecheap":
            desired = list(client.ns_refs)
        else:
            keep = [ns for ns in current if ns in self._safe_ns_names]
            if keep:
                desired = keep
            else:
                provider, _owner = self.rng.choice(SAFE_PROVIDERS)
                desired = [f"ns1.{provider}", f"ns2.{provider}"]
        removed = tuple(ns for ns in current if ns not in desired)
        added = tuple(ns for ns in desired if ns not in current)
        sponsor = self._sponsor_of(client.domain) or client.registrar
        if self._set_nameservers(sponsor, client.domain, desired, day=event.day):
            self.log.fixes.append(
                FixRecord(
                    day=event.day, domain=client.domain,
                    removed=removed, added=added, reason=reason,
                )
            )

    def _on_client_expire(self, event: Event) -> None:
        client: ClientPlan = event.payload["client"]
        registry = self.roster.registry_for(client.domain)
        if not registry.repository.domain_exists(client.domain):
            return
        sponsor = self._sponsor_of(client.domain) or client.registrar
        self._delete_domain(sponsor, client.domain, day=event.day)

    def _on_safe_birth(self, event: Event) -> None:
        safe = event.payload["safe"]
        self._register_domain(
            safe.registrar, safe.domain, day=event.day,
            nameservers=list(safe.ns_refs), period_years=10,
            registrant=f"registrant-{safe.domain}",
        )

    def _on_typo_birth(self, event: Event) -> None:
        typo = event.payload["typo"]
        nameservers = list(typo.typo_ns) + list(typo.good_ns[:1])
        self._register_domain(
            typo.registrar, typo.domain, day=event.day,
            nameservers=nameservers, period_years=10,
            registrant=f"registrant-{typo.domain}",
        )

    def _on_typo_fix(self, event: Event) -> None:
        typo = event.payload["typo"]
        self._set_nameservers(
            typo.registrar, typo.domain, list(typo.good_ns), day=event.day
        )

    def _on_test_start(self, event: Event) -> None:
        test = event.payload["test"]
        registry = self.roster.registry_for(test.domain)
        session = registry.session(test.registry_operator)
        for ns in test.ns_names:
            superordinate = self.psl.registered_domain(ns)
            if superordinate and not registry.repository.domain_exists(superordinate):
                session.domain_create(superordinate, day=event.day, period_years=1)
            if not registry.repository.host_exists(ns):
                session.host_create(ns, day=event.day)
        session.domain_create(
            test.domain, day=event.day, period_years=1, nameservers=list(test.ns_names)
        )

    def _on_test_end(self, event: Event) -> None:
        test = event.payload["test"]
        registry = self.roster.registry_for(test.domain)
        session = registry.session(test.registry_operator)
        session.domain_delete(test.domain, day=event.day)
        for ns in test.ns_names:
            session.host_delete(ns, day=event.day)
            superordinate = self.psl.registered_domain(ns)
            if superordinate and registry.repository.domain_exists(superordinate):
                session.domain_delete(superordinate, day=event.day)

    # -- Namecheap accident ------------------------------------------------------

    def _on_namecheap_setup(self, event: Event) -> None:
        nc = event.payload["plan"]
        day = event.day
        self._register_domain(
            nc.sponsor, nc.ns_domain, day=day, nameservers=[], period_years=30,
            registrant="Namecheap Inc.",
        )
        registrar = self.registrars[nc.sponsor]
        hosts = {
            host: [f"198.54.{i % 250}.{(i * 7) % 250 + 1}"]
            for i, host in enumerate(nc.host_names)
        }
        registrar.create_subordinate_hosts(self.roster, nc.ns_domain, hosts, day=day)
        registrar.update_nameservers(
            self.roster, nc.ns_domain, day=day, add=list(nc.host_names[:2])
        )

    def _on_namecheap_delete(self, event: Event) -> None:
        nc = event.payload["plan"]
        # The accidental deletion request: Enom's machinery runs exactly the
        # normal rename-then-delete sequence. The event is excluded from
        # hijacker offers to match the observed history (§4: the exposure
        # was repaired within days and the paper excludes it from analysis).
        self._is_accidental_context = True
        try:
            self._delete_domain(nc.sponsor, nc.ns_domain, day=event.day)
        finally:
            self._is_accidental_context = False

    def _on_namecheap_recover(self, event: Event) -> None:
        nc = event.payload["plan"]
        day = event.day
        self._register_domain(
            "namecheap", nc.ns_domain, day=day, nameservers=[], period_years=30,
            registrant="Namecheap Inc.",
        )
        registrar = self.registrars["namecheap"]
        hosts = {
            host: [f"198.54.{i % 250}.{(i * 7) % 250 + 1}"]
            for i, host in enumerate(nc.host_names)
        }
        registrar.create_subordinate_hosts(self.roster, nc.ns_domain, hosts, day=day)
        registrar.update_nameservers(
            self.roster, nc.ns_domain, day=day, add=list(nc.host_names[:2])
        )

    # -- registrar policy ----------------------------------------------------

    def _on_provision_sinks(self, event: Event) -> None:
        registrar = self.registrars[event.payload["registrar"]]
        day = event.day
        for effective, idiom in registrar.schedule.history():
            if effective > day:
                continue
            for sink in idiom.sink_domains_needed():
                if not self.roster.operates(sink):
                    continue
                registry = self.roster.registry_for(sink)
                if registry.repository.domain_exists(sink):
                    continue
                if self._register_domain(
                    registrar.ident, sink, day=day, nameservers=[],
                    period_years=30, registrant=registrar.display_name,
                ):
                    self.log.sink_events.append(
                        SinkEventRecord(
                            day=day, domain=sink,
                            registrar=registrar.ident, action="registered",
                        )
                    )

    def _on_sink_abandon(self, event: Event) -> None:
        registrar = event.payload["registrar"]
        sink = event.payload["sink"]
        self.log.sink_events.append(
            SinkEventRecord(
                day=event.day, domain=sink, registrar=registrar, action="abandoned"
            )
        )
        self.queue.push_new(
            event.day + 45, "sink_purge", registrar=registrar, sink=sink
        )

    def _on_sink_purge(self, event: Event) -> None:
        sink = event.payload["sink"]
        registry = self.roster.registry_for(sink)
        if not registry.repository.domain_exists(sink):
            return
        registry.repository.purge_domain(sink, day=event.day)
        self.whois.record_deletion(sink, day=event.day)
        self.queue.push_new(
            event.day + 20, "sink_seize", sink=sink, registrar=event.payload["registrar"]
        )

    def _on_sink_seize(self, event: Event) -> None:
        sink = event.payload["sink"]
        day = event.day
        registry = self.roster.registry_for(sink)
        if registry.repository.domain_exists(sink):
            return
        squatter_ns = ["ns1.parkingpad.net", "ns2.parkingpad.net"]
        if self._register_domain(
            "bulkreg", sink, day=day, nameservers=squatter_ns,
            period_years=5, registrant="sinksquatter",
        ):
            self.log.sink_events.append(
                SinkEventRecord(
                    day=day, domain=sink, registrar="bulkreg", action="seized"
                )
            )
            victims: set[str] = set()
            for ns in self.zonedb.all_nameservers():
                if Name(ns).is_strict_subdomain_of(sink):
                    victims |= self.zonedb.domains_of_ns(ns, day)
            self.log.hijacks.append(
                HijackRecord(
                    day=day, domain=sink, hijacker="sinksquatter",
                    nameservers=tuple(squatter_ns),
                    value_at_registration=len(victims),
                )
            )

    # -- hijackers ------------------------------------------------------------

    def _on_hijacker_register(self, event: Event) -> None:
        ident = event.payload["hijacker"]
        registered_domain = event.payload["registered_domain"]
        day = event.day
        actor = next(a for a in self.hijackers if a.ident == ident)
        group = self.groups.get(registered_domain)
        if group is None:
            return
        registry = self.roster.registry_for(registered_domain)
        if registry.repository.domain_exists(registered_domain):
            return  # someone (possibly another hijacker) got there first
        value = self._group_value(group, day)
        if value < actor.spec.min_value or not actor.has_capacity(day):
            return
        ns_hosts = list(actor.spec.ns_hosts())
        if self._register_domain(
            "bulkreg", registered_domain, day=day,
            nameservers=ns_hosts, period_years=1, registrant=actor.ident,
        ):
            actor.record_registration(day, registered_domain)
            self.log.hijacks.append(
                HijackRecord(
                    day=day, domain=registered_domain, hijacker=actor.ident,
                    nameservers=tuple(ns_hosts), value_at_registration=value,
                )
            )
            self.queue.push_new(
                day + 365, "hijack_renewal",
                hijacker=ident, registered_domain=registered_domain, anniversary=1,
            )

    def _on_hijack_renewal(self, event: Event) -> None:
        ident = event.payload["hijacker"]
        registered_domain = event.payload["registered_domain"]
        anniversary = event.payload["anniversary"]
        day = event.day
        actor = next(a for a in self.hijackers if a.ident == ident)
        registry = self.roster.registry_for(registered_domain)
        if not registry.repository.domain_exists(registered_domain):
            return
        group = self.groups.get(registered_domain)
        value = self._group_value(group, day) if group else 0
        if actor.decide_renewal(anniversary, value):
            self.registrars["bulkreg"].renew_domain(
                self.roster, registered_domain, day=day
            )
            self.whois.record_renewal(registered_domain, day=day)
            self.queue.push_new(
                day + 365, "hijack_renewal",
                hijacker=ident, registered_domain=registered_domain,
                anniversary=anniversary + 1,
            )
        else:
            self._delete_domain("bulkreg", registered_domain, day=day)

    # -- remediation --------------------------------------------------------------

    def _remediation_list(self, registrar_ident: str) -> list[RenameRecord]:
        # A remediating registrar fixes the delegations of every domain it
        # currently sponsors, regardless of which registrar's rename
        # created the sacrificial name ("domains for which they are the
        # current registrar", §7.1) — sponsorship is checked per domain
        # when the batch runs.
        cached = self._remediation_targets.get(registrar_ident)
        if cached is None:
            cached = [
                record
                for record in self.log.renames
                if record.hijackable and not record.accidental
            ]
            self._remediation_targets[registrar_ident] = cached
        return cached

    def _on_registrar_remediation(self, event: Event) -> None:
        """A registrar re-renames its hijackable names to the new idiom.

        Only delegations of domains the registrar itself sponsors can be
        touched (EPP isolation), and already-registered (hijacked)
        sacrificial domains are left alone — matching GoDaddy's observed
        behaviour in Table 5.
        """
        ident = event.payload["registrar"]
        batch, batches = event.payload["batch"], event.payload["batches"]
        registrar = self.registrars[ident]
        day = event.day
        idiom = registrar.current_idiom(day)
        if idiom.hijackable:
            return  # remediation presumes the new idiom is already adopted
        targets = self._remediation_list(ident)
        for index, record in enumerate(targets):
            if index % batches != batch:
                continue
            registered = self.psl.registered_domain(record.new_name)
            if registered is None:
                continue
            if self.roster.operates(registered):
                sink_registry = self.roster.registry_for(registered)
                if sink_registry.repository.domain_exists(registered):
                    continue  # hijacked (or collided): cannot safely re-point
            for domain in sorted(self.zonedb.domains_of_ns(record.new_name, day)):
                registry = self.roster.registry_for(domain)
                if not registry.repository.domain_exists(domain):
                    continue
                if registry.repository.domain(domain).sponsor != ident:
                    continue
                replacement = idiom.rename(record.new_name, registrar.rng, psl=self.psl)
                if self._set_nameservers(
                    ident, domain,
                    [ns for ns in self._current_nameservers(domain) or []
                     if ns != record.new_name] + [replacement],
                    day=day,
                ):
                    self.log.fixes.append(
                        FixRecord(
                            day=day, domain=domain,
                            removed=(record.new_name,), added=(replacement,),
                            reason="notification",
                        )
                    )
                    # The replacement is itself a (non-hijackable)
                    # sacrificial name: record it so ground truth matches
                    # what the zone data shows (Table 6 counts these).
                    self.log.renames.append(
                        RenameRecord(
                            day=day,
                            old_name=record.new_name,
                            new_name=replacement,
                            registrar=ident,
                            repository=self.roster.registry_for(domain).operator,
                            idiom_id=idiom.idiom_id,
                            hijackable=False,
                            linked_domains=(domain,),
                            remediation=True,
                        )
                    )

    def _on_markmonitor_remediation(self, event: Event) -> None:
        day = event.day
        for hoster in self.plan.hosters:
            for client in hoster.clients:
                if not client.brand:
                    continue
                current = self._current_nameservers(client.domain)
                if current is None:
                    continue
                bad = [ns for ns in current if ns not in self._safe_ns_names]
                if not bad:
                    continue
                provider, _owner = self.rng.choice(SAFE_PROVIDERS)
                desired = [f"ns1.{provider}", f"ns2.{provider}"]
                if self._set_nameservers(client.registrar, client.domain, desired, day=day):
                    self.log.fixes.append(
                        FixRecord(
                            day=day, domain=client.domain,
                            removed=tuple(bad), added=tuple(desired),
                            reason="markmonitor",
                        )
                    )


def build_world(config: ScenarioConfig | None = None) -> World:
    """Construct (but do not run) a world for the given scenario."""
    world = World(config or default_scenario())
    world.build()
    return world


def run_default_world(
    seed: int = 2021, scale: float = 1.0, *, use_cache: bool = True
) -> WorldResult:
    """Run the canonical scenario (optionally scaled), with caching.

    Tests and every benchmark share the same world through the
    process-wide content-addressed artifact cache (keyed by the scenario
    digest, bounded LRU), so the expensive simulation runs once per
    process per configuration.
    """
    from repro.store.artifacts import ArtifactKey, default_cache, scenario_digest

    config = default_scenario(seed)
    if scale != 1.0:
        config = config.scaled(scale)
    key = ArtifactKey.build("world", scenario_digest(config))
    cache = default_cache()
    if use_cache:
        cached = cache.get(key)
        if cached is not None:
            return cached
    result = World(config).run()
    if use_cache:
        cache.put(key, result, memory_only=True)
    return result
