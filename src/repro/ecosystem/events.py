"""Simulation events, the event queue, and the ground-truth log.

The world is event-driven: everything that happens on the timeline is an
:class:`Event` popped from the :class:`EventQueue` in (day, sequence)
order. The :class:`EventLog` accumulates ground-truth records of what the
simulation *actually did* (renames performed, hijack registrations, fixes)
— used to validate the detection pipeline, never consumed by it.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True, slots=True)
class Event:
    """One scheduled simulation action.

    ``kind`` selects the handler in the world; ``payload`` carries the
    handler-specific data (entity references, names, parameters).
    """

    day: int
    kind: str
    payload: dict[str, Any]


class EventQueue:
    """A day-ordered queue with stable FIFO ordering within a day."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Event]] = []
        self._counter = itertools.count()

    def push(self, event: Event) -> None:
        """Schedule an event."""
        heapq.heappush(self._heap, (event.day, next(self._counter), event))

    def push_new(self, day: int, kind: str, **payload: Any) -> None:
        """Construct and schedule an event in one call."""
        self.push(Event(day=day, kind=kind, payload=payload))

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        return heapq.heappop(self._heap)[2]

    def peek_day(self) -> int | None:
        """The day of the earliest pending event, or None if empty."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


# -- ground-truth records ----------------------------------------------------


@dataclass(frozen=True, slots=True)
class RenameRecord:
    """Ground truth: one sacrificial rename performed by a registrar."""

    day: int
    old_name: str
    new_name: str
    registrar: str
    repository: str
    idiom_id: str
    hijackable: bool
    linked_domains: tuple[str, ...]
    accidental: bool = False
    remediation: bool = False


@dataclass(frozen=True, slots=True)
class HijackRecord:
    """Ground truth: a hijacker registered a sacrificial domain."""

    day: int
    domain: str
    hijacker: str
    nameservers: tuple[str, ...]
    value_at_registration: int


@dataclass(frozen=True, slots=True)
class FixRecord:
    """Ground truth: a domain's delegation was repaired."""

    day: int
    domain: str
    removed: tuple[str, ...]
    added: tuple[str, ...]
    reason: str  # "organic", "notification", "markmonitor", "namecheap"


@dataclass(frozen=True, slots=True)
class SinkEventRecord:
    """Ground truth: a sink domain was provisioned, abandoned, or seized."""

    day: int
    domain: str
    registrar: str
    action: str  # "registered", "abandoned", "seized"


@dataclass
class EventLog:
    """The accumulated ground truth of one simulation run."""

    renames: list[RenameRecord] = field(default_factory=list)
    hijacks: list[HijackRecord] = field(default_factory=list)
    fixes: list[FixRecord] = field(default_factory=list)
    sink_events: list[SinkEventRecord] = field(default_factory=list)

    def renames_by_new_name(self) -> dict[str, RenameRecord]:
        """Index renames by the sacrificial name they created."""
        return {record.new_name: record for record in self.renames}

    def hijacks_by_domain(self) -> dict[str, HijackRecord]:
        """Index hijack registrations by the domain registered."""
        return {record.domain: record for record in self.hijacks}

    def renames_in(self, start_day: int, end_day: int) -> list[RenameRecord]:
        """Renames with ``start_day <= day < end_day``."""
        return [r for r in self.renames if start_day <= r.day < end_day]

    def summary(self) -> dict[str, int]:
        """Headline counts, for quick inspection."""
        return {
            "renames": len(self.renames),
            "hijackable_renames": sum(1 for r in self.renames if r.hijackable),
            "hijacks": len(self.hijacks),
            "fixes": len(self.fixes),
            "sink_events": len(self.sink_events),
        }
