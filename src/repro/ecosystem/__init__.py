"""The simulated registration ecosystem.

Builds a whole miniature DNS registration world — registries, registrars,
hosting companies whose nameservers other domains depend on, registrant
behaviour, hijacker actors — and runs it over the paper's 2011–2021
timeline. The world's observable outputs (the zone database and WHOIS
archive) feed the detection pipeline; its internal ground-truth event log
is used only for validation, never by the methodology itself.
"""

from repro.ecosystem.config import (
    HijackerSpec,
    RegistrarSpec,
    ScenarioConfig,
    default_scenario,
    small_scenario,
    tiny_scenario,
)
from repro.ecosystem.events import EventLog, HijackRecord, RenameRecord
from repro.ecosystem.world import World, WorldResult, build_world, run_default_world

__all__ = [
    "HijackerSpec",
    "RegistrarSpec",
    "ScenarioConfig",
    "default_scenario",
    "small_scenario",
    "tiny_scenario",
    "EventLog",
    "HijackRecord",
    "RenameRecord",
    "World",
    "WorldResult",
    "build_world",
    "run_default_world",
]
