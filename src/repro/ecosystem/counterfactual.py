"""Counterfactual scenarios: what if the fixes had always been in place?

Variants of the canonical scenario used by the ablation benchmarks:

* :func:`invalid_fix_scenario` — every registrar renames under the
  reserved ``.invalid`` TLD from day one (the paper's §7.3 proposal).
  Expected outcome: zero hijackable sacrificial names, ever.
* :func:`all_sinks_scenario` — every registrar uses a registered sink
  domain from day one (the "ubiquitous sink" short-term fix). Expected:
  zero hijackable names *while the sinks stay registered* — the residual
  risk the paper warns about is sink abandonment.
* :func:`greedy_hijackers_scenario` — hijackers with no selectivity
  (threshold 1, near-certain interest, deep pockets). Expected: the
  hijacked-NS fraction balloons while the domain/NS disparity collapses,
  demonstrating that Table 3's 5%-vs-32% split is a *behavioural*
  signature, not an artifact.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import replace

from repro.ecosystem.config import (
    HijackerSpec,
    RegistrarSpec,
    ScenarioConfig,
    default_scenario,
)
from repro.epp.extensions import invalid_tld_idiom
from repro.registrar.idioms import SinkDomainIdiom


def _with_uniform_idiom(
    config: ScenarioConfig, idiom_for: "callable[[RegistrarSpec], object]"
) -> ScenarioConfig:
    registrars = tuple(
        replace(
            spec,
            idiom_schedule=((_dt.date(2005, 1, 1), idiom_for(spec)),),
            sink_abandonments=(),
        )
        for spec in config.registrars
    )
    return replace(config, registrars=registrars, sink_abandon_enabled=False)


def invalid_fix_scenario(seed: int = 2021, scale: float = 1.0) -> ScenarioConfig:
    """The reserved-TLD world: all renames land under ``.invalid``."""
    config = default_scenario(seed)
    if scale != 1.0:
        config = config.scaled(scale)
    return _with_uniform_idiom(config, lambda _spec: invalid_tld_idiom())


def all_sinks_scenario(seed: int = 2021, scale: float = 1.0) -> ScenarioConfig:
    """The ubiquitous-sink world: every registrar holds its own sink."""
    config = default_scenario(seed)
    if scale != 1.0:
        config = config.scaled(scale)
    return _with_uniform_idiom(
        config, lambda spec: SinkDomainIdiom(f"hold-{spec.ident}.com")
    )


def greedy_hijackers_scenario(seed: int = 2021, scale: float = 1.0) -> ScenarioConfig:
    """Selectivity ablation: hijackers take everything they see."""
    config = default_scenario(seed)
    if scale != 1.0:
        config = config.scaled(scale)
    hijackers = tuple(
        replace(
            spec,
            min_value=1,
            interest=3.0,          # saturates the interest formula
            monthly_capacity=10_000,
        )
        for spec in config.hijackers
    )
    return replace(config, hijackers=hijackers)


def no_remediation_scenario(seed: int = 2021, scale: float = 1.0) -> ScenarioConfig:
    """Notification ablation: nobody changes idioms or re-renames.

    Every registrar keeps its pre-notification idiom schedule and no
    remediation campaign runs, isolating the organic baseline that
    Table 5 compares against.
    """
    config = default_scenario(seed)
    if scale != 1.0:
        config = config.scaled(scale)
    notification = _dt.date(2020, 9, 15)
    registrars = tuple(
        replace(
            spec,
            idiom_schedule=tuple(
                (day, idiom) for day, idiom in spec.idiom_schedule
                if day < notification
            ),
            remediate_on_notification=False,
        )
        for spec in config.registrars
    )
    return replace(config, registrars=registrars)


def paper_vs_counterfactual_labels() -> dict[str, str]:
    """Human-readable labels for the ablation report."""
    return {
        "baseline": "observed practice (paper's world)",
        "invalid": "§7.3 fix: rename under reserved .invalid",
        "sinks": "§7.3 short-term fix: ubiquitous sink domains",
        "greedy": "ablation: non-selective hijackers",
        "no-remediation": "ablation: notification never happens",
    }
