"""Hijacker actors: monitoring, selection, registration, and renewal.

Hijackers in the paper's data behave like return-on-investment-driven
monitors: they watch for newly created sacrificial nameserver names,
preferentially register the ones many domains delegate to, move within
days for high-value targets, and stop renewing registrations that are no
longer worth the fee (the 1-year/2-year cliffs of Figure 7).

:class:`HijackerActor` implements that policy. The world calls
:meth:`consider` when a new hijackable sacrificial group appears and
:meth:`decide_renewal` on registration anniversaries.
"""

from __future__ import annotations

import math
import random

from repro import simtime
from repro.ecosystem.config import HijackerSpec


class HijackerActor:
    """One hijacker's decision process (stateful: capacity per month)."""

    def __init__(self, spec: HijackerSpec, rng: random.Random) -> None:
        self.spec = spec
        self.rng = rng
        self.active_from = simtime.to_day(spec.active_from)
        self.active_until = simtime.to_day(spec.active_until)
        self._monthly_registrations: dict[int, int] = {}
        self.registered_domains: set[str] = set()

    @property
    def ident(self) -> str:
        """The actor's identifier."""
        return self.spec.ident

    def is_active(self, day: int) -> bool:
        """True if the actor is monitoring on ``day``."""
        return self.active_from <= day < self.active_until

    def consider(self, day: int, value: int) -> int | None:
        """Decide whether to go after a new opportunity.

        ``value`` is the number of domains currently delegated to the
        sacrificial group. Returns the planned registration delay in days,
        or ``None`` to pass. Capacity is only *checked* here; it is
        consumed when the registration actually succeeds.
        """
        if not self.is_active(day) or value < self.spec.min_value:
            return None
        # Interest grows with value above the threshold: big groups are
        # near-certain registrations, marginal ones are coin flips.
        excess = value / max(1, self.spec.min_value)
        probability = min(0.70, self.spec.interest * (0.40 + 0.25 * math.log2(excess + 1.0)))
        if self.rng.random() > probability:
            return None
        return self.registration_delay(value)

    def registration_delay(self, value: int) -> int:
        """Sample days-until-registration, faster for higher value.

        Produces the Figure 6 shape: half of high-value targets within
        about a week, a long tail of weeks-to-months for marginal ones.
        """
        mu = math.log(150.0) - 0.3 * math.log(max(1.0, value)) - math.log(self.spec.speed)
        delay = int(self.rng.lognormvariate(mu, 1.6))
        return max(1, min(delay, 500))

    def has_capacity(self, day: int) -> bool:
        """True if this month's registration budget is not exhausted."""
        month = simtime.month_index(day)
        return self._monthly_registrations.get(month, 0) < self.spec.monthly_capacity

    def record_registration(self, day: int, domain: str) -> None:
        """Consume capacity and remember the acquisition."""
        month = simtime.month_index(day)
        self._monthly_registrations[month] = (
            self._monthly_registrations.get(month, 0) + 1
        )
        self.registered_domains.add(domain)

    def decide_renewal(self, anniversary: int, current_value: int) -> bool:
        """Renew the registration for another year?

        ``anniversary`` is 1 for the first renewal decision. A dead asset
        (no domains still delegating) is almost never renewed; otherwise
        the per-anniversary probabilities from the spec apply.
        """
        if current_value <= 0:
            return self.rng.random() < 0.05
        probs = self.spec.renew_probs
        probability = probs[min(anniversary - 1, len(probs) - 1)]
        return self.rng.random() < probability

    def __repr__(self) -> str:
        return f"HijackerActor({self.ident!r}, ns={self.spec.ns_domain!r})"
