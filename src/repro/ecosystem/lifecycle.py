"""Plan-to-schedule translation: fill the event queue from a Plan.

Separating scheduling from execution keeps the world engine a pure event
interpreter and makes the schedule unit-testable: given a plan, the set
of queued events is a deterministic function of it.
"""

from __future__ import annotations

from repro import simtime
from repro.ecosystem.config import ScenarioConfig
from repro.ecosystem.events import EventQueue
from repro.ecosystem.population import GRACE_POLICY, Plan


def schedule_plan(queue: EventQueue, plan: Plan, config: ScenarioConfig) -> None:
    """Queue every planned entity's lifecycle events."""
    for hoster in plan.hosters:
        queue.push_new(hoster.birth_day, "hoster_birth", hoster=hoster)
        # The registration expires at death_day and then walks the
        # registry grace pipeline: suspended (out of the zone) at the
        # redemption phase, purged — triggering the rename machinery —
        # at the end of pending-delete.
        starts = GRACE_POLICY.phase_starts(hoster.death_day)
        from repro.epp.expiry import ExpiryPhase
        suspend = starts[ExpiryPhase.REDEMPTION]
        purge = starts[ExpiryPhase.PURGED]
        if suspend < config.end_day:
            queue.push_new(suspend, "hoster_suspend", hoster=hoster)
        if purge < config.end_day:
            queue.push_new(purge, "hoster_purge", hoster=hoster)
        for client in hoster.clients:
            queue.push_new(client.birth_day, "client_birth", client=client)
            if client.transfer_day is not None and client.transfer_day < config.end_day:
                queue.push_new(client.transfer_day, "client_transfer", client=client)
            if client.fix_day is not None and client.fix_day < config.end_day:
                queue.push_new(client.fix_day, "client_fix", client=client)
            if client.expiry_day is not None and client.expiry_day < config.end_day:
                queue.push_new(client.expiry_day, "client_expire", client=client)

    for safe in plan.safe_domains:
        queue.push_new(safe.birth_day, "safe_birth", safe=safe)

    for typo in plan.typo_domains:
        queue.push_new(typo.birth_day, "typo_birth", typo=typo)
        if typo.fix_day is not None and typo.fix_day < config.end_day:
            queue.push_new(typo.fix_day, "typo_fix", typo=typo)

    for test in plan.test_ns:
        queue.push_new(test.start_day, "test_start", test=test)
        queue.push_new(test.end_day, "test_end", test=test)

    if plan.namecheap is not None:
        nc = plan.namecheap
        queue.push_new(config.start_day, "namecheap_setup", plan=nc)
        for client in nc.clients:
            queue.push_new(client.birth_day, "client_birth", client=client)
        queue.push_new(nc.day, "namecheap_delete", plan=nc)
        queue.push_new(nc.day + 1, "namecheap_recover", plan=nc)
        for client in nc.clients:
            if client.fix_day is not None and client.fix_day < config.end_day:
                queue.push_new(
                    client.fix_day, "client_fix", client=client, reason="namecheap"
                )


def schedule_registrar_policy(queue: EventQueue, config: ScenarioConfig) -> None:
    """Queue idiom adoptions, sink provisioning, and abandonments."""
    for spec in config.registrars:
        for effective_date, _idiom in spec.idiom_schedule:
            day = max(config.start_day, simtime.to_day(effective_date))
            queue.push_new(day, "provision_sinks", registrar=spec.ident)
        if config.sink_abandon_enabled:
            for abandon_date, sink in spec.sink_abandonments:
                day = simtime.to_day(abandon_date)
                queue.push_new(day, "sink_abandon", registrar=spec.ident, sink=sink)


def schedule_remediation(queue: EventQueue, config: ScenarioConfig) -> None:
    """Queue the post-notification remediation campaigns (§7)."""
    base = config.notification_day
    remediators = [
        spec for spec in config.registrars if spec.remediate_on_notification
    ]
    for spec in remediators:
        if spec.ident == "markmonitor":
            queue.push_new(base + 55, "markmonitor_remediation", registrar=spec.ident)
        else:
            # Spread the re-rename sweep over several weekly batches.
            for batch in range(8):
                queue.push_new(
                    base + 25 + batch * 7,
                    "registrar_remediation",
                    registrar=spec.ident,
                    batch=batch,
                    batches=8,
                )
