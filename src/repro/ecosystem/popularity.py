"""A synthetic top-sites list (the Alexa Top 1M substitute).

The paper uses the Alexa list for one finding: of the domains on the
Alexa Top 1M as of September 2020, only ~500 were ever hijackable —
hijacked names are overwhelmingly unpopular or moribund. The substitute
builds a ranked list over the simulated population with the same bias:
popular sites overwhelmingly sit on professional nameserver
infrastructure (the safe providers), so exposed domains are rare on the
list but not absent.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.zonedb.database import ZoneDatabase


@dataclass(frozen=True)
class TopList:
    """A ranked list of popular domains at one reference day."""

    day: int
    ranked: tuple[str, ...]

    def rank_of(self, domain: str) -> int | None:
        """1-based rank, or None if the domain is not listed."""
        try:
            return self.ranked.index(domain) + 1
        except ValueError:
            return None

    def __contains__(self, domain: str) -> bool:
        return domain in self.ranked

    def __len__(self) -> int:
        return len(self.ranked)


def build_top_list(
    zonedb: ZoneDatabase,
    safe_ns_names: set[str],
    *,
    day: int,
    size: int,
    exposed_share: float = 0.002,
    seed: int = 0,
) -> TopList:
    """Sample a top list from the domains alive on ``day``.

    Domains whose delegation uses only professional (safe-provider)
    nameservers fill almost the whole list; a small ``exposed_share``
    of slots goes to other domains — mirroring how a handful of names
    on the real Alexa list turned out to be hijackable.
    """
    rng = random.Random(seed)
    professional: list[str] = []
    other: list[str] = []
    for domain in zonedb.all_domains():
        ns_now = zonedb.nameservers_of(domain, day)
        if not ns_now:
            continue
        # Popular sites run on *stable* professional DNS: the whole
        # delegation history, not just today's, sits on managed
        # infrastructure. Domains that ever pointed elsewhere (including
        # ones that recovered from an exposure) fall in the long tail.
        history_ns = {record.ns for record in zonedb.domain_records(domain)}
        if history_ns <= safe_ns_names:
            professional.append(domain)
        else:
            other.append(domain)
    rng.shuffle(professional)
    rng.shuffle(other)
    exposed_slots = max(1, int(size * exposed_share)) if other else 0
    picked = professional[: size - exposed_slots] + other[:exposed_slots]
    rng.shuffle(picked)
    return TopList(day=day, ranked=tuple(picked[:size]))


def hijackable_on_list(top_list: TopList, hijackable_domains: set[str]) -> list[str]:
    """The §5.6 statistic: listed domains that were ever hijackable."""
    return [domain for domain in top_list.ranked if domain in hijackable_domains]
