"""Object-lifecycle ledger: when each EPP object existed, per repository.

Fed by the registries' audit streams (alongside :class:`ZoneMirror`),
the ledger records the existence intervals of every domain and host
name, keyed by ``(repository operator, name)`` — a rename closes the
old name and opens the new one, matching how the zone database sees the
world. The per-repository key matters: the same host name can exist as
an internal object in one repository and an external object in another,
and those lifecycles are independent (that independence is the paper's
cross-repository risk). ``scenario_io.world_to_dict`` serializes the
ledger so the scenario linter can check RFC 5731/5732 referential
integrity statically, without replaying the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class NameLifetime:
    """Existence history of one object name inside one repository."""

    operator: str
    #: Closed ``[start, end)`` spans, in event order.
    spans: list[tuple[int, int]] = field(default_factory=list)
    #: Day the name's current span opened, if it is still open.
    open_since: int | None = None
    #: Deletion days that were registry purges (bypassing RFC advice).
    purge_days: list[int] = field(default_factory=list)

    def open(self, day: int) -> None:
        """Start a span (idempotent while already open)."""
        if self.open_since is None:
            self.open_since = day

    def close(self, day: int, *, purge: bool = False) -> None:
        """End the current span, dropping zero-length existence."""
        if self.open_since is None:
            return
        if day > self.open_since:
            self.spans.append((self.open_since, day))
            if purge:
                self.purge_days.append(day)
        self.open_since = None

    def intervals(self) -> list[tuple[int, int | None]]:
        """Every span, the open one (if any) last with ``None`` end."""
        result: list[tuple[int, int | None]] = list(self.spans)
        if self.open_since is not None:
            result.append((self.open_since, None))
        return result


class LifecycleLedger:
    """Domain/host lifecycles across every repository of one world."""

    def __init__(self) -> None:
        self.domains: dict[tuple[str, str], NameLifetime] = {}
        self.hosts: dict[tuple[str, str], NameLifetime] = {}

    def _life(
        self,
        table: dict[tuple[str, str], NameLifetime],
        name: str,
        operator: str,
    ) -> NameLifetime:
        key = (operator, name)
        life = table.get(key)
        if life is None:
            life = NameLifetime(operator=operator)
            table[key] = life
        return life

    def record(
        self, day: int, operation: str, details: dict, operator: str
    ) -> None:
        """Audit-hook entry point (same signature family as ZoneMirror)."""
        if operation == "domain:create":
            self._life(self.domains, details["domain"], operator).open(day)
        elif operation == "domain:delete":
            self._life(self.domains, details["domain"], operator).close(day)
        elif operation == "domain:purge":
            self._life(self.domains, details["domain"], operator).close(
                day, purge=True
            )
        elif operation == "host:create":
            self._life(self.hosts, details["host"], operator).open(day)
        elif operation == "host:delete":
            self._life(self.hosts, details["host"], operator).close(day)
        elif operation == "host:rename":
            self._life(self.hosts, details["old"], operator).close(day)
            self._life(self.hosts, details["new"], operator).open(day)
