"""Registry test-nameserver identification (§3.2.2).

Pattern mining over the candidate set surfaces naming patterns used for
registry testing — nameservers like
``EMT-NS1.EMT-T-407979799-1575645880157-2-U.COM``. The paper confirmed
their nature with the registry and removed 28,614 of them from the
candidate set. The confirmed test patterns are encoded here; the filter
simply partitions candidates.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable

from repro.detection.candidates import CandidateNameserver

#: Patterns confirmed (per the paper, via registry outreach) to be
#: registry testing infrastructure rather than renaming idioms.
DEFAULT_TEST_PATTERNS: tuple[str, ...] = (
    r"^emt-",          # the EMT- prefix family
    r"\.emt-t-[0-9]+-[0-9]+-[0-9]+-u\.",  # the EMT target-domain shape
)


@dataclass
class TestNameserverFilter:
    """Removes confirmed registry-test nameservers from the candidates."""

    # Not a pytest test class, despite the Test- prefix.
    __test__ = False

    patterns: tuple[str, ...] = DEFAULT_TEST_PATTERNS
    _compiled: list[re.Pattern[str]] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        self._compiled = [re.compile(p, re.IGNORECASE) for p in self.patterns]

    def is_test_nameserver(self, name: str) -> bool:
        """True if ``name`` matches a confirmed test pattern."""
        return any(pattern.search(name) for pattern in self._compiled)

    def partition(
        self, candidates: Iterable[CandidateNameserver]
    ) -> tuple[list[CandidateNameserver], list[CandidateNameserver]]:
        """Split candidates into (kept, removed-as-test)."""
        kept: list[CandidateNameserver] = []
        removed: list[CandidateNameserver] = []
        for candidate in candidates:
            if self.is_test_nameserver(candidate.name):
                removed.append(candidate)
            else:
                kept.append(candidate)
        return kept, removed
