"""Static resolvability of nameserver names over time.

A simplified version of the static-resolution methodology of Akiwate et
al. (2020), as used by the paper: a nameserver name has a valid static
resolution path on a given day if the zone data shows either

* glue addresses for the exact host name, or
* a delegation for the host's registered domain (so a resolver can walk
  TLD → registered domain → host).

Names under TLDs outside the data set cannot be assessed and are treated
as *unknown* — the paper is conservative in the same way.
"""

from __future__ import annotations

from repro.dnscore.names import Name
from repro.dnscore.psl import PublicSuffixList, default_psl
from repro.simtime import Interval, merge_intervals
from repro.zonedb.database import ZoneDatabase


class ResolvabilityAnalyzer:
    """Derives per-nameserver resolvable date ranges from zone history."""

    def __init__(
        self, zonedb: ZoneDatabase, *, psl: PublicSuffixList | None = None
    ) -> None:
        self.zonedb = zonedb
        self.psl = psl or default_psl()

    def is_covered(self, ns: str) -> bool:
        """True if the data set can assess this name at all."""
        return self.zonedb.covers(ns)

    def is_resolvable(self, ns: str, day: int) -> bool | None:
        """Static resolvability of ``ns`` on ``day``.

        Returns ``None`` (unknown) when the name's TLD is outside the
        data set.
        """
        if not self.is_covered(ns):
            return None
        ns_text = Name(ns).text
        if self.zonedb.glue_present(ns_text, day):
            return True
        registered = self.psl.registered_domain(ns_text)
        if registered is None:
            return False
        return self.zonedb.domain_present(registered, day)

    def resolvable_intervals(self, ns: str) -> list[Interval]:
        """All date ranges with a valid static resolution path."""
        ns_text = Name(ns).text
        intervals = list(self.zonedb.glue_intervals(ns_text))
        registered = self.psl.registered_domain(ns_text)
        if registered is not None:
            intervals.extend(self.zonedb.domain_presence_intervals(registered))
        return merge_intervals(intervals)

    def first_resolvable(self, ns: str) -> int | None:
        """The first day ``ns`` had a static resolution path, if ever."""
        intervals = self.resolvable_intervals(ns)
        if not intervals:
            return None
        return min(interval.start for interval in intervals)

    def unresolvable_at_first_reference(self, ns: str) -> bool | None:
        """Was ``ns`` unresolvable when a domain first delegated to it?

        This is the §3.2.1 candidate criterion. Returns ``None`` when the
        name was never referenced or cannot be assessed.
        """
        first_reference = self.zonedb.first_seen(ns)
        if first_reference is None:
            return None
        resolvable = self.is_resolvable(ns, first_reference)
        if resolvable is None:
            return None
        return not resolvable
