"""Original-nameserver matching (§3.2.3).

Some idioms derive the sacrificial name from the nameserver being renamed
(``ns2.internetemc.com`` → ``ns2.internetemc1aj2kdy.biz``). To recover
the original, the matcher looks at each domain that delegated to the
candidate on its first day and asks which of that domain's nameservers
was *last seen the day before* — i.e. whose delegation interval closed
exactly when the candidate's opened. If the original's registered-domain
label is a prefix-substring of the candidate's, the candidate is a
rename of that nameserver.

The sponsoring registrar of the original nameserver's domain at rename
time (from the WHOIS archive) then attributes the idiom to a registrar.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dnscore.names import Name
from repro.dnscore.psl import PublicSuffixList, default_psl
from repro.detection.candidates import CandidateNameserver
from repro.whois.archive import WhoisArchive
from repro.zonedb.database import ZoneDatabase

#: Minimum original-SLD length for a substring match to be considered
#: meaningful; tiny labels would match almost anything.
MIN_SLD_LENGTH = 3


@dataclass(frozen=True, slots=True)
class MatchResult:
    """A candidate matched to the nameserver it replaced."""

    candidate: str
    first_seen: int
    original_ns: str
    original_domain: str
    witness_domain: str
    registrar: str | None

    @property
    def sld_suffix(self) -> str:
        """What the idiom appended to the original SLD (may be empty)."""
        original_sld = self.original_domain.split(".", 1)[0]
        candidate_sld = Name(self.candidate).labels[-2]
        return candidate_sld[len(original_sld):]


class OriginalNameserverMatcher:
    """Runs the history join for a batch of candidates."""

    def __init__(
        self,
        zonedb: ZoneDatabase,
        whois: WhoisArchive,
        *,
        psl: PublicSuffixList | None = None,
    ) -> None:
        self.zonedb = zonedb
        self.whois = whois
        self.psl = psl or default_psl()
        # PSL suffix walks are pure per name but the join re-asks them for
        # every (candidate, witness, previous_ns) triple; the same handful
        # of nameserver names recur across candidates, so memoize.
        self._registered: dict[str, str | None] = {}

    def _registered_domain(self, name: str) -> str | None:
        try:
            return self._registered[name]
        except KeyError:
            registered = self.psl.registered_domain(name)
            self._registered[name] = registered
            return registered

    def match(self, candidate: CandidateNameserver) -> MatchResult | None:
        """Find the original nameserver for one candidate, if any."""
        candidate_registered = self._registered_domain(candidate.name)
        if candidate_registered is None:
            return None
        candidate_sld = candidate_registered.split(".", 1)[0]
        day = candidate.first_seen
        for domain in candidate.referencing_domains:
            for previous_ns in sorted(self.zonedb.nameservers_removed_on(domain, day)):
                original_domain = self._registered_domain(previous_ns)
                if original_domain is None:
                    continue
                original_sld = original_domain.split(".", 1)[0]
                if len(original_sld) < MIN_SLD_LENGTH:
                    continue
                if not candidate_sld.startswith(original_sld):
                    continue
                registrar = self.whois.registrar_at(original_domain, day - 1)
                if registrar is None:
                    # Coarser-than-daily zone data can quantize the rename
                    # day past the original domain's deletion; fall back to
                    # its last sponsor before the rename.
                    registrar = self.whois.last_registrar_before(
                        original_domain, day
                    )
                return MatchResult(
                    candidate=candidate.name,
                    first_seen=day,
                    original_ns=previous_ns,
                    original_domain=original_domain,
                    witness_domain=domain,
                    registrar=registrar,
                )
        return None

    def match_all(
        self, candidates: list[CandidateNameserver]
    ) -> tuple[list[MatchResult], list[CandidateNameserver]]:
        """Match a batch; returns (matches, unmatched candidates)."""
        matches: list[MatchResult] = []
        unmatched: list[CandidateNameserver] = []
        for candidate in candidates:
            result = self.match(candidate)
            if result is None:
                unmatched.append(candidate)
            else:
                matches.append(result)
        return matches, unmatched
