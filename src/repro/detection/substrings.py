"""Frequent-substring mining over nameserver names (§3.2.2).

The paper built "a tool that, given a list of domain names as input,
looks for common substrings across them", applied it to the ~300K
candidates, and read the renaming idioms off the top of the output
(PLEASEDROPTHISHOST, DROPTHISHOST, the sink domains, the EMT- test
pattern, ...). This module is that tool.

The miner counts every substring within a length window across the input
names (each name contributes each distinct substring once), keeps those
above a support threshold, and suppresses non-maximal substrings: a
substring contained in a longer surviving pattern with (nearly) the same
support adds no information and is dropped.

Counting and selection are split so the incremental engine can maintain
a standing :class:`SubstringCounter` — day-over-day candidate churn
adjusts per-name counts in place instead of re-scanning the full
candidate set — while the batch miner builds the same counter in one
pass. Selection is a pure function of the counts, so both schedules
produce identical patterns for identical name multisets.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

#: Default mining parameters (the values the pipeline uses).
DEFAULT_MIN_LENGTH = 5
DEFAULT_MAX_LENGTH = 24


@dataclass(frozen=True, slots=True)
class SubstringPattern:
    """One mined pattern with its support."""

    substring: str
    support: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.substring!r} x{self.support}"


def _substrings_of(name: str, min_len: int, max_len: int) -> set[str]:
    found: set[str] = set()
    n = len(name)
    for length in range(min_len, min(max_len, n) + 1):
        for start in range(n - length + 1):
            found.add(name[start:start + length])
    return found


def _select_patterns(
    counts: "Counter[str]",
    *,
    min_support: int,
    top: int,
    containment_slack: float,
) -> list[SubstringPattern]:
    """Pure pattern selection over a substring-support counter.

    Keeps substrings above ``min_support``, ordered by (support,
    length), with non-maximal substrings removed: a pattern is dropped
    when some longer surviving pattern contains it and retains at least
    ``containment_slack`` of its support.
    """
    frequent = [
        (substring, support)
        for substring, support in counts.items()
        if support >= min_support
    ]
    # Sort so longer, better-supported strings are considered first.
    frequent.sort(key=lambda item: (-item[1], -len(item[0]), item[0]))
    kept: list[tuple[str, int]] = []
    for substring, support in frequent:
        redundant = False
        for kept_sub, kept_support in kept:
            if (
                substring in kept_sub
                and len(substring) < len(kept_sub)
                and kept_support >= containment_slack * support
            ):
                redundant = True
                break
        if not redundant:
            kept.append((substring, support))
        if len(kept) >= top * 4:
            break
    kept.sort(key=lambda item: (-item[1], -len(item[0]), item[0]))
    return [SubstringPattern(s, c) for s, c in kept[:top]]


class SubstringCounter:
    """Standing substring-support counts over a mutable name multiset.

    The incremental miner's operator state: :meth:`add` and
    :meth:`discard` adjust counts by one name's substring set, so a
    day's candidate churn costs O(changed names), not O(all names).
    The counter is a pure fold — any add/discard sequence reaching the
    same multiset yields the same counts the batch scan produces.
    """

    __slots__ = ("min_length", "max_length", "counts", "names", "revision")

    def __init__(
        self,
        *,
        min_length: int = DEFAULT_MIN_LENGTH,
        max_length: int = DEFAULT_MAX_LENGTH,
    ) -> None:
        self.min_length = min_length
        self.max_length = max_length
        self.counts: Counter[str] = Counter()
        #: The name multiset folded in so far (lower-cased).
        self.names: Counter[str] = Counter()
        #: Bumped on every mutation; lets consumers memoize selections.
        self.revision = 0

    @property
    def total(self) -> int:
        """Number of names (with multiplicity) folded in."""
        return sum(self.names.values())

    def add(self, name: str) -> None:
        """Fold one name occurrence into the counts."""
        lowered = name.lower()
        self.revision += 1
        self.names[lowered] += 1
        for substring in _substrings_of(lowered, self.min_length, self.max_length):
            self.counts[substring] += 1

    def discard(self, name: str) -> None:
        """Remove one name occurrence; unknown names raise ``KeyError``."""
        lowered = name.lower()
        if self.names[lowered] <= 0:
            raise KeyError(f"name not in counter: {name!r}")
        self.revision += 1
        self.names[lowered] -= 1
        if self.names[lowered] == 0:
            del self.names[lowered]
        for substring in _substrings_of(lowered, self.min_length, self.max_length):
            remaining = self.counts[substring] - 1
            if remaining <= 0:
                del self.counts[substring]
            else:
                self.counts[substring] = remaining

    def select(
        self,
        *,
        min_support: int = 5,
        top: int = 50,
        containment_slack: float = 0.9,
    ) -> list[SubstringPattern]:
        """The mined patterns for the current multiset."""
        return _select_patterns(
            self.counts,
            min_support=min_support,
            top=top,
            containment_slack=containment_slack,
        )

    def state_key(self) -> dict[str, Any]:
        """A digestible value view of the multiset (for memoization)."""
        return {
            "min_length": self.min_length,
            "max_length": self.max_length,
            "names": sorted(self.names.elements()),
        }


def mine_substrings(
    names: Iterable[str],
    *,
    min_length: int = DEFAULT_MIN_LENGTH,
    max_length: int = DEFAULT_MAX_LENGTH,
    min_support: int = 5,
    top: int = 50,
    containment_slack: float = 0.9,
) -> list[SubstringPattern]:
    """Mine the most common substrings across ``names``.

    Returns up to ``top`` patterns ordered by (support, length) with
    non-maximal substrings removed (see :func:`_select_patterns`).
    """
    counter = SubstringCounter(min_length=min_length, max_length=max_length)
    for raw in names:
        counter.add(raw)
    return counter.select(
        min_support=min_support, top=top, containment_slack=containment_slack
    )


def mine_substrings_cached(
    names: Iterable[str],
    *,
    cache: Any | None = None,
    min_length: int = DEFAULT_MIN_LENGTH,
    max_length: int = DEFAULT_MAX_LENGTH,
    min_support: int = 5,
    top: int = 50,
    containment_slack: float = 0.9,
) -> list[SubstringPattern]:
    """:func:`mine_substrings` memoized through the artifact cache.

    Mining is a pure function of the name multiset and the parameters,
    so results are content-addressed: repeated folds over an unchanged
    candidate set (the common case for daily incremental advances) hit
    the cache instead of re-scanning every name.
    """
    from repro.store.artifacts import ArtifactKey, content_digest, default_cache

    name_list = sorted(raw.lower() for raw in names)
    options = {
        "min_length": min_length,
        "max_length": max_length,
        "min_support": min_support,
        "top": top,
        "containment_slack": containment_slack,
    }
    key = ArtifactKey.build(
        "mined-patterns", content_digest({"names": name_list}), options
    )
    store = cache if cache is not None else default_cache()
    return store.get_or_create(
        key,
        lambda: mine_substrings(
            name_list,
            min_length=min_length,
            max_length=max_length,
            min_support=min_support,
            top=top,
            containment_slack=containment_slack,
        ),
        memory_only=True,
    )


def patterns_matching(
    patterns: Sequence[SubstringPattern], needle: str
) -> list[SubstringPattern]:
    """The mined patterns that contain ``needle`` (for inspection/tests)."""
    needle = needle.lower()
    return [p for p in patterns if needle in p.substring or p.substring in needle]
