"""Frequent-substring mining over nameserver names (§3.2.2).

The paper built "a tool that, given a list of domain names as input,
looks for common substrings across them", applied it to the ~300K
candidates, and read the renaming idioms off the top of the output
(PLEASEDROPTHISHOST, DROPTHISHOST, the sink domains, the EMT- test
pattern, ...). This module is that tool.

The miner counts every substring within a length window across the input
names (each name contributes each distinct substring once), keeps those
above a support threshold, and suppresses non-maximal substrings: a
substring contained in a longer surviving pattern with (nearly) the same
support adds no information and is dropped.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True, slots=True)
class SubstringPattern:
    """One mined pattern with its support."""

    substring: str
    support: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.substring!r} x{self.support}"


def _substrings_of(name: str, min_len: int, max_len: int) -> set[str]:
    found: set[str] = set()
    n = len(name)
    for length in range(min_len, min(max_len, n) + 1):
        for start in range(n - length + 1):
            found.add(name[start:start + length])
    return found


def mine_substrings(
    names: Iterable[str],
    *,
    min_length: int = 5,
    max_length: int = 24,
    min_support: int = 5,
    top: int = 50,
    containment_slack: float = 0.9,
) -> list[SubstringPattern]:
    """Mine the most common substrings across ``names``.

    Returns up to ``top`` patterns ordered by (support, length) with
    non-maximal substrings removed: a pattern is dropped when some longer
    surviving pattern contains it and retains at least
    ``containment_slack`` of its support.
    """
    counts: Counter[str] = Counter()
    total = 0
    for raw in names:
        total += 1
        name = raw.lower()
        counts.update(_substrings_of(name, min_length, max_length))
    frequent = [
        (substring, support)
        for substring, support in counts.items()
        if support >= min_support
    ]
    # Sort so longer, better-supported strings are considered first.
    frequent.sort(key=lambda item: (-item[1], -len(item[0]), item[0]))
    kept: list[tuple[str, int]] = []
    for substring, support in frequent:
        redundant = False
        for kept_sub, kept_support in kept:
            if (
                substring in kept_sub
                and len(substring) < len(kept_sub)
                and kept_support >= containment_slack * support
            ):
                redundant = True
                break
        if not redundant:
            kept.append((substring, support))
        if len(kept) >= top * 4:
            break
    kept.sort(key=lambda item: (-item[1], -len(item[0]), item[0]))
    return [SubstringPattern(s, c) for s, c in kept[:top]]


def patterns_matching(
    patterns: Sequence[SubstringPattern], needle: str
) -> list[SubstringPattern]:
    """The mined patterns that contain ``needle`` (for inspection/tests)."""
    needle = needle.lower()
    return [p for p in patterns if needle in p.substring or p.substring in needle]
