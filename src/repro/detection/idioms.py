"""Idiom classifiers: confirmed renaming patterns (§3.2.2–§3.2.3, §4).

Pattern mining surfaces candidate idioms; the paper then *manually
confirmed* each with the registrar involved. The confirmed knowledge is
encoded here as classifiers of two kinds:

* **pattern** classifiers recognize a sacrificial name by its shape
  alone (PLEASEDROPTHISHOST, DROPTHISHOST, DELETED-DROP, the sink
  domains, the reserved-namespace scheme);
* **match** classifiers recognize a rename only in combination with the
  original-nameserver history match (the ``…123.biz`` and
  ``{sld}{random}.biz`` families), with registrar attribution coming
  from WHOIS rather than the pattern.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum

from repro.detection.matching import MatchResult


class IdiomClass(str, Enum):
    """How the produced names relate to registerable namespace."""

    SINK = "sink"          # fixed registered domain (non-hijackable)
    RANDOM = "random"      # fresh likely-unregistered names (hijackable)
    RESERVED = "reserved"  # reserved namespace (non-hijackable)


@dataclass(frozen=True)
class IdiomClassifier:
    """One confirmed renaming idiom."""

    idiom_id: str
    klass: IdiomClass
    registrar_hint: str | None
    pattern: str | None = None
    sink_domain: str | None = None
    post_remediation: bool = False

    @property
    def hijackable(self) -> bool:
        """True for random-name idioms."""
        return self.klass is IdiomClass.RANDOM

    def matches_name(self, name: str) -> bool:
        """Pattern-kind check against a bare nameserver name."""
        if self.pattern is None:
            return False
        return re.search(self.pattern, name, re.IGNORECASE) is not None


def known_classifiers() -> list[IdiomClassifier]:
    """Every confirmed pattern-kind idiom (Tables 1, 2, and 6)."""
    return [
        # Table 2 — hijackable random-name idioms with distinctive shapes.
        IdiomClassifier(
            "PLEASEDROPTHISHOST", IdiomClass.RANDOM, "godaddy",
            pattern=r"^pleasedropthishost[a-z0-9]*\.",
        ),
        IdiomClassifier(
            "DROPTHISHOST", IdiomClass.RANDOM, "godaddy",
            pattern=r"^dropthishost-[0-9a-f-]+\.biz$",
        ),
        IdiomClassifier(
            "DELETED-DROP", IdiomClass.RANDOM, "internetbs",
            pattern=r"^deleted-[a-z0-9]+\.drop-[a-z0-9]+\.biz$",
        ),
        # Table 1 — non-hijackable sink domains.
        IdiomClassifier(
            "DUMMYNS.COM", IdiomClass.SINK, "internetbs",
            pattern=r"\.dummyns\.com$", sink_domain="dummyns.com",
        ),
        IdiomClassifier(
            "LAMEDELEGATION.ORG", IdiomClass.SINK, "netsol",
            pattern=r"\.lamedelegation\.org$", sink_domain="lamedelegation.org",
        ),
        IdiomClassifier(
            "NSHOLDFIX.COM", IdiomClass.SINK, "tldrs",
            pattern=r"\.nsholdfix\.com$", sink_domain="nsholdfix.com",
        ),
        IdiomClassifier(
            "DELETE-HOST.COM", IdiomClass.SINK, "gmo",
            pattern=r"\.delete-host\.com$", sink_domain="delete-host.com",
        ),
        IdiomClassifier(
            "DELETEDNS.COM", IdiomClass.SINK, "xinnet",
            pattern=r"\.deletedns\.com$", sink_domain="deletedns.com",
        ),
        IdiomClassifier(
            "LAMEDELEGATIONSERVERS.{COM, NET}", IdiomClass.SINK, "srsplus",
            pattern=r"\.lamedelegationservers\.(com|net)$",
            sink_domain="lamedelegationservers.com",
        ),
        # Table 6 — post-remediation idioms.
        IdiomClassifier(
            "EMPTY.AS112.ARPA", IdiomClass.RESERVED, "godaddy",
            pattern=r"\.empty\.as112\.arpa$", post_remediation=True,
        ),
        IdiomClassifier(
            "NOTAPLACETO.BE", IdiomClass.SINK, "internetbs",
            pattern=r"\.notaplaceto\.be$", sink_domain="notaplaceto.be",
            post_remediation=True,
        ),
        IdiomClassifier(
            "DELETE-REGISTRATION.COM", IdiomClass.SINK, "enom",
            pattern=r"\.delete-registration\.com$",
            sink_domain="delete-registration.com", post_remediation=True,
        ),
    ]


#: Match-kind idiom ids (attributed via WHOIS, not via the pattern).
IDIOM_123 = "123.BIZ"
IDIOM_RANDOM_SUFFIX = "XXXXX.{BIZ, COM}"


def classify_match(match: MatchResult) -> str | None:
    """Classify a history-matched rename into a match-kind idiom.

    The appended-suffix shape separates Enom's early deterministic
    ``…123.biz`` idiom from the random-suffix family; an empty suffix
    means the "rename" did not mangle the name and is not a recognized
    idiom.
    """
    suffix = match.sld_suffix
    if suffix == "123":
        return IDIOM_123
    if len(suffix) >= 3 and re.fullmatch(r"[a-z0-9]+", suffix):
        return IDIOM_RANDOM_SUFFIX
    return None
